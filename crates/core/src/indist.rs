//! The bipartite indistinguishability graph of Definition 3.6, built
//! exactly over the enumerated instance spaces.
//!
//! Vertices: all labeled one-cycle graphs (`V₁`) and all two-cycle
//! graphs (`V₂`) on `n` vertices over the fixed canonical KT-0
//! network. There is an edge `{I₁, I₂}` iff `I₂` arises from `I₁` by
//! crossing two *active* independent directed edges (active with
//! respect to a label pair `(x, y)` after `t` rounds of an algorithm).
//!
//! At `t = 0` every edge is active (`x = y = λ`), which gives the
//! purely combinatorial graph `G⁰` used by Lemma 3.9; its degree
//! structure is exactly the `i·(d−i)` census of Lemma 3.7, and the
//! Polygamous Hall condition of Lemma 3.8 / Theorem 2.1 can be checked
//! and *realized* (a k-matching extracted) via Hopcroft–Karp.

use crate::crossing::{are_independent, cross_graph};
use crate::labels::{active_edges, broadcast_strings, canonical_orientation};
use bcc_graphs::enumerate::{num_one_cycles, num_two_cycles, one_cycles, two_cycle_graphs};
use bcc_graphs::matching::{k_matching, BipartiteGraph, KMatching};
use bcc_graphs::Graph;
use bcc_model::{Algorithm, Instance, Symbol};
use std::collections::BTreeMap;

/// The indistinguishability graph `G^t_{x,y}`.
#[derive(Debug, Clone)]
pub struct IndistGraph {
    /// Number of vertices of the underlying instances.
    pub n: usize,
    /// The one-cycle instance space `V₁` (input graphs over the
    /// canonical network).
    pub one_cycles: Vec<Graph>,
    /// The two-cycle instance space `V₂`.
    pub two_cycles: Vec<Graph>,
    /// Bipartite adjacency: left = indices into `one_cycles`, right =
    /// indices into `two_cycles`.
    pub bip: BipartiteGraph,
    /// Active-edge count of each one-cycle instance (`d` in the
    /// lemmas).
    pub active_counts: Vec<usize>,
}

impl IndistGraph {
    /// The round-0 graph `G⁰_{λ,λ}`: every edge of every instance is
    /// active, so `{I₁, I₂} ∈ E` iff `I₂` is obtainable from `I₁` by
    /// crossing *any* independent co-oriented pair. Purely
    /// combinatorial (no algorithm involved).
    pub fn round_zero(n: usize) -> Self {
        Self::build_with_active(n, canonical_orientation)
    }

    /// The graph `G^t_{x,y}` for a concrete algorithm: active edges of
    /// each one-cycle instance are computed from its own `t`-round run
    /// on the canonical KT-0 network.
    pub fn with_algorithm(
        n: usize,
        algorithm: &dyn Algorithm,
        t: usize,
        coin_seed: u64,
        x: &[Symbol],
        y: &[Symbol],
    ) -> Self {
        Self::build_with_active(n, |g| {
            let inst = Instance::new_kt0_canonical(g.clone()).expect("canonical instance");
            let strings = broadcast_strings(&inst, algorithm, t, coin_seed);
            active_edges(g, &strings, x, y)
        })
    }

    fn build_with_active(
        n: usize,
        mut active_of: impl FnMut(&Graph) -> Vec<crate::crossing::DirectedEdge>,
    ) -> Self {
        assert!(n >= 6, "two-cycle instances need n >= 6");
        let ones: Vec<Graph> = one_cycles(n).collect();
        let twos: Vec<Graph> = two_cycle_graphs(n).collect();
        let two_index: BTreeMap<Vec<(usize, usize)>, usize> = twos
            .iter()
            .enumerate()
            .map(|(i, g)| (g.canonical_key(), i))
            .collect();
        let mut bip = BipartiteGraph::new(ones.len(), twos.len());
        let mut active_counts = Vec::with_capacity(ones.len());
        for (li, g) in ones.iter().enumerate() {
            let active = active_of(g);
            active_counts.push(active.len());
            for (a, &e1) in active.iter().enumerate() {
                for &e2 in &active[a + 1..] {
                    if !are_independent(g, e1, e2) {
                        continue;
                    }
                    let crossed = cross_graph(g, e1, e2).expect("independent input edges");
                    if let Some(&ri) = two_index.get(&crossed.canonical_key()) {
                        bip.add_edge(li, ri);
                    }
                }
            }
        }
        IndistGraph {
            n,
            one_cycles: ones,
            two_cycles: twos,
            bip,
            active_counts,
        }
    }

    /// `|V₁|`.
    pub fn v1_len(&self) -> usize {
        self.one_cycles.len()
    }

    /// `|V₂|`.
    pub fn v2_len(&self) -> usize {
        self.two_cycles.len()
    }

    /// Degrees of the `V₁` side.
    pub fn v1_degrees(&self) -> Vec<usize> {
        (0..self.v1_len())
            .map(|l| self.bip.neighbors(l).len())
            .collect()
    }

    /// Degrees of the `V₂` side.
    pub fn v2_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.v2_len()];
        for l in 0..self.v1_len() {
            for &r in self.bip.neighbors(l) {
                deg[r] += 1;
            }
        }
        deg
    }

    /// The measured ratio `|V₂| / |V₁|` — Lemma 3.9 says `Θ(log n)`.
    pub fn count_ratio(&self) -> f64 {
        self.v2_len() as f64 / self.v1_len() as f64
    }

    /// Extracts a `k`-matching saturating `V₁` if one exists — the
    /// literal statement of Theorem 2.1 as used in the paper. Note
    /// this requires `|V₂| ≥ k·|V₁|`: the Lemma 3.9 ratio
    /// `|V₂|/|V₁| = Θ(log n)` only exceeds 1 near `n ≈ 90`, far beyond
    /// enumerable sizes, so at experiment scale use
    /// [`IndistGraph::k_matching_saturating_v2`] (the same Hall
    /// machinery in the feasible direction; the error argument is
    /// symmetric in the matched pair).
    pub fn k_matching(&self, k: usize) -> Option<KMatching> {
        k_matching(&self.bip, k)
    }

    /// The bipartite graph with sides swapped (left = `V₂`).
    fn flipped(&self) -> BipartiteGraph {
        let mut flip = BipartiteGraph::new(self.v2_len(), self.v1_len());
        for l in 0..self.v1_len() {
            for &r in self.bip.neighbors(l) {
                flip.add_edge(r, l);
            }
        }
        flip
    }

    /// A `k`-matching saturating `V₂`: every two-cycle instance
    /// assigned `k` distinct one-cycle instances, disjointly. This is
    /// the direction feasible at enumerable sizes (where
    /// `|V₁| > |V₂|`), and it carries the same indistinguishability
    /// consequence: the algorithm answers identically on each matched
    /// star, so it errs on the lighter side of every star.
    pub fn k_matching_saturating_v2(&self, k: usize) -> Option<KMatching> {
        k_matching(&self.flipped(), k)
    }

    /// The largest `k` for which a `k`-matching of size `|V₁|` exists,
    /// by linear search from 1 (the interesting values are `O(log n)`).
    pub fn max_k_matching(&self, cap: usize) -> usize {
        let mut best = 0;
        for k in 1..=cap {
            if self.k_matching(k).is_some() {
                best = k;
            } else {
                break;
            }
        }
        best
    }

    /// The measured neighborhood expansion `min_S |N(S)|/|S|` over
    /// randomly sampled subsets `S ⊆ V₂` (the side whose saturation is
    /// feasible at enumerable sizes) — the empirical Lemma 3.8 /
    /// Hall-condition check matching [`Self::k_matching_saturating_v2`].
    pub fn sampled_expansion_v2<R: rand::Rng + ?Sized>(
        &self,
        sizes: &[usize],
        samples_per_size: usize,
        rng: &mut R,
    ) -> f64 {
        use rand::seq::SliceRandom;
        let flip = self.flipped();
        let mut min_ratio = f64::INFINITY;
        let all: Vec<usize> = (0..self.v2_len()).collect();
        for &s in sizes {
            if s == 0 || s > self.v2_len() {
                continue;
            }
            for _ in 0..samples_per_size {
                let subset: Vec<usize> = all.choose_multiple(rng, s).copied().collect();
                let nb = flip.neighborhood(subset.iter().copied());
                min_ratio = min_ratio.min(nb.len() as f64 / s as f64);
            }
        }
        min_ratio
    }

    /// The largest `k` for which a `k`-matching saturating `V₂`
    /// exists.
    pub fn max_k_matching_v2(&self, cap: usize) -> usize {
        let flip = self.flipped();
        let mut best = 0;
        for k in 1..=cap {
            if k_matching(&flip, k).is_some() {
                best = k;
            } else {
                break;
            }
        }
        best
    }
}

/// The exact degree structure of `G⁰` — the precise version of the
/// degree bookkeeping inside Lemma 3.9.
///
/// The paper counts `n−3` crossing partners per edge and degree
/// `i·(n−i)` per two-cycle instance; the *exact* counts over the
/// enumerated spaces differ by the bounded bookkeeping the Θ-notation
/// absorbs: splits producing a cycle of length < 3 are excluded by
/// independence (two more exclusions per edge, so a one-cycle instance
/// has exactly `n(n−5)/2` neighbors), and a two-cycle instance can be
/// merged with either relative orientation of its cycles (doubling to
/// `2·i·(n−i)`). These exact formulas, checked here, imply the paper's
/// `|T_i| = Θ(|V₁|·n/(i(n−i)))` and hence Lemma 3.9 itself.
pub fn lemma_3_9_degree_check(g: &IndistGraph) -> bool {
    let n = g.n;
    let expect_v1 = n * (n - 5) / 2;
    if g.v1_degrees().iter().any(|&d| d != expect_v1) {
        return false;
    }
    let v2_deg = g.v2_degrees();
    for (ri, graph) in g.two_cycles.iter().enumerate() {
        let s = bcc_graphs::cycles::cycle_structure(graph).expect("two-cycle promise");
        let i = s.min_length();
        if v2_deg[ri] != 2 * i * (n - i) {
            return false;
        }
    }
    true
}

/// Lemma 3.9's counting identities on `G⁰`, in exact form:
/// `|T_i| = |V₁|·n / (2i(n−i))` for `3 ≤ i < n/2` and
/// `|T_{n/2}| = |V₁|·(n/2) / (2i(n−i))`. Returns
/// `(i, measured |T_i|, predicted |T_i|)` per smaller-cycle length.
pub fn lemma_3_9_t_counts(g: &IndistGraph) -> Vec<(usize, usize, f64)> {
    let n = g.n;
    let mut by_i: BTreeMap<usize, usize> = BTreeMap::new();
    for graph in &g.two_cycles {
        let s = bcc_graphs::cycles::cycle_structure(graph).expect("two-cycle promise");
        *by_i.entry(s.min_length()).or_insert(0) += 1;
    }
    // BTreeMap iterates in key order, so the rows come out sorted by i.
    by_i.into_iter()
        .map(|(i, count)| {
            let per_v1 = if 2 * i == n { n as f64 / 2.0 } else { n as f64 };
            let predicted = g.v1_len() as f64 * per_v1 / (2.0 * i as f64 * (n - i) as f64);
            (i, count, predicted)
        })
        .collect()
}

/// Counts of `V₁`/`V₂` from the closed-form formulas, for validating
/// the enumeration itself.
pub fn closed_form_counts(n: usize) -> (u64, u64) {
    (num_one_cycles(n), num_two_cycles(n))
}

/// The harmonic-sum shape of Lemma 3.8's expansion bound:
/// `Σ_{i=3}^{d/2} 1/i ≈ ln(d/2) − 3/2 + …`. Exposed so experiments can
/// plot measured expansion against it.
pub fn harmonic_tail(d: usize) -> f64 {
    (3..=d / 2).map(|i| 1.0 / i as f64).sum()
}

/// The measured neighborhood expansion `min_{S} |N(S)|/|S|` over
/// randomly sampled subsets `S ⊆ V₁` of each size in `sizes` —
/// an empirical check of Lemma 3.8 (exact minimization over all `S` is
/// exponential; sampling plus the k-matching certificate brackets it).
pub fn sampled_expansion<R: rand::Rng + ?Sized>(
    g: &IndistGraph,
    sizes: &[usize],
    samples_per_size: usize,
    rng: &mut R,
) -> f64 {
    use rand::seq::SliceRandom;
    let mut min_ratio = f64::INFINITY;
    let all: Vec<usize> = (0..g.v1_len()).collect();
    for &s in sizes {
        if s == 0 || s > g.v1_len() {
            continue;
        }
        for _ in 0..samples_per_size {
            let subset: Vec<usize> = all.choose_multiple(rng, s).copied().collect();
            let nb = g.bip.neighborhood(subset.iter().copied());
            min_ratio = min_ratio.min(nb.len() as f64 / s as f64);
        }
    }
    min_ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_model::testing::{EchoBit, IdBroadcast};

    #[test]
    fn round_zero_counts_match_formulas() {
        for n in [6usize, 7] {
            let g = IndistGraph::round_zero(n);
            let (v1, v2) = closed_form_counts(n);
            assert_eq!(g.v1_len() as u64, v1);
            assert_eq!(g.v2_len() as u64, v2);
        }
    }

    /// Lemma 3.9's degree formulas hold exactly on `G⁰`.
    #[test]
    fn degree_structure_matches_lemma_3_9() {
        for n in [6usize, 7, 8] {
            let g = IndistGraph::round_zero(n);
            assert!(lemma_3_9_degree_check(&g), "n={n}");
        }
    }

    /// The `|T_i|` bound inside Lemma 3.9.
    #[test]
    fn t_i_bounds_hold() {
        let g = IndistGraph::round_zero(8);
        let counts = lemma_3_9_t_counts(&g);
        let total: usize = counts.iter().map(|&(_, c, _)| c).sum();
        assert_eq!(total, g.v2_len());
        for (i, count, predicted) in counts {
            assert!(
                (count as f64 - predicted).abs() < 1e-6,
                "i={i}: |T_i|={count} != predicted {predicted}"
            );
        }
    }

    /// Theorem 2.1 in action: at enumerable sizes `|V₁| > |V₂|`, so the
    /// Hall machinery saturates `V₂`; the extracted k-matching is
    /// valid and its k tracks `|V₁|/|V₂|`.
    #[test]
    fn k_matching_exists_at_round_zero() {
        let g = IndistGraph::round_zero(7);
        // V1-saturating matchings are infeasible below n ≈ 90
        // (|V2| < |V1|): confirmed by the pigeonhole.
        assert!(g.count_ratio() < 1.0);
        assert_eq!(g.max_k_matching(4), 0);
        // The feasible direction saturates V2.
        let k = g.max_k_matching_v2(16);
        assert!(k >= 1, "no V2-saturating 1-matching at n=7");
        let km = g.k_matching_saturating_v2(k).expect("max_k certified");
        assert_eq!(km.assignments.len(), g.v2_len());
        // k cannot exceed |V1|/|V2|.
        assert!((k as f64) <= 1.0 / g.count_ratio() + 1e-9);
    }

    /// With EchoBit every edge stays active forever: `G^t` equals `G⁰`.
    #[test]
    fn echo_bit_keeps_full_graph() {
        let n = 6;
        let g0 = IndistGraph::round_zero(n);
        let x = vec![Symbol::One; 2];
        let gt = IndistGraph::with_algorithm(n, &EchoBit, 2, 0, &x, &x);
        assert_eq!(g0.bip.num_edges(), gt.bip.num_edges());
        assert_eq!(gt.active_counts, vec![n; g0.v1_len()]);
    }

    /// With IdBroadcast labels fragment completely: no active pairs,
    /// so `G^t` is empty — the "algorithm defeats the crossing" regime
    /// the pigeonhole says is impossible for t = o(log n)… except that
    /// IdBroadcast *spends* Θ(log n) rounds, consistent with the bound.
    #[test]
    fn id_broadcast_empties_graph_after_log_n_rounds() {
        let n = 6;
        let t = 3; // = ceil(log2 6): full ids broadcast
        let x = vec![Symbol::Zero; t];
        let g = IndistGraph::with_algorithm(n, &IdBroadcast::new(), t, 0, &x, &x);
        // Active sets are tiny (ids are distinct), so very few crossings.
        let total_active: usize = g.active_counts.iter().sum();
        assert!(total_active <= g.v1_len(), "labels did not fragment");
    }

    #[test]
    fn expansion_sampling_positive() {
        use rand::SeedableRng;
        let g = IndistGraph::round_zero(6);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let e = sampled_expansion(&g, &[1, 2, 5], 10, &mut rng);
        assert!(e >= 1.0, "expansion {e} below 1 at round zero");
    }

    #[test]
    fn harmonic_tail_values() {
        assert_eq!(harmonic_tail(5), 0.0); // empty sum for d/2 < 3
        assert!((harmonic_tail(6) - 1.0 / 3.0).abs() < 1e-12);
        assert!(harmonic_tail(100) > 1.0);
    }
}
