//! Assembled, machine-checkable certificates for the paper's three
//! main theorems.
//!
//! Each function gathers every verifiable ingredient of one theorem's
//! proof at a concrete instance size and returns a structured report
//! whose `holds()` method asserts all of them at once. The experiment
//! harness prints these reports; the test suite asserts them.

use crate::hard::{
    distributional_error, star_distribution, star_error_floor, uniform_two_cycle_distribution,
};
use crate::indist::{lemma_3_9_degree_check, lemma_3_9_t_counts, IndistGraph};
use crate::infobound::{partition_comp_information, InfoBoundReport};
use crate::kt1::{theorem_4_4_certificate, Kt1LowerBound};
use bcc_comm::reduction::Gadget;
use bcc_model::testing::ConstantDecision;
use bcc_model::Algorithm;

/// Certificate for the warm-up Theorem 3.5 at size `n`, round budget
/// `t`.
#[derive(Debug, Clone)]
pub struct Theorem35Certificate {
    /// Instance size.
    pub n: usize,
    /// Round budget.
    pub t: usize,
    /// The pigeonhole error floor `Ω(3^{−4t})`.
    pub error_floor: f64,
    /// Measured error of each supplied algorithm under the star
    /// distribution, paired with its name.
    pub measured_errors: Vec<(String, f64)>,
}

impl Theorem35Certificate {
    /// Every measured algorithm errs at least the floor (capped at
    /// 1/2, the error of the trivial constant algorithms).
    pub fn holds(&self) -> bool {
        let floor = self.error_floor.min(0.5);
        self.measured_errors.iter().all(|&(_, e)| e + 1e-9 >= floor)
    }
}

/// Builds the Theorem 3.5 certificate: the analytic floor plus
/// measured errors of the supplied `t`-round algorithms (all must
/// decide within `t` rounds).
pub fn theorem_3_5(
    n: usize,
    t: usize,
    algorithms: &[(&str, &dyn Algorithm)],
) -> Theorem35Certificate {
    let dist = star_distribution(n);
    let mut measured: Vec<(String, f64)> = algorithms
        .iter()
        .map(|(name, a)| (name.to_string(), distributional_error(&dist, *a, t, 0)))
        .collect();
    measured.push((
        "constant-yes".into(),
        distributional_error(&dist, &ConstantDecision::yes(), t, 0),
    ));
    Theorem35Certificate {
        n,
        t,
        error_floor: star_error_floor(n, t),
        measured_errors: measured,
    }
}

/// Certificate for the combinatorial core of Theorem 3.1 at size `n`:
/// the exact structure of the round-0 indistinguishability graph.
#[derive(Debug, Clone)]
pub struct Theorem31Certificate {
    /// Instance size.
    pub n: usize,
    /// `|V₁|`, `|V₂|`.
    pub v1: usize,
    /// See `v1`.
    pub v2: usize,
    /// Measured `|V₂|/|V₁|` (Lemma 3.9: `Θ(log n)`).
    pub ratio: f64,
    /// Exact degree structure verified (Lemma 3.7/3.9 bookkeeping).
    pub degrees_exact: bool,
    /// Per-smaller-cycle-length `(i, |T_i|, predicted)` counts.
    pub t_counts: Vec<(usize, usize, f64)>,
    /// Largest `k` with a `k`-matching saturating the smaller side of
    /// the indistinguishability graph (Theorem 2.1 / Lemma 3.8
    /// realized constructively; at enumerable sizes the smaller side
    /// is `V₂` — see `IndistGraph::k_matching_saturating_v2`).
    pub max_k_matching: usize,
    /// Measured error of the supplied algorithms at `t` rounds under
    /// the uniform `V₁`/`V₂` distribution.
    pub measured_errors: Vec<(String, f64)>,
    /// The round budget used for the error measurements.
    pub t: usize,
}

impl Theorem31Certificate {
    /// All structural facts verified and every measured `t`-round
    /// algorithm errs at least a constant (the theorem's conclusion;
    /// we use 1/8 as the concrete constant for the enumerable sizes).
    pub fn holds(&self) -> bool {
        self.degrees_exact
            && self.max_k_matching >= 1
            && self
                .t_counts
                .iter()
                .all(|&(_, c, p)| (c as f64 - p).abs() < 1e-6)
            && self.measured_errors.iter().all(|&(_, e)| e >= 0.125)
    }
}

/// Builds the Theorem 3.1 certificate at size `n` with error
/// measurements at `t` rounds.
pub fn theorem_3_1(
    n: usize,
    t: usize,
    algorithms: &[(&str, &dyn Algorithm)],
) -> Theorem31Certificate {
    let g = IndistGraph::round_zero(n);
    let dist = uniform_two_cycle_distribution(n);
    let mut measured: Vec<(String, f64)> = algorithms
        .iter()
        .map(|(name, a)| (name.to_string(), distributional_error(&dist, *a, t, 0)))
        .collect();
    measured.push((
        "constant-yes".into(),
        distributional_error(&dist, &ConstantDecision::yes(), t, 0),
    ));
    Theorem31Certificate {
        n,
        v1: g.v1_len(),
        v2: g.v2_len(),
        ratio: g.count_ratio(),
        degrees_exact: lemma_3_9_degree_check(&g),
        t_counts: lemma_3_9_t_counts(&g),
        max_k_matching: g.max_k_matching_v2(2 + (g.v1_len() / g.v2_len().max(1))),
        measured_errors: measured,
        t,
    }
}

/// Re-export of the Theorem 4.4 certificate builder (see [`crate::kt1`]).
pub fn theorem_4_4(gadget: Gadget, n: usize) -> Kt1LowerBound {
    theorem_4_4_certificate(gadget, n)
}

/// Re-export of the Theorem 4.5 computation (see [`crate::infobound`]).
pub fn theorem_4_5(n: usize, budget: Option<usize>) -> InfoBoundReport {
    partition_comp_information(n, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_algorithms::{HashVoteDecider, ParityDecider};

    #[test]
    fn theorem_3_5_certificate_holds() {
        let hash = HashVoteDecider::new(1);
        let parity = ParityDecider::new(1);
        // n = 54 so the pigeonhole floor is positive at t = 1
        // (s = 18 edges, s' = ceil(18/9) = 2).
        let cert = theorem_3_5(54, 1, &[("hash-vote", &hash), ("parity", &parity)]);
        assert!(cert.holds(), "{cert:?}");
        assert!(cert.error_floor > 0.0);
    }

    #[test]
    fn theorem_3_1_certificate_holds() {
        let hash = HashVoteDecider::new(1);
        let parity = ParityDecider::new(1);
        let cert = theorem_3_1(7, 1, &[("hash-vote", &hash), ("parity", &parity)]);
        assert!(cert.holds(), "{cert:?}");
        assert_eq!(cert.v1, 360);
        assert!(cert.ratio > 0.0);
    }

    #[test]
    fn theorem_4_4_certificate_holds() {
        let cert = theorem_4_4(Gadget::TwoRegular, 6);
        assert!(cert.rank.full_rank);
    }

    #[test]
    fn theorem_4_5_certificate_holds() {
        let r = theorem_4_5(4, None);
        assert!(r.chain_holds());
        assert_eq!(r.error, 0.0);
    }
}
