//! Port-preserving crossings: Definitions 3.2 and 3.3, Figure 1, and
//! Lemma 3.4.

use crate::error::CoreError;
use bcc_graphs::Graph;
use bcc_model::{runs_indistinguishable, Algorithm, Instance, KnowledgeMode, SimConfig, Symbol};

/// A directed input-graph edge `tail → head`. The direction
/// disambiguates the port notation `e(p, q)` (p at the tail, q at the
/// head), exactly as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectedEdge {
    /// The tail `v` of `e = (v, u)`.
    pub tail: usize,
    /// The head `u`.
    pub head: usize,
}

impl DirectedEdge {
    /// Constructs a directed edge.
    pub fn new(tail: usize, head: usize) -> Self {
        DirectedEdge { tail, head }
    }
}

impl std::fmt::Display for DirectedEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}→{}", self.tail, self.head)
    }
}

/// Definition 3.2: `e₁ = (v₁, u₁)` and `e₂ = (v₂, u₂)` are
/// *independent* iff the four endpoints are distinct and neither
/// `(v₁, u₂)` nor `(v₂, u₁)` is an input edge.
pub fn are_independent(g: &Graph, e1: DirectedEdge, e2: DirectedEdge) -> bool {
    let vs = [e1.tail, e1.head, e2.tail, e2.head];
    for i in 0..4 {
        for j in (i + 1)..4 {
            if vs[i] == vs[j] {
                return false;
            }
        }
    }
    !g.has_edge(e1.tail, e2.head) && !g.has_edge(e2.tail, e1.head)
}

/// The crossing at the *input-graph* level: replaces `{v₁,u₁}, {v₂,u₂}`
/// with `{v₁,u₂}, {v₂,u₁}`.
///
/// # Errors
///
/// Returns an error if either edge is missing or the pair is not
/// independent.
pub fn cross_graph(g: &Graph, e1: DirectedEdge, e2: DirectedEdge) -> Result<Graph, CoreError> {
    if !g.has_edge(e1.tail, e1.head) {
        return Err(CoreError::NotAnInputEdge {
            tail: e1.tail,
            head: e1.head,
        });
    }
    if !g.has_edge(e2.tail, e2.head) {
        return Err(CoreError::NotAnInputEdge {
            tail: e2.tail,
            head: e2.head,
        });
    }
    if !are_independent(g, e1, e2) {
        return Err(CoreError::NotIndependent {
            reason: format!("{e1} and {e2} share endpoints or are chorded"),
        });
    }
    let mut out = g.clone();
    out.remove_edge(e1.tail, e1.head);
    out.remove_edge(e2.tail, e2.head);
    // Independence keeps the graph simple, so these cannot fail on a
    // well-formed input; a failure surfaces as a typed error anyway.
    out.add_edge(e1.tail, e2.head)
        .map_err(|e| CoreError::RewireFailed {
            step: "add e1'",
            reason: e.to_string(),
        })?;
    out.add_edge(e2.tail, e1.head)
        .map_err(|e| CoreError::RewireFailed {
            step: "add e2'",
            reason: e.to_string(),
        })?;
    Ok(out)
}

/// Definition 3.3 / Figure 1: the port-preserving crossing
/// `I(e₁, e₂)` as a full instance transformation. The input edges
/// `e₁, e₂` are replaced by `e₁' = (v₁, u₂)` and `e₂' = (v₂, u₁)`, and
/// the network is rewired so that each new input edge occupies the
/// ports the old input edges used:
///
/// - at `v₁`, ports `p₁` (old: to `u₁`) and `p₁'` (old: to `u₂`) swap;
/// - at `v₂`, ports `p₂` and `p₂'` swap;
/// - at `u₁`, ports `q₁` and `q₁'` swap;
/// - at `u₂`, ports `q₂` and `q₂'` swap.
///
/// Afterwards every vertex sees input edges on exactly the same port
/// numbers as before — the property Lemma 3.4 exploits.
///
/// # Errors
///
/// Returns an error on KT-1 instances, missing edges, or dependent
/// edge pairs.
pub fn cross_instance(
    instance: &Instance,
    e1: DirectedEdge,
    e2: DirectedEdge,
) -> Result<Instance, CoreError> {
    if instance.mode() == KnowledgeMode::Kt1 {
        return Err(CoreError::Kt1Crossing);
    }
    let crossed_graph = cross_graph(instance.input(), e1, e2)?;
    let mut out = instance.clone();
    let (v1, u1, v2, u2) = (e1.tail, e1.head, e2.tail, e2.head);
    {
        let net = out.network_mut();
        // `cross_graph` has already validated both edges and their
        // independence, so every swap sees the peers it expects.
        for (at, a, b) in [(v1, u1, u2), (v2, u1, u2), (u1, v1, v2), (u2, v1, v2)] {
            net.swap_peers(at, a, b)
                .map_err(|e| CoreError::RewireFailed {
                    step: "swap ports",
                    reason: e.to_string(),
                })?;
        }
    }
    out.set_input(crossed_graph)
        .map_err(|e| CoreError::RewireFailed {
            step: "set input",
            reason: e.to_string(),
        })?;
    Ok(out)
}

/// Lemma 3.4, executed: runs `algorithm` for `t` rounds on both
/// instances and checks that every vertex's *state* (initial knowledge
/// + transcript) is identical.
pub fn indistinguishable_after(
    a: &Instance,
    b: &Instance,
    algorithm: &dyn Algorithm,
    t: usize,
    coin_seed: u64,
) -> bool {
    let sim = SimConfig::bcc1(t);
    let ra = sim.run(a, algorithm, coin_seed);
    let rb = sim.run(b, algorithm, coin_seed);
    runs_indistinguishable(&ra, &rb)
}

/// The hypothesis of Lemma 3.4 for a specific run: `v₁, v₂` broadcast
/// the same sequence and `u₁, u₂` broadcast the same sequence during
/// the first `t` rounds of `algorithm` on `instance`.
pub fn lemma_3_4_hypothesis_holds(
    instance: &Instance,
    e1: DirectedEdge,
    e2: DirectedEdge,
    algorithm: &dyn Algorithm,
    t: usize,
    coin_seed: u64,
) -> bool {
    let run = SimConfig::bcc1(t).run(instance, algorithm, coin_seed);
    let seq =
        |v: usize| -> Vec<Symbol> { run.transcript(v).sent.iter().map(|m| m.symbol()).collect() };
    seq(e1.tail) == seq(e2.tail) && seq(e1.head) == seq(e2.head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graphs::cycles::cycle_structure;
    use bcc_graphs::generators;
    use bcc_model::testing::{EchoBit, IdBroadcast};

    fn cycle_instance(n: usize) -> Instance {
        Instance::new_kt0_canonical(generators::cycle(n)).unwrap()
    }

    #[test]
    fn independence_definition() {
        let g = generators::cycle(8);
        // Co-oriented, far apart: independent.
        assert!(are_independent(
            &g,
            DirectedEdge::new(0, 1),
            DirectedEdge::new(4, 5)
        ));
        // Shared endpoint: not independent.
        assert!(!are_independent(
            &g,
            DirectedEdge::new(0, 1),
            DirectedEdge::new(1, 2)
        ));
        // (v1, u2) ∈ E: 0→1 and 2→3 has (v2, u1) = (2, 1) ∈ E.
        assert!(!are_independent(
            &g,
            DirectedEdge::new(0, 1),
            DirectedEdge::new(2, 3)
        ));
    }

    #[test]
    fn cross_graph_splits_cycle() {
        // Crossing two co-oriented edges of one cycle yields two cycles.
        let g = generators::cycle(8);
        let crossed = cross_graph(&g, DirectedEdge::new(0, 1), DirectedEdge::new(4, 5)).unwrap();
        let s = cycle_structure(&crossed).unwrap();
        assert_eq!(s.count(), 2);
        assert_eq!(s.lengths(), vec![4, 4]);
    }

    #[test]
    fn cross_graph_counter_oriented_keeps_one_cycle() {
        // Crossing counter-oriented edges reverses a segment: still one cycle.
        let g = generators::cycle(8);
        let crossed = cross_graph(&g, DirectedEdge::new(0, 1), DirectedEdge::new(5, 4)).unwrap();
        let s = cycle_structure(&crossed).unwrap();
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn cross_graph_merges_two_cycles() {
        let g = generators::two_cycles(4, 4);
        let crossed = cross_graph(&g, DirectedEdge::new(0, 1), DirectedEdge::new(4, 5)).unwrap();
        assert_eq!(cycle_structure(&crossed).unwrap().count(), 1);
    }

    #[test]
    fn cross_graph_rejects_bad_pairs() {
        let g = generators::cycle(6);
        assert!(matches!(
            cross_graph(&g, DirectedEdge::new(0, 2), DirectedEdge::new(3, 4)),
            Err(CoreError::NotAnInputEdge { .. })
        ));
        assert!(matches!(
            cross_graph(&g, DirectedEdge::new(0, 1), DirectedEdge::new(1, 2)),
            Err(CoreError::NotIndependent { .. })
        ));
    }

    #[test]
    fn crossing_preserves_input_port_sets() {
        // The defining property of a *port-preserving* crossing: every
        // vertex's set of input-edge port labels is unchanged.
        let i1 = cycle_instance(10);
        let e1 = DirectedEdge::new(0, 1);
        let e2 = DirectedEdge::new(5, 6);
        let i2 = cross_instance(&i1, e1, e2).unwrap();
        for v in 0..10 {
            let k1 = i1.initial_knowledge(v, 1, 0);
            let k2 = i2.initial_knowledge(v, 1, 0);
            assert_eq!(k1.input_port_labels, k2.input_port_labels, "vertex {v}");
            assert_eq!(k1.port_labels, k2.port_labels);
        }
        // And the input graph really is the crossed one.
        assert!(i2.input().has_edge(0, 6));
        assert!(i2.input().has_edge(5, 1));
        assert!(!i2.input().has_edge(0, 1));
    }

    #[test]
    fn crossing_is_involution() {
        let i1 = cycle_instance(9);
        let e1 = DirectedEdge::new(1, 2);
        let e2 = DirectedEdge::new(6, 7);
        let i2 = cross_instance(&i1, e1, e2).unwrap();
        // Cross the two new input edges back.
        let back = cross_instance(&i2, DirectedEdge::new(1, 7), DirectedEdge::new(6, 2)).unwrap();
        assert_eq!(back, i1);
    }

    #[test]
    fn kt1_crossing_rejected() {
        let i = Instance::new_kt1(generators::cycle(6)).unwrap();
        assert_eq!(
            cross_instance(&i, DirectedEdge::new(0, 1), DirectedEdge::new(3, 4)),
            Err(CoreError::Kt1Crossing)
        );
    }

    #[test]
    fn lemma_3_4_holds_for_uniform_broadcasters() {
        // EchoBit: every vertex sends the same sequence, so the
        // hypothesis holds for every independent pair and the crossed
        // instance is indistinguishable forever.
        let i1 = cycle_instance(8);
        let e1 = DirectedEdge::new(0, 1);
        let e2 = DirectedEdge::new(4, 5);
        assert!(lemma_3_4_hypothesis_holds(&i1, e1, e2, &EchoBit, 6, 0));
        let i2 = cross_instance(&i1, e1, e2).unwrap();
        assert!(indistinguishable_after(&i1, &i2, &EchoBit, 6, 0));
    }

    #[test]
    fn lemma_3_4_contrapositive_for_id_broadcast() {
        // IdBroadcast: vertices broadcast distinct IDs, so the
        // hypothesis FAILS, and indeed after enough rounds the crossed
        // instance becomes distinguishable (u1 hears a different id on
        // its input port).
        let i1 = cycle_instance(8);
        let e1 = DirectedEdge::new(0, 1);
        let e2 = DirectedEdge::new(4, 5);
        let algo = IdBroadcast::new();
        assert!(!lemma_3_4_hypothesis_holds(&i1, e1, e2, &algo, 3, 0));
        let i2 = cross_instance(&i1, e1, e2).unwrap();
        assert!(!indistinguishable_after(&i1, &i2, &algo, 3, 0));
        // At t = 0 everything is indistinguishable (port-preserving).
        assert!(indistinguishable_after(&i1, &i2, &algo, 0, 0));
    }

    #[test]
    fn crossing_degree_sequence_preserved() {
        let i1 = cycle_instance(12);
        let i2 = cross_instance(&i1, DirectedEdge::new(2, 3), DirectedEdge::new(8, 9)).unwrap();
        assert_eq!(i1.input().degree_sequence(), i2.input().degree_sequence());
        assert_eq!(i1.input().num_edges(), i2.input().num_edges());
    }
}
