//! The primary contribution of *Connectivity Lower Bounds in Broadcast
//! Congested Clique* (Pai & Pemmaraju, PODC 2019), as executable
//! mathematics.
//!
//! The paper proves three Ω(log n) lower bounds with three different
//! techniques; each lives in its own module here, built so that every
//! lemma on the way is *checkable* on concrete instance spaces:
//!
//! | Paper | Module | Technique |
//! |---|---|---|
//! | Theorem 3.1 (KT-0, randomized `TwoCycle`) | [`indist`], [`hard`] | port-preserving crossings + indistinguishability graph + Polygamous Hall |
//! | Theorem 3.5 (KT-0, small-error warm-up) | [`hard`] | single-star crossing argument + pigeonhole labels |
//! | Theorem 4.4 (KT-1, deterministic `Connectivity`/`MultiCycle`) | [`kt1`] | `Partition` rank bound → gadget reduction → simulation |
//! | Theorem 4.5 (KT-1, randomized `ConnectedComponents`) | [`infobound`] | exact mutual-information accounting for `PartitionComp` |
//!
//! Supporting machinery:
//!
//! - [`crossing`]: Definitions 3.2/3.3 — independent edge pairs and the
//!   port-preserving crossing `I(e₁, e₂)` (Figure 1), implemented as an
//!   instance-to-instance rewiring;
//! - [`labels`]: the `2t`-character `{0,1,⊥}` edge labels and the
//!   active-edge census (the pigeonhole step `|S'| ≥ n/3^{2t}`);
//! - Lemma 3.4 as [`crossing::indistinguishable_after`]: run both
//!   instances and compare every vertex's *state* (initial knowledge +
//!   transcript) exactly.
//!
//! # Example: Lemma 3.4 live
//!
//! ```
//! use bcc_core::crossing::{cross_instance, indistinguishable_after, DirectedEdge};
//! use bcc_model::{Instance, testing::EchoBit};
//! use bcc_graphs::generators;
//!
//! let i1 = Instance::new_kt0_canonical(generators::cycle(8)).unwrap();
//! // Every vertex of EchoBit broadcasts the same thing, so every
//! // independent pair of edges satisfies Lemma 3.4's hypothesis.
//! let e1 = DirectedEdge { tail: 0, head: 1 };
//! let e2 = DirectedEdge { tail: 4, head: 5 };
//! let i2 = cross_instance(&i1, e1, e2).unwrap();
//! assert!(indistinguishable_after(&i1, &i2, &EchoBit, 5, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossing;
pub mod hard;
pub mod indist;
pub mod infobound;
pub mod kt1;
pub mod labels;
pub mod pls;
pub mod theorems;

mod error;

pub use error::CoreError;
