//! Edge labels over `{0,1,⊥}` and the active-edge census.
//!
//! The crossing arguments assign each directed input edge `(v, u)` a
//! `2t`-character label: the `t` characters broadcast by the tail `v`
//! followed by the `t` characters broadcast by the head `u`. The
//! pigeonhole step of Theorems 3.5/3.1 then finds `≥ d/3^{2t}` edges
//! sharing one label, and edges sharing a label are exactly the
//! *active* edges among which crossings are indistinguishable.

use crate::crossing::DirectedEdge;
use bcc_graphs::cycles::cycle_structure;
use bcc_graphs::Graph;
use bcc_model::{Algorithm, Instance, SimConfig, Symbol};

/// The per-vertex broadcast strings of the first `t` rounds of
/// `algorithm` on `instance` (index = vertex). Strings may be shorter
/// than `t` if the algorithm halted early; they are padded with `⊥` to
/// exactly `t`, matching the model's "silent once done" semantics.
pub fn broadcast_strings(
    instance: &Instance,
    algorithm: &dyn Algorithm,
    t: usize,
    coin_seed: u64,
) -> Vec<Vec<Symbol>> {
    let run = SimConfig::bcc1(t).run(instance, algorithm, coin_seed);
    (0..instance.num_vertices())
        .map(|v| {
            let mut s: Vec<Symbol> = run.transcript(v).sent.iter().map(|m| m.symbol()).collect();
            s.resize(t, Symbol::Silent);
            s
        })
        .collect()
}

/// The canonical orientation of a disjoint-cycle graph's edges: each
/// cycle is traversed from its minimum vertex toward that vertex's
/// smaller neighbor (the paper's "clockwise" orientation, fixed once
/// per instance), and every edge is directed along the traversal.
///
/// # Panics
///
/// Panics if `g` is not a disjoint union of cycles.
pub fn canonical_orientation(g: &Graph) -> Vec<DirectedEdge> {
    let s = cycle_structure(g).expect("disjoint-cycle input");
    let mut out = Vec::with_capacity(g.num_edges());
    for cycle in &s.cycles {
        let k = cycle.len();
        for i in 0..k {
            out.push(DirectedEdge::new(cycle[i], cycle[(i + 1) % k]));
        }
    }
    out
}

/// The label of a directed edge: `(tail string, head string)`.
pub type EdgeLabel = (Vec<Symbol>, Vec<Symbol>);

/// Labels every canonically-oriented edge of a disjoint-cycle input.
pub fn edge_labels(g: &Graph, strings: &[Vec<Symbol>]) -> Vec<(DirectedEdge, EdgeLabel)> {
    canonical_orientation(g)
        .into_iter()
        .map(|e| (e, (strings[e.tail].clone(), strings[e.head].clone())))
        .collect()
}

/// The edges *active with respect to* `(x, y)`: tail broadcasts `x`,
/// head broadcasts `y` (Section 3.1's definition).
pub fn active_edges(
    g: &Graph,
    strings: &[Vec<Symbol>],
    x: &[Symbol],
    y: &[Symbol],
) -> Vec<DirectedEdge> {
    canonical_orientation(g)
        .into_iter()
        .filter(|e| strings[e.tail] == x && strings[e.head] == y)
        .collect()
}

/// The `(x, y)` label pair with the most active edges, with its count —
/// the pigeonhole step. Guaranteed `count ≥ m / 3^{2t}` where `m` is
/// the number of edges (each label has `3^t` choices per side).
pub fn best_label_pair(g: &Graph, strings: &[Vec<Symbol>]) -> (EdgeLabel, usize) {
    let mut census: std::collections::BTreeMap<EdgeLabel, usize> =
        std::collections::BTreeMap::new();
    for (_, label) in edge_labels(g, strings) {
        *census.entry(label).or_insert(0) += 1;
    }
    census
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .expect("graphs with edges have labels")
}

/// The pigeonhole guarantee of the warm-up argument: with `m` edges
/// and `t` rounds, some label class has at least `⌈m / 3^{2t}⌉` edges.
pub fn pigeonhole_floor(m: usize, t: usize) -> usize {
    let classes = 9usize.checked_pow(t as u32).unwrap_or(usize::MAX);
    m.div_ceil(classes.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graphs::generators;
    use bcc_model::testing::{EchoBit, IdBroadcast};

    #[test]
    fn orientation_covers_all_edges_once() {
        let g = generators::multi_cycle(&[3, 5]);
        let o = canonical_orientation(&g);
        assert_eq!(o.len(), 8);
        let set: std::collections::HashSet<(usize, usize)> = o
            .iter()
            .map(|e| (e.tail.min(e.head), e.tail.max(e.head)))
            .collect();
        assert_eq!(set.len(), 8, "each undirected edge appears exactly once");
    }

    #[test]
    fn echo_bit_has_single_label_class() {
        let inst = Instance::new_kt0_canonical(generators::cycle(9)).unwrap();
        let strings = broadcast_strings(&inst, &EchoBit, 4, 0);
        let (label, count) = best_label_pair(inst.input(), &strings);
        assert_eq!(count, 9, "all edges share one label under EchoBit");
        assert_eq!(label.0, vec![Symbol::One; 4]);
        let act = active_edges(inst.input(), &strings, &label.0, &label.1);
        assert_eq!(act.len(), 9);
    }

    #[test]
    fn id_broadcast_fragments_labels() {
        let inst = Instance::new_kt0_canonical(generators::cycle(8)).unwrap();
        let strings = broadcast_strings(&inst, &IdBroadcast::new(), 3, 0);
        // Distinct ids → distinct strings → every label class is a
        // single edge.
        let (_, count) = best_label_pair(inst.input(), &strings);
        assert_eq!(count, 1);
    }

    #[test]
    fn strings_padded_when_algorithm_halts() {
        let inst = Instance::new_kt0_canonical(generators::cycle(8)).unwrap();
        // IdBroadcast halts after 3 rounds; ask for 5.
        let strings = broadcast_strings(&inst, &IdBroadcast::new(), 5, 0);
        for s in &strings {
            assert_eq!(s.len(), 5);
            assert_eq!(s[4], Symbol::Silent);
        }
    }

    #[test]
    fn pigeonhole_matches_census() {
        let inst = Instance::new_kt0_canonical(generators::cycle(30)).unwrap();
        for t in 0..3 {
            let strings = broadcast_strings(&inst, &IdBroadcast::new(), t, 0);
            let (_, count) = best_label_pair(inst.input(), &strings);
            assert!(
                count >= pigeonhole_floor(30, t),
                "t={t}: census {count} below pigeonhole floor {}",
                pigeonhole_floor(30, t)
            );
        }
    }

    #[test]
    fn pigeonhole_floor_values() {
        assert_eq!(pigeonhole_floor(30, 0), 30);
        assert_eq!(pigeonhole_floor(30, 1), 4); // ceil(30/9)
        assert_eq!(pigeonhole_floor(30, 2), 1);
        assert_eq!(pigeonhole_floor(0, 1), 0);
    }

    #[test]
    fn round_zero_labels_are_empty_strings() {
        let inst = Instance::new_kt0_canonical(generators::cycle(6)).unwrap();
        let strings = broadcast_strings(&inst, &EchoBit, 0, 0);
        let (label, count) = best_label_pair(inst.input(), &strings);
        assert!(label.0.is_empty() && label.1.is_empty());
        assert_eq!(count, 6);
    }
}
