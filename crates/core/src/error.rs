//! Error type for the crossing and indistinguishability machinery.

use std::error::Error;
use std::fmt;

/// Errors raised by the lower-bound machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The two directed edges are not independent (Definition 3.2).
    NotIndependent {
        /// Human-readable reason.
        reason: String,
    },
    /// A referenced edge is not an input-graph edge.
    NotAnInputEdge {
        /// Tail vertex.
        tail: usize,
        /// Head vertex.
        head: usize,
    },
    /// Crossing requested on a KT-1 instance.
    Kt1Crossing,
    /// A rewiring step that independence should make infallible was
    /// rejected by the graph or network layer — a sign the instance
    /// violated a structural invariant (e.g. a corrupted port map).
    RewireFailed {
        /// Which step failed.
        step: &'static str,
        /// The underlying layer's message.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotIndependent { reason } => {
                write!(f, "edges are not independent: {reason}")
            }
            CoreError::NotAnInputEdge { tail, head } => {
                write!(f, "({tail}, {head}) is not an input-graph edge")
            }
            CoreError::Kt1Crossing => {
                write!(f, "port-preserving crossings require a KT-0 instance")
            }
            CoreError::RewireFailed { step, reason } => {
                write!(f, "crossing rewire step `{step}` failed: {reason}")
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CoreError::Kt1Crossing.to_string().contains("KT-0"));
        assert_eq!(
            CoreError::NotAnInputEdge { tail: 1, head: 2 }.to_string(),
            "(1, 2) is not an input-graph edge"
        );
    }
}
