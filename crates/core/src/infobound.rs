//! Theorem 4.5, computed exactly: the mutual information between
//! Alice's input and the `PartitionComp` transcript under the hard
//! distribution.
//!
//! Hard distribution µ: `P_A` uniform over all `B_n` partitions of
//! `[n]`, `P_B` fixed to the finest partition — so
//! `P_A ∨ P_B = P_A` and a correct protocol's transcript must let Bob
//! reconstruct `P_A` exactly. The chain the paper uses,
//!
//! ```text
//! |Π| ≥ H(Π) ≥ I(P_A; Π) = H(P_A) − H(P_A | Π) ≥ (1 − ε)·H(P_A),
//! ```
//!
//! with `H(P_A) = log₂ B_n = Θ(n log n)`, is evaluated term by term on
//! concrete protocols (exact and bit-budget-truncated) by full
//! enumeration — no sampling anywhere.

use bcc_comm::driver::{run_protocol, DriverOpts};
use bcc_comm::protocols::{JoinCompAlice, JoinCompBob};
use bcc_info::{Dist, Joint};
use bcc_partitions::enumerate::all_partitions;
use bcc_partitions::numbers::bell_number;
use bcc_partitions::SetPartition;

/// The exact information accounting of one protocol family at one
/// ground-set size.
#[derive(Debug, Clone)]
pub struct InfoBoundReport {
    /// Ground-set size.
    pub n: usize,
    /// The bit budget imposed on the protocol (`None` = unlimited).
    pub budget: Option<usize>,
    /// `H(P_A) = log₂ B_n`, exactly.
    pub input_entropy: f64,
    /// `H(Π)`: entropy of the transcript.
    pub transcript_entropy: f64,
    /// `I(P_A; Π)`, exactly.
    pub mutual_information: f64,
    /// `H(P_A | Π)`.
    pub conditional_entropy: f64,
    /// Longest transcript, in bits (the `|Π|` of the argument).
    pub max_transcript_bits: usize,
    /// Fraction of the input mass on which Bob's output is wrong or
    /// missing (the ε of the ε-error protocol).
    pub error: f64,
}

impl InfoBoundReport {
    /// The inequality chain of Theorem 4.5, checked numerically (with
    /// a small tolerance for floating point):
    /// `|Π| ≥ H(Π) ≥ I(P_A; Π) ≥ (1 − ε)·H(P_A)`.
    pub fn chain_holds(&self) -> bool {
        let tol = 1e-6;
        self.max_transcript_bits as f64 + tol >= self.transcript_entropy
            && self.transcript_entropy + tol >= self.mutual_information
            && self.mutual_information + tol >= (1.0 - self.error) * self.input_entropy
    }
}

/// Runs the `PartitionComp` protocol on **every** partition of `[n]`
/// (with `P_B` finest) under an optional bit budget, and computes the
/// exact joint distribution of (input, transcript).
///
/// # Panics
///
/// Panics for `n` large enough that enumerating `B_n` partitions is
/// infeasible (use `n ≤ 10`; `B_10 = 115 975`).
pub fn partition_comp_information(n: usize, budget: Option<usize>) -> InfoBoundReport {
    let pb = SetPartition::finest(n);
    let inputs: Vec<SetPartition> = all_partitions(n).collect();
    debug_assert_eq!(inputs.len() as u128, bell_number(n));
    let mut rows: Vec<((usize, Vec<bool>), f64)> = Vec::with_capacity(inputs.len());
    let mut max_bits = 0usize;
    let mut errors = 0usize;
    for (idx, pa) in inputs.iter().enumerate() {
        let mut alice = JoinCompAlice::new(pa.clone());
        let mut bob = JoinCompBob::new(pb.clone());
        let run = match budget {
            Some(b) => run_protocol(&mut alice, &mut bob, &DriverOpts::new(16).bit_budget(b)),
            None => run_protocol(&mut alice, &mut bob, &DriverOpts::new(16)),
        };
        max_bits = max_bits.max(run.bits_exchanged);
        let correct = run.bob_output.as_ref() == Some(&pa.join(&pb));
        if !correct {
            errors += 1;
        }
        rows.push(((idx, run.transcript_bits()), 1.0));
    }
    let joint = Joint::from_weights(rows.into_iter().collect());
    let input_entropy = Dist::uniform((0..inputs.len()).collect::<Vec<_>>()).entropy();
    InfoBoundReport {
        n,
        budget,
        input_entropy,
        transcript_entropy: joint.marginal_y().entropy(),
        mutual_information: joint.mutual_information(),
        conditional_entropy: joint.conditional_entropy_x_given_y(),
        max_transcript_bits: max_bits,
        error: errors as f64 / inputs.len() as f64,
    }
}

/// The implied KT-1 `BCC(1)` round lower bound for
/// `ConnectedComponents` at communication `Θ(n)` bits per round:
/// `(1 − ε)·log₂ B_n / bits-per-round` (the Theorem 4.5 conclusion).
pub fn implied_round_lower_bound(report: &InfoBoundReport, bits_per_round: usize) -> f64 {
    (1.0 - report.error) * report.input_entropy / bits_per_round as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_protocol_reveals_everything() {
        let r = partition_comp_information(5, None);
        assert_eq!(r.error, 0.0);
        // Transcript determines PA: I = H(PA) = log2 B_5 = log2 52.
        assert!((r.input_entropy - (52f64).log2()).abs() < 1e-9);
        assert!((r.mutual_information - r.input_entropy).abs() < 1e-9);
        assert!(r.conditional_entropy < 1e-9);
        assert!(r.chain_holds());
        // And the paper's point: |Π| = Ω(n log n) ≥ H(PA).
        assert!(r.max_transcript_bits as f64 >= r.input_entropy);
    }

    #[test]
    fn starved_protocol_learns_nothing() {
        // Budget 0: empty transcript, I = 0, error 1.
        let r = partition_comp_information(4, Some(0));
        assert_eq!(r.mutual_information, 0.0);
        assert_eq!(r.error, 1.0);
        assert!(r.chain_holds());
    }

    #[test]
    fn information_grows_with_budget() {
        let budgets = [0usize, 2, 4, 6, 8, 12];
        let mut last = -1.0;
        for &b in &budgets {
            let r = partition_comp_information(4, Some(b));
            assert!(
                r.mutual_information >= last - 1e-9,
                "I not monotone at budget {b}"
            );
            assert!(
                r.mutual_information <= b as f64 + 1e-9,
                "I exceeds budget {b}"
            );
            assert!(r.chain_holds(), "chain fails at budget {b}");
            last = r.mutual_information;
        }
    }

    #[test]
    fn partial_budget_partial_error() {
        // Enough bits for Alice's message but not Bob's echo: Bob
        // decodes (error 0 among Bob outputs) — our error counts Bob's
        // output, so give him exactly Alice's message size.
        let n = 4;
        let alice_bits = bcc_comm::protocols::trivial_message_bits(n);
        let r = partition_comp_information(n, Some(alice_bits));
        // Bob received the whole input: he knows the join.
        assert_eq!(r.error, 0.0);
        // The transcript (= Alice's full message) determines PA.
        assert!((r.mutual_information - r.input_entropy).abs() < 1e-9);
    }

    #[test]
    fn implied_bound_positive() {
        let r = partition_comp_information(5, None);
        let lb = implied_round_lower_bound(&r, 4 * 5);
        assert!(lb > 0.0);
    }
}
