//! The Theorem 4.4 pipeline: rank lower bound → gadget reduction →
//! simulation cost → KT-1 round lower bound.
//!
//! If a deterministic KT-1 `BCC(1)` algorithm solves `MultiCycle` in
//! `r` rounds, the Section 4.3 simulation turns it into a 2-party
//! protocol for `TwoPartition` using `Θ(n)` bits per round; with
//! `D(TwoPartition) ≥ log₂ rank(E_n) = log₂ (n−1)!! = Θ(n log n)`
//! (Lemma 4.1 + log-rank), this forces `r = Ω(log n)`. Everything in
//! that chain is computed exactly here.

use bcc_comm::bounds::{certify_rank, RankCertificate};
use bcc_comm::reduction::Gadget;
use bcc_comm::simulate::simulate_two_party;
use bcc_model::{Algorithm, Decision};
use bcc_partitions::matrices::{partition_join_matrix, two_partition_matrix};
use bcc_partitions::SetPartition;

/// A complete Theorem 4.4 certificate for one ground-set size.
#[derive(Debug, Clone)]
pub struct Kt1LowerBound {
    /// Ground-set size of the `Partition`/`TwoPartition` instance.
    pub n: usize,
    /// Which gadget the reduction used.
    pub gadget: Gadget,
    /// The exact rank certificate (full rank ⇔ the paper's
    /// Theorem 2.3 / Lemma 4.1 verified at this size).
    pub rank: RankCertificate,
    /// Bits the simulation exchanges per simulated round (measured:
    /// one `{0,1,⊥}` character per gadget vertex crosses the cut each
    /// round, at 2 bits per character, plus 2 done-flag bits).
    pub bits_per_round: usize,
    /// The implied round lower bound
    /// `⌈ comm-lower-bound / bits-per-round ⌉`.
    pub round_lower_bound: usize,
}

/// Bits per simulated round for a gadget on ground size `n` (matches
/// `simulate_two_party`'s accounting exactly; see its tests).
pub fn simulation_bits_per_round(gadget: Gadget, n: usize) -> usize {
    2 * gadget.num_vertices(n) + 2
}

/// Builds the Theorem 4.4 certificate: exact rank of the communication
/// matrix (`E_n` for the 2-regular gadget / `MultiCycle`, `M_n` for
/// the general gadget / `Connectivity`), the per-round simulation
/// cost, and the implied round lower bound.
///
/// # Panics
///
/// Panics if `n` is odd with [`Gadget::TwoRegular`], or large enough
/// that the matrix does not fit in memory (`B_n` × `B_n` for the
/// general gadget — keep `n ≤ 7` there, `n ≤ 10` for 2-regular).
pub fn theorem_4_4_certificate(gadget: Gadget, n: usize) -> Kt1LowerBound {
    let jm = match gadget {
        Gadget::General => partition_join_matrix(n),
        Gadget::TwoRegular => two_partition_matrix(n),
    };
    let rank = certify_rank(&jm);
    let bits_per_round = simulation_bits_per_round(gadget, n);
    let round_lower_bound = (rank.comm_lower_bound_bits / bits_per_round as f64).ceil() as usize;
    Kt1LowerBound {
        n,
        gadget,
        rank,
        bits_per_round,
        round_lower_bound,
    }
}

/// Verifies the reduction end-to-end for one algorithm: for every
/// `(P_A, P_B)` in `pairs`, the two-party simulation of `algorithm`
/// answers the `Partition` question correctly (YES ⇔ join trivial)
/// and its measured per-round cost matches
/// [`simulation_bits_per_round`]. Returns the maximum rounds used.
pub fn verify_simulation_correctness(
    gadget: Gadget,
    algorithm: &dyn Algorithm,
    pairs: &[(SetPartition, SetPartition)],
) -> Result<usize, String> {
    let mut max_rounds = 0;
    for (pa, pb) in pairs {
        let report = simulate_two_party(gadget, algorithm, pa, pb, 0, 1_000_000);
        let expect = if pa.join(pb).is_trivial() {
            Decision::Yes
        } else {
            Decision::No
        };
        if report.system_decision() != expect {
            return Err(format!("wrong answer on PA={pa} PB={pb}"));
        }
        let per_round = simulation_bits_per_round(gadget, pa.ground_size());
        if report.bits_exchanged != report.rounds * per_round {
            return Err(format!(
                "cost mismatch on PA={pa} PB={pb}: {} bits over {} rounds",
                report.bits_exchanged, report.rounds
            ));
        }
        max_rounds = max_rounds.max(report.rounds);
    }
    Ok(max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_algorithms::{NeighborIdBroadcast, Problem};
    use bcc_partitions::enumerate::matching_partitions;
    use bcc_partitions::numbers::num_matching_partitions;

    #[test]
    fn certificate_two_regular() {
        let cert = theorem_4_4_certificate(Gadget::TwoRegular, 6);
        assert!(cert.rank.full_rank, "Lemma 4.1 verified at n=6");
        assert_eq!(cert.rank.dim as u128, num_matching_partitions(6));
        assert_eq!(cert.bits_per_round, 2 * 12 + 2);
        assert!(cert.round_lower_bound >= 1);
    }

    #[test]
    fn certificate_general() {
        let cert = theorem_4_4_certificate(Gadget::General, 4);
        assert!(cert.rank.full_rank, "Theorem 2.3 verified at n=4");
        assert_eq!(cert.rank.dim, 15);
        assert_eq!(cert.bits_per_round, 2 * 16 + 2);
    }

    #[test]
    fn simulation_verified_against_real_algorithm() {
        let parts: Vec<_> = matching_partitions(4).collect();
        let pairs: Vec<_> = parts
            .iter()
            .flat_map(|a| parts.iter().map(move |b| (a.clone(), b.clone())))
            .collect();
        let algo = NeighborIdBroadcast::new(Problem::MultiCycle);
        let rounds = verify_simulation_correctness(Gadget::TwoRegular, &algo, &pairs)
            .expect("simulation correct");
        assert!(rounds > 0);
    }

    #[test]
    fn lower_bound_grows_with_n() {
        // The Ω(log n) shape: the implied bound is nondecreasing in n
        // over the feasible range (log2 (n−1)!! / Θ(n) grows like log n).
        let b6 = theorem_4_4_certificate(Gadget::TwoRegular, 6).round_lower_bound;
        let b10 = theorem_4_4_certificate(Gadget::TwoRegular, 10).round_lower_bound;
        assert!(b10 >= b6);
    }
}
