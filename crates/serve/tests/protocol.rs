//! Protocol edge cases: every malformed or hostile input must map to
//! a typed error response — the daemon never panics, and (except for
//! an oversized line) the connection stays usable.

mod common;

use bcc_serve::ServerConfig;
use common::{json_str, json_u64, start_server, TestConn};

fn quick_config() -> ServerConfig {
    ServerConfig {
        threads: 1,
        ..ServerConfig::default()
    }
}

/// Drains the daemon and drops the connection: the accept loop only
/// exits once every connection is gone, so tests must not hold one
/// open across `listening.join()`.
fn shutdown(mut conn: TestConn) {
    let bye = conn.roundtrip("{\"type\":\"shutdown\"}");
    assert_eq!(json_str(&bye, "type").as_deref(), Some("bye"));
}

#[test]
fn oversized_line_gets_typed_error_then_close() {
    let (_server, listening) = start_server(ServerConfig {
        max_line_bytes: 256,
        ..quick_config()
    });
    let mut conn = TestConn::connect(listening.port());
    let huge = format!("{{\"type\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(4096));
    let reply = conn.roundtrip(&huge);
    assert_eq!(json_str(&reply, "type").as_deref(), Some("error"));
    assert_eq!(json_str(&reply, "code").as_deref(), Some("line_too_long"));
    // An oversized line is not a trustworthy framing boundary: the
    // daemon closes this connection but keeps serving new ones.
    assert!(conn.at_eof());
    let mut fresh = TestConn::connect(listening.port());
    let pong = fresh.roundtrip("{\"type\":\"ping\",\"nonce\":3}");
    assert_eq!(json_u64(&pong, "nonce"), Some(3));
    shutdown(fresh);
    listening.join().expect("accept loop");
}

#[test]
fn malformed_json_and_unknown_type_keep_connection_usable() {
    let (_server, listening) = start_server(quick_config());
    let mut conn = TestConn::connect(listening.port());

    let reply = conn.roundtrip("{this is not json");
    assert_eq!(json_str(&reply, "code").as_deref(), Some("bad_json"));

    let reply = conn.roundtrip("[1,2,3]");
    assert_eq!(json_str(&reply, "code").as_deref(), Some("bad_request"));

    let reply = conn.roundtrip("{\"type\":\"warp\"}");
    assert_eq!(json_str(&reply, "code").as_deref(), Some("unknown_type"));

    let reply = conn.roundtrip("{\"type\":\"submit\"}");
    assert_eq!(json_str(&reply, "code").as_deref(), Some("bad_request"));

    // The connection survived four bad lines.
    let pong = conn.roundtrip("{\"type\":\"ping\",\"nonce\":9}");
    assert_eq!(json_u64(&pong, "nonce"), Some(9));
    shutdown(conn);
    listening.join().expect("accept loop");
}

#[test]
fn unknown_experiment_is_rejected_without_consuming_a_slot() {
    let (server, listening) = start_server(quick_config());
    let mut conn = TestConn::connect(listening.port());
    let reply = conn.roundtrip("{\"type\":\"submit\",\"experiment\":\"e99\",\"seed\":1}");
    assert_eq!(json_str(&reply, "type").as_deref(), Some("reject"));
    assert_eq!(
        json_str(&reply, "code").as_deref(),
        Some("unknown_experiment")
    );
    let stats = server.stats();
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.queue_depth, 0);
    shutdown(conn);
    listening.join().expect("accept loop");
}

#[test]
fn quota_and_queue_rejections_carry_logical_retry_hints() {
    // quota 1: a batch of two identical submits trips the quota on
    // the second slot, deterministically (both admitted under one
    // admission-lock hold).
    let (_server, listening) = start_server(ServerConfig {
        quota: 1,
        ..quick_config()
    });
    let mut conn = TestConn::connect(listening.port());
    conn.send("{\"type\":\"batch\",\"n\":2}");
    conn.send("{\"type\":\"submit\",\"experiment\":\"e2\",\"seed\":5}");
    conn.send("{\"type\":\"submit\",\"experiment\":\"e2\",\"seed\":5}");
    let first = conn.recv();
    let second = conn.recv();
    assert_eq!(json_str(&first, "type").as_deref(), Some("accepted"));
    assert_eq!(json_str(&second, "code").as_deref(), Some("quota_exceeded"));
    assert_eq!(json_u64(&second, "retry_after_ticks"), Some(1));
    let req = json_u64(&first, "req").expect("req id");
    let result = conn.roundtrip(&format!("{{\"type\":\"await\",\"req\":{req}}}"));
    assert_eq!(json_str(&result, "type").as_deref(), Some("result"));
    shutdown(conn);
    listening.join().expect("accept loop");

    // queue cap 1: the second slot of a batch sees a full queue.
    let (_server, listening) = start_server(ServerConfig {
        queue_cap: 1,
        ..quick_config()
    });
    let mut conn = TestConn::connect(listening.port());
    conn.send("{\"type\":\"batch\",\"n\":2}");
    conn.send("{\"type\":\"submit\",\"experiment\":\"e2\",\"seed\":5}");
    conn.send("{\"type\":\"submit\",\"experiment\":\"e2\",\"seed\":5}");
    let first = conn.recv();
    let second = conn.recv();
    assert_eq!(json_str(&first, "type").as_deref(), Some("accepted"));
    assert_eq!(json_str(&second, "code").as_deref(), Some("queue_full"));
    assert_eq!(json_u64(&second, "retry_after_ticks"), Some(1));
    shutdown(conn);
    listening.join().expect("accept loop");
}

#[test]
fn mid_request_disconnect_releases_quota_and_daemon_survives() {
    let (server, listening) = start_server(ServerConfig {
        quota: 1,
        ..quick_config()
    });
    let mut conn = TestConn::connect(listening.port());
    let hello = conn.roundtrip("{\"type\":\"hello\",\"client\":\"ghost\"}");
    assert_eq!(json_str(&hello, "type").as_deref(), Some("welcome"));
    let reply = conn.roundtrip("{\"type\":\"submit\",\"experiment\":\"e2\",\"seed\":5}");
    assert_eq!(json_str(&reply, "type").as_deref(), Some("accepted"));
    // Vanish without awaiting the result.
    drop(conn);

    // The daemon keeps serving, and the ghost's quota slot is
    // released once its request reaches a terminal state.
    let mut conn = TestConn::connect(listening.port());
    let hello = conn.roundtrip("{\"type\":\"hello\",\"client\":\"ghost\"}");
    assert_eq!(json_str(&hello, "type").as_deref(), Some("welcome"));
    let mut accepted = false;
    for _ in 0..400 {
        let reply = conn.roundtrip("{\"type\":\"submit\",\"experiment\":\"e2\",\"seed\":5}");
        match json_str(&reply, "type").as_deref() {
            Some("accepted") => {
                accepted = true;
                let req = json_u64(&reply, "req").expect("req id");
                let result = conn.roundtrip(&format!("{{\"type\":\"await\",\"req\":{req}}}"));
                assert_eq!(json_str(&result, "type").as_deref(), Some("result"));
                break;
            }
            Some("reject") => std::thread::sleep(std::time::Duration::from_millis(25)),
            other => panic!("unexpected reply {other:?}: {reply}"),
        }
    }
    assert!(accepted, "quota slot never released after disconnect");
    assert!(server.stats().completed >= 1);
    shutdown(conn);
    listening.join().expect("accept loop");
}

#[test]
fn await_of_unknown_req_and_double_await_are_typed_errors() {
    let (_server, listening) = start_server(quick_config());
    let mut conn = TestConn::connect(listening.port());
    let reply = conn.roundtrip("{\"type\":\"await\",\"req\":42}");
    assert_eq!(json_str(&reply, "code").as_deref(), Some("unknown_req"));

    let accepted = conn.roundtrip("{\"type\":\"submit\",\"experiment\":\"e2\",\"seed\":5}");
    let req = json_u64(&accepted, "req").expect("req id");
    let result = conn.roundtrip(&format!("{{\"type\":\"await\",\"req\":{req}}}"));
    assert_eq!(json_str(&result, "type").as_deref(), Some("result"));
    // Results are delivered exactly once.
    let again = conn.roundtrip(&format!("{{\"type\":\"await\",\"req\":{req}}}"));
    assert_eq!(json_str(&again, "code").as_deref(), Some("unknown_req"));
    shutdown(conn);
    listening.join().expect("accept loop");
}

#[test]
fn drain_rejects_new_submits_and_second_shutdown_is_idempotent() {
    let (_server, listening) = start_server(quick_config());
    let mut conn = TestConn::connect(listening.port());
    let bye = conn.roundtrip("{\"type\":\"shutdown\"}");
    assert_eq!(json_str(&bye, "type").as_deref(), Some("bye"));
    // Shutdown is idempotent on a still-open connection.
    let bye2 = conn.roundtrip("{\"type\":\"shutdown\"}");
    assert_eq!(json_str(&bye2, "type").as_deref(), Some("bye"));
    assert_eq!(json_u64(&bye, "drained"), json_u64(&bye2, "drained"));
    // New work on the open connection is refused as draining.
    let reply = conn.roundtrip("{\"type\":\"submit\",\"experiment\":\"e2\",\"seed\":5}");
    assert_eq!(json_str(&reply, "code").as_deref(), Some("draining"));
    drop(conn);
    listening.join().expect("accept loop");
}

#[test]
fn observe_streams_snapshots_on_ticks_and_terminates() {
    let (_server, listening) = start_server(quick_config());

    // An immediate one-shot observe: snapshot at the current tick,
    // then the terminator.
    let mut conn = TestConn::connect(listening.port());
    let snap = conn.roundtrip("{\"type\":\"observe\"}");
    assert_eq!(json_str(&snap, "type").as_deref(), Some("snapshot"));
    assert_eq!(json_u64(&snap, "tick"), Some(0));
    let end = conn.recv();
    assert_eq!(json_str(&end, "type").as_deref(), Some("observed"));
    assert_eq!(json_u64(&end, "snapshots"), Some(1));

    // A watcher on its own connection sees a request complete: the
    // second snapshot arrives at tick 1 with completed=1.
    let mut watcher = TestConn::connect(listening.port());
    watcher.send("{\"type\":\"observe\",\"every\":1,\"count\":2}");
    let first = watcher.recv();
    assert_eq!(json_u64(&first, "tick"), Some(0));
    assert_eq!(json_u64(&first, "completed"), Some(0));

    let accepted = conn.roundtrip("{\"type\":\"submit\",\"experiment\":\"e2\",\"seed\":5}");
    let req = json_u64(&accepted, "req").expect("req id");
    let result = conn.roundtrip(&format!("{{\"type\":\"await\",\"req\":{req}}}"));
    assert_eq!(json_str(&result, "type").as_deref(), Some("result"));

    let second = watcher.recv();
    assert_eq!(json_str(&second, "type").as_deref(), Some("snapshot"));
    assert_eq!(json_u64(&second, "tick"), Some(1));
    assert_eq!(json_u64(&second, "completed"), Some(1));
    let end = watcher.recv();
    assert_eq!(json_str(&end, "type").as_deref(), Some("observed"));
    assert_eq!(json_u64(&end, "snapshots"), Some(2));
    drop(watcher);

    // Observe rejects zeroes with a typed error.
    let err = conn.roundtrip("{\"type\":\"observe\",\"every\":0}");
    assert_eq!(json_str(&err, "code").as_deref(), Some("bad_request"));

    shutdown(conn);
    listening.join().expect("accept loop");
}

#[test]
fn observe_ends_early_when_the_daemon_drains() {
    let (_server, listening) = start_server(quick_config());
    // Ask for far more snapshots than will ever tick; drain must
    // release the watcher with a terminator instead of hanging.
    let mut watcher = TestConn::connect(listening.port());
    watcher.send("{\"type\":\"observe\",\"every\":1,\"count\":1000}");
    let first = watcher.recv();
    assert_eq!(json_str(&first, "type").as_deref(), Some("snapshot"));

    let mut conn = TestConn::connect(listening.port());
    let bye = conn.roundtrip("{\"type\":\"shutdown\"}");
    assert_eq!(json_str(&bye, "type").as_deref(), Some("bye"));

    let end = watcher.recv();
    assert_eq!(json_str(&end, "type").as_deref(), Some("observed"));
    assert_eq!(json_u64(&end, "snapshots"), Some(1));
    drop(watcher);
    drop(conn);
    listening.join().expect("accept loop");
}
