//! Shared helpers for the serve integration tests.
#![allow(dead_code)] // each test binary uses a different subset

use bcc_serve::{net, NetConfig, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Starts an in-process daemon on an OS-assigned loopback port.
pub fn start_server(config: ServerConfig) -> (Arc<Server>, bcc_serve::Listening) {
    let server = Server::start(config);
    let listening = net::start(
        Arc::clone(&server),
        NetConfig {
            port: 0,
            port_file: None,
            drain_timeout: std::time::Duration::from_secs(10),
        },
    )
    .expect("bind loopback");
    (server, listening)
}

/// A line-oriented test connection.
pub struct TestConn {
    pub reader: BufReader<TcpStream>,
    pub writer: TcpStream,
}

impl TestConn {
    pub fn connect(port: u16) -> TestConn {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        TestConn {
            reader,
            writer: stream,
        }
    }

    pub fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    pub fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "daemon closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    /// Sends one line and reads one reply.
    pub fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    /// True when the next read hits EOF (connection closed by the
    /// daemon).
    pub fn at_eof(&mut self) -> bool {
        let mut line = String::new();
        matches!(self.reader.read_line(&mut line), Ok(0))
    }
}

/// Extracts a `"key":<u64>` field from a flat JSON line.
pub fn json_u64(line: &str, key: &str) -> Option<u64> {
    bcc_metrics::json::parse(line)
        .ok()?
        .get(key)
        .and_then(bcc_metrics::json::JsonValue::as_u64)
}

/// Extracts a `"key":"string"` field from a flat JSON line.
pub fn json_str(line: &str, key: &str) -> Option<String> {
    bcc_metrics::json::parse(line)
        .ok()?
        .get(key)
        .and_then(bcc_metrics::json::JsonValue::as_str)
        .map(str::to_string)
}
