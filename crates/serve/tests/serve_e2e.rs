//! End-to-end determinism: real `bcc-serve` + `bcc-client` processes.
//!
//! Each daemon run is a fresh OS process, so the process-wide
//! artifact store starts cold every time — which is exactly what the
//! byte-identity contract needs: same seed + same script ⇒ identical
//! transcript, identical metrics dump, identical trace.

mod common;

use common::json_u64;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const SCRIPT: &str = "\
{\"op\":\"hello\",\"client\":\"e2e\"}
{\"op\":\"submit\",\"experiment\":\"e2\"}
{\"op\":\"await\",\"submit\":0}
{\"op\":\"submit\",\"experiment\":\"e2\"}
{\"op\":\"await\",\"submit\":1}
{\"op\":\"stats\"}
{\"op\":\"shutdown\"}
";

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("bcc-serve-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        TempDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the daemon if a test fails before its graceful shutdown.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// One full daemon lifecycle: start, replay the script, wait for the
/// graceful exit. Returns (transcript, metrics dump, trace dump).
fn run_once(dir: &TempDir, run: &str) -> (String, String, String) {
    let port_file = dir.path(&format!("port-{run}"));
    let metrics = dir.path(&format!("metrics-{run}.jsonl"));
    let trace = dir.path(&format!("trace-{run}.jsonl"));
    let transcript = dir.path(&format!("transcript-{run}.jsonl"));
    let script = dir.path("script.jsonl");
    std::fs::write(&script, SCRIPT).expect("write script");

    let daemon = Command::new(env!("CARGO_BIN_EXE_bcc-serve"))
        .args([
            "--jobs",
            "1",
            "--port-file",
            path_str(&port_file),
            "--metrics",
            path_str(&metrics),
            "--trace",
            path_str(&trace),
            "--trace-level",
            "spans",
            "--drain-timeout-secs",
            "20",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let mut daemon = Reaper(daemon);

    let client = Command::new(env!("CARGO_BIN_EXE_bcc-client"))
        .args([
            "--port-file",
            path_str(&port_file),
            "--script",
            path_str(&script),
            "--seed",
            "2024",
            "--transcript",
            path_str(&transcript),
            "--strict",
        ])
        .status()
        .expect("run client");
    assert!(client.success(), "bcc-client failed: {client:?}");

    let status = daemon.0.wait().expect("wait daemon");
    assert!(status.success(), "daemon did not exit 0: {status:?}");

    (
        std::fs::read_to_string(&transcript).expect("transcript"),
        std::fs::read_to_string(&metrics).expect("metrics dump"),
        std::fs::read_to_string(&trace).expect("trace dump"),
    )
}

fn path_str(p: &Path) -> &str {
    p.to_str().expect("utf-8 path")
}

#[test]
fn same_seed_reruns_are_byte_identical_and_second_submit_hits_warm_cache() {
    let dir = TempDir::new("e2e");
    let (transcript_a, metrics_a, trace_a) = run_once(&dir, "a");
    let (transcript_b, metrics_b, trace_b) = run_once(&dir, "b");

    // Byte-identity across same-seed re-runs against fresh daemons.
    assert_eq!(transcript_a, transcript_b, "transcripts diverged");
    assert_eq!(metrics_a, metrics_b, "metrics dumps diverged");
    assert_eq!(trace_a, trace_b, "trace dumps diverged");

    // The script submitted e2 twice with the same seed: the stats
    // line must show warm-cache hits from the second run.
    let stats_line = transcript_a
        .lines()
        .find(|l| l.contains("\"recv\":{\"type\":\"stats\""))
        .expect("stats reply in transcript");
    let hits = json_u64(&extract_recv(stats_line), "cache_hits").expect("cache_hits");
    let lookups = json_u64(&extract_recv(stats_line), "cache_lookups").expect("cache_lookups");
    assert!(lookups > 0, "no cache lookups recorded");
    assert!(hits > 0, "second e2 submit produced no warm-cache hits");

    // Both submits ran to completion and reported the same
    // deterministic lookup count.
    let results: Vec<String> = transcript_a
        .lines()
        .filter(|l| l.contains("\"recv\":{\"type\":\"result\""))
        .map(extract_recv)
        .collect();
    assert_eq!(results.len(), 2, "expected two result lines");
    for line in &results {
        assert_eq!(json_u64(line, "completed"), json_u64(line, "scheduled"));
        assert!(line.contains("\"status\":\"done\""));
        assert!(line.contains("\"passed\":true"));
    }
    assert_eq!(
        json_u64(&results[0], "cache_lookups"),
        json_u64(&results[1], "cache_lookups"),
        "lookup counts must not depend on cache warmth"
    );

    // The flushed dump carries the service counters the CI smoke job
    // and bcc-report key on.
    let dump = bcc_metrics::MetricsDump::parse_jsonl(&metrics_a).expect("parse dump");
    assert_eq!(dump.counter("serve.accepted"), Some(2));
    assert_eq!(dump.counter("serve.completed"), Some(2));
    assert_eq!(dump.counter("serve.drained"), Some(0));
    assert!(dump.counter("cache.lookups").unwrap_or(0) > 0);
    assert!(dump.hists().contains_key("serve.queue.depth"));

    // The trace carries one request span pair per submit.
    let spans = trace_a
        .lines()
        .filter(|l| l.contains("serve.request"))
        .count();
    assert_eq!(spans, 4, "expected span start+end per request");
}

fn extract_recv(transcript_line: &str) -> String {
    let idx = transcript_line.find("\"recv\":").expect("recv record");
    let inner = &transcript_line[idx + "\"recv\":".len()..];
    inner.strip_suffix('}').expect("trailing brace").to_string()
}
