//! The JSONL wire protocol: one JSON object per line in each
//! direction, parsed with the workspace's own recursive-descent
//! parser ([`bcc_metrics::json`]) and rendered with the same
//! hand-rolled conventions as every other codec in the repo
//! ([`bcc_experiments::json::escape`], fixed key order) so a reply is
//! a pure function of the request stream and transcripts can be
//! pinned byte-for-byte.
//!
//! Responses never contain wall-clock quantities: latencies live in
//! the runner's profiling layer (lint rule D2), and everything a
//! `result` line carries — shard counts, cache lookups, the reduced
//! report — is a deterministic function of `(experiment, quick,
//! seed)` plus admission order.

use bcc_experiments::json::escape;
use bcc_metrics::json::{self, JsonValue};

/// Protocol version announced in `welcome`.
pub const PROTO_VERSION: u64 = 1;

/// One submitted experiment run: the payload of a `submit` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitReq {
    /// Experiment id (`"e2"`, …); validated against the registry at
    /// admission.
    pub experiment: String,
    /// Trim instance sizes (defaults to `true`: a service exists for
    /// repeat queries, not one-off deep runs).
    pub quick: bool,
    /// Suite seed; `None` lets the server fill its default.
    pub seed: Option<u64>,
    /// Larger runs first; FIFO within a priority class.
    pub priority: u64,
    /// Optional per-job wall-clock deadline, enforced by the runner.
    pub timeout_secs: Option<u64>,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Names the connection; the name keys quotas and per-connection
    /// `serve.*` metrics units.
    Hello {
        /// Client-chosen name (stable across reconnects).
        client: String,
    },
    /// Submit one experiment run.
    Submit(SubmitReq),
    /// Frame: the next `n` lines are `submit`s admitted under one
    /// admission-lock hold, so the queue-depth observations they
    /// produce are a deterministic ramp.
    Batch {
        /// How many `submit` lines follow.
        n: u64,
    },
    /// Block until the result for a previously accepted request is
    /// ready, then deliver it.
    Await {
        /// Server-assigned request id from the `accepted` reply.
        req: u64,
    },
    /// Cancel a queued or running request.
    Cancel {
        /// Server-assigned request id.
        req: u64,
    },
    /// Live server counters (queue depth, cache stats, …).
    Stats,
    /// Stream `count` stats snapshots, one every `every` logical
    /// ticks (a tick = one request reaching a terminal state), then a
    /// terminating `observed` line. Ends early when the server
    /// drains. Snapshots are keyed to the logical tick counter, never
    /// to wall-clock, so an `observe` transcript of a sequential
    /// script is deterministic.
    Observe {
        /// Ticks between snapshots (≥ 1).
        every: u64,
        /// Snapshots to stream (≥ 1).
        count: u64,
    },
    /// Liveness probe; echoed back in `pong`.
    Ping {
        /// Echo value.
        nonce: u64,
    },
    /// Begin graceful drain: refuse new work, finish everything
    /// admitted, flush dumps, reply `bye`, exit.
    Shutdown,
}

/// A typed protocol error: the `code` is stable vocabulary, the
/// message is advisory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable machine-readable code (`bad_json`, `bad_request`,
    /// `unknown_type`, `line_too_long`, `unknown_req`).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// A `bad_request` error with the given detail.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ProtoError {
            code: "bad_request",
            message: message.into(),
        }
    }
}

fn field_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, ProtoError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtoError::bad_request(format!("field {key:?} must be a u64"))),
    }
}

fn field_bool(v: &JsonValue, key: &str) -> Result<Option<bool>, ProtoError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(ProtoError::bad_request(format!(
            "field {key:?} must be a bool"
        ))),
    }
}

fn field_str(v: &JsonValue, key: &str) -> Result<Option<String>, ProtoError> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => x
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| ProtoError::bad_request(format!("field {key:?} must be a string"))),
    }
}

fn require<T>(value: Option<T>, key: &str) -> Result<T, ProtoError> {
    value.ok_or_else(|| ProtoError::bad_request(format!("missing field {key:?}")))
}

/// Parses a `submit` object (already identified by its `type`).
pub fn parse_submit(v: &JsonValue) -> Result<SubmitReq, ProtoError> {
    Ok(SubmitReq {
        experiment: require(field_str(v, "experiment")?, "experiment")?,
        quick: field_bool(v, "quick")?.unwrap_or(true),
        seed: field_u64(v, "seed")?,
        priority: field_u64(v, "priority")?.unwrap_or(0),
        timeout_secs: field_u64(v, "timeout_secs")?,
    })
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, ProtoError> {
        let v = json::parse(line).map_err(|e| ProtoError {
            code: "bad_json",
            message: e,
        })?;
        if v.as_obj().is_none() {
            return Err(ProtoError::bad_request("request must be a JSON object"));
        }
        let ty = require(field_str(&v, "type")?, "type")?;
        match ty.as_str() {
            "hello" => Ok(Request::Hello {
                client: field_str(&v, "client")?.unwrap_or_else(|| "anon".to_string()),
            }),
            "submit" => Ok(Request::Submit(parse_submit(&v)?)),
            "batch" => Ok(Request::Batch {
                n: require(field_u64(&v, "n")?, "n")?,
            }),
            "await" => Ok(Request::Await {
                req: require(field_u64(&v, "req")?, "req")?,
            }),
            "cancel" => Ok(Request::Cancel {
                req: require(field_u64(&v, "req")?, "req")?,
            }),
            "stats" => Ok(Request::Stats),
            "observe" => {
                let every = field_u64(&v, "every")?.unwrap_or(1);
                let count = field_u64(&v, "count")?.unwrap_or(1);
                if every == 0 || count == 0 {
                    return Err(ProtoError::bad_request(
                        "observe fields \"every\" and \"count\" must be >= 1",
                    ));
                }
                Ok(Request::Observe { every, count })
            }
            "ping" => Ok(Request::Ping {
                nonce: field_u64(&v, "nonce")?.unwrap_or(0),
            }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtoError {
                code: "unknown_type",
                message: format!("unknown request type {other:?}"),
            }),
        }
    }
}

/// Why an admission was refused; rendered as a `reject` line with a
/// logical `retry_after_ticks` (completions to wait for, not
/// seconds — the protocol never promises wall-clock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reject {
    /// The bounded queue is at capacity.
    QueueFull {
        /// Current depth; retry after this many completions.
        depth: u64,
    },
    /// The client has too many outstanding requests.
    QuotaExceeded {
        /// The client's outstanding count.
        outstanding: u64,
    },
    /// The server is draining and refuses new work.
    Draining,
    /// The experiment id is not in the registry.
    UnknownExperiment {
        /// The offending id.
        id: String,
    },
}

impl Reject {
    /// Stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            Reject::QueueFull { .. } => "queue_full",
            Reject::QuotaExceeded { .. } => "quota_exceeded",
            Reject::Draining => "draining",
            Reject::UnknownExperiment { .. } => "unknown_experiment",
        }
    }

    /// Completions the client should wait for before retrying
    /// (0 = do not retry).
    pub fn retry_after_ticks(&self) -> u64 {
        match self {
            Reject::QueueFull { depth } => *depth,
            Reject::QuotaExceeded { outstanding } => *outstanding,
            Reject::Draining | Reject::UnknownExperiment { .. } => 0,
        }
    }

    fn message(&self) -> String {
        match self {
            Reject::QueueFull { depth } => {
                format!("admission queue full (depth {depth})")
            }
            Reject::QuotaExceeded { outstanding } => {
                format!("per-client quota exceeded ({outstanding} outstanding)")
            }
            Reject::Draining => "server is draining".to_string(),
            Reject::UnknownExperiment { id } => format!("unknown experiment {id:?}"),
        }
    }
}

/// Terminal state of a request, carried by its `result` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultStatus {
    /// Ran to a reduced report (possibly degraded by lost shards).
    Done,
    /// Cancelled before any shard was scheduled.
    Cancelled,
}

/// The payload of a `result` line.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultMsg {
    /// Server-assigned request id.
    pub req: u64,
    /// Experiment id.
    pub experiment: String,
    /// Terminal state.
    pub status: ResultStatus,
    /// Whether every report check passed (`None` when cancelled).
    pub passed: Option<bool>,
    /// Shards scheduled on the pool.
    pub scheduled: u64,
    /// Shards that produced output.
    pub completed: u64,
    /// Shards reported cancelled.
    pub cancelled: u64,
    /// Artifact-store lookups this request performed (hits + misses:
    /// deterministic regardless of cache warmth or thread count).
    pub cache_lookups: u64,
    /// The reduced report, pre-rendered as a JSON object.
    pub report_json: Option<String>,
}

/// Live server counters for a `stats` reply. With a single-threaded
/// pool and a quiescent sequential script these are deterministic;
/// under concurrency they are advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsMsg {
    /// Requests admitted.
    pub accepted: u64,
    /// Requests refused (all reject codes).
    pub rejected: u64,
    /// Requests run to a result.
    pub completed: u64,
    /// Requests cancelled before completion.
    pub cancelled: u64,
    /// Requests that were still queued when drain began.
    pub drained: u64,
    /// Current admission-queue depth.
    pub queue_depth: u64,
    /// Whether the server is draining.
    pub draining: bool,
    /// Artifact-store lookups since process start.
    pub cache_lookups: u64,
    /// Artifact-store hits since process start.
    pub cache_hits: u64,
    /// Artifacts resident in the store.
    pub cache_entries: u64,
}

/// Per-worker transport health inside a `snapshot` line: liveness as
/// the coordinator last observed it, respawn count of the worker
/// group, and currently open sessions. Only present when the
/// installed transport backend tracks workers (i.e. `sockets:N`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerHealthMsg {
    /// Worker rank.
    pub rank: u64,
    /// Whether the coordinator still believes the worker alive.
    pub alive: bool,
    /// Times the worker group was respawned after a death.
    pub respawns: u64,
    /// Sessions currently open on the group.
    pub sessions: u64,
}

/// Transport-backend health inside a `snapshot` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportHealthMsg {
    /// Backend label (`sockets:N`).
    pub backend: String,
    /// Per-worker health, rank-ordered. Empty until the group is
    /// first spawned.
    pub workers: Vec<WorkerHealthMsg>,
}

impl TransportHealthMsg {
    fn to_json(&self) -> String {
        let workers: Vec<String> = self
            .workers
            .iter()
            .map(|w| {
                format!(
                    "{{\"rank\":{},\"alive\":{},\"respawns\":{},\"sessions\":{}}}",
                    w.rank, w.alive, w.respawns, w.sessions
                )
            })
            .collect();
        format!(
            "{{\"backend\":\"{}\",\"workers\":[{}]}}",
            escape(&self.backend),
            workers.join(",")
        )
    }
}

/// A response line, rendered with fixed key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to `hello`.
    Welcome,
    /// A `submit` was admitted.
    Accepted {
        /// Server-assigned request id.
        req: u64,
        /// Queue depth observed at admission (after the push).
        queue_depth: u64,
    },
    /// A `submit` was refused with explicit backpressure.
    Rejected(Reject),
    /// A finished request, delivered via `await`.
    Result(ResultMsg),
    /// Reply to `cancel`; `state` is `cancelled`, `done`, or
    /// `unknown`.
    Cancelled {
        /// The request id.
        req: u64,
        /// What the cancel found.
        state: &'static str,
    },
    /// Reply to `stats`.
    Stats(StatsMsg),
    /// One streamed `observe` snapshot: the stats at a logical tick.
    Snapshot {
        /// The logical tick (completions + cancellations so far) this
        /// snapshot was taken at.
        tick: u64,
        /// The counters at that tick.
        stats: StatsMsg,
        /// Transport-backend worker health, when the installed
        /// backend tracks workers (`None` on the local backend, which
        /// keeps the rendered line byte-identical to the
        /// pre-telemetry protocol there).
        transport: Option<TransportHealthMsg>,
    },
    /// Terminates an `observe` stream.
    Observed {
        /// Snapshots actually streamed (may be fewer than requested
        /// when the server drained mid-stream).
        snapshots: u64,
        /// The tick at termination.
        tick: u64,
    },
    /// Reply to `ping`.
    Pong {
        /// Echoed nonce.
        nonce: u64,
    },
    /// Reply to `shutdown`, sent after the drain + flush completed.
    Bye {
        /// Requests that were still queued when drain began.
        drained: u64,
    },
    /// A typed protocol error (the connection stays usable except
    /// after `line_too_long`).
    Error(ProtoError),
}

impl Response {
    /// Renders this response as one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Response::Welcome => format!(
                "{{\"type\":\"welcome\",\"server\":\"bcc-serve\",\"proto\":{PROTO_VERSION}}}"
            ),
            Response::Accepted { req, queue_depth } => {
                format!("{{\"type\":\"accepted\",\"req\":{req},\"queue_depth\":{queue_depth}}}")
            }
            Response::Rejected(reject) => format!(
                "{{\"type\":\"reject\",\"code\":\"{}\",\"retry_after_ticks\":{},\"message\":\"{}\"}}",
                reject.code(),
                reject.retry_after_ticks(),
                escape(&reject.message())
            ),
            Response::Result(r) => {
                let status = match r.status {
                    ResultStatus::Done => "done",
                    ResultStatus::Cancelled => "cancelled",
                };
                let passed = match r.passed {
                    Some(p) => p.to_string(),
                    None => "null".to_string(),
                };
                let report = r.report_json.as_deref().unwrap_or("null");
                format!(
                    "{{\"type\":\"result\",\"req\":{},\"experiment\":\"{}\",\"status\":\"{}\",\
                     \"passed\":{},\"scheduled\":{},\"completed\":{},\"cancelled\":{},\
                     \"cache_lookups\":{},\"report\":{}}}",
                    r.req,
                    escape(&r.experiment),
                    status,
                    passed,
                    r.scheduled,
                    r.completed,
                    r.cancelled,
                    r.cache_lookups,
                    report
                )
            }
            Response::Cancelled { req, state } => {
                format!("{{\"type\":\"cancelled\",\"req\":{req},\"state\":\"{state}\"}}")
            }
            Response::Stats(s) => format!(
                "{{\"type\":\"stats\",\"accepted\":{},\"rejected\":{},\"completed\":{},\
                 \"cancelled\":{},\"drained\":{},\"queue_depth\":{},\"draining\":{},\
                 \"cache_lookups\":{},\"cache_hits\":{},\"cache_entries\":{}}}",
                s.accepted,
                s.rejected,
                s.completed,
                s.cancelled,
                s.drained,
                s.queue_depth,
                s.draining,
                s.cache_lookups,
                s.cache_hits,
                s.cache_entries
            ),
            Response::Snapshot {
                tick,
                stats: s,
                transport,
            } => {
                let transport = match transport {
                    Some(t) => format!(",\"transport\":{}", t.to_json()),
                    None => String::new(),
                };
                format!(
                    "{{\"type\":\"snapshot\",\"tick\":{tick},\"accepted\":{},\"rejected\":{},\
                     \"completed\":{},\"cancelled\":{},\"drained\":{},\"queue_depth\":{},\
                     \"draining\":{},\"cache_lookups\":{},\"cache_hits\":{},\"cache_entries\":{}\
                     {transport}}}",
                    s.accepted,
                    s.rejected,
                    s.completed,
                    s.cancelled,
                    s.drained,
                    s.queue_depth,
                    s.draining,
                    s.cache_lookups,
                    s.cache_hits,
                    s.cache_entries
                )
            }
            Response::Observed { snapshots, tick } => {
                format!("{{\"type\":\"observed\",\"snapshots\":{snapshots},\"tick\":{tick}}}")
            }
            Response::Pong { nonce } => format!("{{\"type\":\"pong\",\"nonce\":{nonce}}}"),
            Response::Bye { drained } => {
                format!("{{\"type\":\"bye\",\"drained\":{drained}}}")
            }
            Response::Error(e) => format!(
                "{{\"type\":\"error\",\"code\":\"{}\",\"message\":\"{}\"}}",
                e.code,
                escape(&e.message)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_request_type() {
        assert_eq!(
            Request::parse(r#"{"type":"hello","client":"ci"}"#).unwrap(),
            Request::Hello {
                client: "ci".into()
            }
        );
        assert_eq!(
            Request::parse(r#"{"type":"submit","experiment":"e2","seed":7}"#).unwrap(),
            Request::Submit(SubmitReq {
                experiment: "e2".into(),
                quick: true,
                seed: Some(7),
                priority: 0,
                timeout_secs: None,
            })
        );
        assert_eq!(
            Request::parse(r#"{"type":"batch","n":3}"#).unwrap(),
            Request::Batch { n: 3 }
        );
        assert_eq!(
            Request::parse(r#"{"type":"await","req":2}"#).unwrap(),
            Request::Await { req: 2 }
        );
        assert_eq!(
            Request::parse(r#"{"type":"cancel","req":2}"#).unwrap(),
            Request::Cancel { req: 2 }
        );
        assert_eq!(
            Request::parse(r#"{"type":"stats"}"#).unwrap(),
            Request::Stats
        );
        assert_eq!(
            Request::parse(r#"{"type":"ping","nonce":9}"#).unwrap(),
            Request::Ping { nonce: 9 }
        );
        assert_eq!(
            Request::parse(r#"{"type":"observe"}"#).unwrap(),
            Request::Observe { every: 1, count: 1 }
        );
        assert_eq!(
            Request::parse(r#"{"type":"observe","every":2,"count":5}"#).unwrap(),
            Request::Observe { every: 2, count: 5 }
        );
        assert_eq!(
            Request::parse(r#"{"type":"observe","every":0}"#)
                .unwrap_err()
                .code,
            "bad_request"
        );
        assert_eq!(
            Request::parse(r#"{"type":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn typed_errors_for_bad_lines() {
        assert_eq!(Request::parse("{oops").unwrap_err().code, "bad_json");
        assert_eq!(Request::parse("[1,2]").unwrap_err().code, "bad_request");
        assert_eq!(
            Request::parse(r#"{"type":"warp"}"#).unwrap_err().code,
            "unknown_type"
        );
        assert_eq!(
            Request::parse(r#"{"type":"submit"}"#).unwrap_err().code,
            "bad_request"
        );
        assert_eq!(
            Request::parse(r#"{"type":"submit","experiment":"e2","seed":-1}"#)
                .unwrap_err()
                .code,
            "bad_request"
        );
    }

    #[test]
    fn responses_render_stable_json() {
        assert_eq!(
            Response::Accepted {
                req: 4,
                queue_depth: 2
            }
            .to_json(),
            r#"{"type":"accepted","req":4,"queue_depth":2}"#
        );
        let line = Response::Rejected(Reject::QueueFull { depth: 16 }).to_json();
        assert!(line.contains("\"code\":\"queue_full\""));
        assert!(line.contains("\"retry_after_ticks\":16"));
        let bye = Response::Bye { drained: 3 }.to_json();
        assert_eq!(bye, r#"{"type":"bye","drained":3}"#);
        // Every rendered response parses back as JSON.
        for r in [
            Response::Welcome,
            Response::Pong { nonce: 1 },
            Response::Stats(StatsMsg::default()),
            Response::Snapshot {
                tick: 3,
                stats: StatsMsg::default(),
                transport: None,
            },
            Response::Snapshot {
                tick: 3,
                stats: StatsMsg::default(),
                transport: Some(TransportHealthMsg {
                    backend: "sockets:2".into(),
                    workers: vec![WorkerHealthMsg {
                        rank: 0,
                        alive: true,
                        respawns: 0,
                        sessions: 2,
                    }],
                }),
            },
            Response::Observed {
                snapshots: 2,
                tick: 3,
            },
            Response::Error(ProtoError::bad_request("x\"y")),
        ] {
            assert!(json::parse(&r.to_json()).is_ok(), "bad: {}", r.to_json());
        }
        let snap = Response::Snapshot {
            tick: 3,
            stats: StatsMsg {
                completed: 3,
                ..Default::default()
            },
            transport: None,
        }
        .to_json();
        assert!(snap.starts_with(r#"{"type":"snapshot","tick":3,"#));
        assert!(snap.contains("\"completed\":3"));
        // Without transport health, the rendered line is unchanged
        // from the pre-telemetry protocol: local-backend transcripts
        // stay pinned byte-for-byte.
        assert!(!snap.contains("transport"));
        assert_eq!(
            Response::Observed {
                snapshots: 2,
                tick: 3
            }
            .to_json(),
            r#"{"type":"observed","snapshots":2,"tick":3}"#
        );
    }

    #[test]
    fn snapshot_renders_transport_health_when_present() {
        let line = Response::Snapshot {
            tick: 2,
            stats: StatsMsg::default(),
            transport: Some(TransportHealthMsg {
                backend: "sockets:2".into(),
                workers: vec![
                    WorkerHealthMsg {
                        rank: 0,
                        alive: true,
                        respawns: 0,
                        sessions: 1,
                    },
                    WorkerHealthMsg {
                        rank: 1,
                        alive: false,
                        respawns: 1,
                        sessions: 0,
                    },
                ],
            }),
        }
        .to_json();
        assert!(line.contains("\"transport\":{\"backend\":\"sockets:2\",\"workers\":["));
        assert!(line.contains("{\"rank\":1,\"alive\":false,\"respawns\":1,\"sessions\":0}"));
        assert!(json::parse(&line).is_ok(), "bad: {line}");
    }

    #[test]
    fn result_renders_null_report_when_cancelled() {
        let r = Response::Result(ResultMsg {
            req: 1,
            experiment: "e2".into(),
            status: ResultStatus::Cancelled,
            passed: None,
            scheduled: 0,
            completed: 0,
            cancelled: 0,
            cache_lookups: 0,
            report_json: None,
        });
        let line = r.to_json();
        assert!(line.contains("\"status\":\"cancelled\""));
        assert!(line.contains("\"passed\":null"));
        assert!(line.contains("\"report\":null"));
        assert!(json::parse(&line).is_ok());
    }
}
