//! Admission control: a bounded, priority-ordered queue with
//! per-client quotas and an explicit drain state.
//!
//! The queue is a `BTreeMap` keyed `(u64::MAX - priority, seq)`, so
//! iteration order — and therefore scheduling order — is a pure
//! function of the admission sequence: higher priorities first, FIFO
//! within a class. Backpressure is explicit: a full queue or an
//! exhausted quota produces a typed [`Reject`] carrying a *logical*
//! retry hint (completions to wait for), never silent buffering.
//!
//! Everything here is sockets-free and clock-free so the state
//! machine is unit-testable and D2-clean.

use crate::proto::{Reject, SubmitReq};
use bcc_runner::CancellationToken;
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, MutexGuard};

/// One admitted request, queued until the scheduler pops it.
#[derive(Debug, Clone)]
pub struct Ticket {
    /// Server-assigned request id (admission order, starting at 0).
    pub req: u64,
    /// Owning client name (quota key, metrics unit).
    pub client: String,
    /// The submitted run.
    pub submit: SubmitReq,
    /// Cooperative cancellation handle shared with `cancel` and the
    /// disconnect path.
    pub token: CancellationToken,
}

/// What [`Admission::pop`] produced.
#[derive(Debug)]
pub enum Popped {
    /// The next request to run.
    Ticket(Ticket),
    /// Drain requested and the queue is empty: the scheduler exits.
    Drained,
}

/// What a cancel found in the queue.
#[derive(Debug)]
pub enum CancelOutcome {
    /// The request was still queued; it never reaches the scheduler.
    Queued(Ticket),
    /// Not queued here (running, finished, or never admitted).
    NotQueued,
}

#[derive(Debug, Default)]
struct AdmissionState {
    queue: BTreeMap<(u64, u64), Ticket>,
    next_req: u64,
    draining: bool,
    /// Outstanding (queued + running) requests per client.
    outstanding: BTreeMap<String, u64>,
}

/// The admission queue. All mutation happens under one mutex; the
/// condvar wakes the scheduler on pushes and on drain.
#[derive(Debug)]
pub struct Admission {
    state: Mutex<AdmissionState>,
    wake: Condvar,
    queue_cap: u64,
    quota: u64,
}

/// Outcome of one admission attempt.
pub type AdmitResult = Result<Accepted, Reject>;

/// An accepted submit: the id plus the queue depth observed right
/// after the push (the `serve.queue.depth` histogram sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Accepted {
    /// Server-assigned request id.
    pub req: u64,
    /// Queue depth after the push.
    pub depth: u64,
}

impl Admission {
    /// A new queue with the given capacity and per-client quota
    /// (both are clamped to at least 1).
    pub fn new(queue_cap: u64, quota: u64) -> Self {
        Admission {
            state: Mutex::new(AdmissionState::default()),
            wake: Condvar::new(),
            queue_cap: queue_cap.max(1),
            quota: quota.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, AdmissionState> {
        // A poisoned admission lock means a panic elsewhere; the state
        // itself (plain maps and counters) is still consistent.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Admits a batch of submits under **one** lock hold: the depth
    /// samples form the deterministic ramp `d+1 ‥ d+k` regardless of
    /// scheduler timing. A single `submit` is a batch of one.
    pub fn submit_batch(&self, client: &str, submits: Vec<SubmitReq>) -> Vec<AdmitResult> {
        let mut st = self.lock();
        let mut out = Vec::with_capacity(submits.len());
        for submit in submits {
            out.push(Self::admit_locked(
                &mut st,
                self.queue_cap,
                self.quota,
                client,
                submit,
            ));
        }
        drop(st);
        self.wake.notify_all();
        out
    }

    fn admit_locked(
        st: &mut AdmissionState,
        queue_cap: u64,
        quota: u64,
        client: &str,
        submit: SubmitReq,
    ) -> AdmitResult {
        if st.draining {
            return Err(Reject::Draining);
        }
        let depth = st.queue.len() as u64;
        if depth >= queue_cap {
            return Err(Reject::QueueFull { depth });
        }
        let outstanding = st.outstanding.get(client).copied().unwrap_or(0);
        if outstanding >= quota {
            return Err(Reject::QuotaExceeded { outstanding });
        }
        let req = st.next_req;
        st.next_req += 1;
        let ticket = Ticket {
            req,
            client: client.to_string(),
            submit,
            token: CancellationToken::new(),
        };
        st.queue
            .insert((u64::MAX - ticket.submit.priority, req), ticket);
        *st.outstanding.entry(client.to_string()).or_insert(0) += 1;
        Ok(Accepted {
            req,
            depth: depth + 1,
        })
    }

    /// Blocks until a ticket is available (highest priority, FIFO
    /// within a class) or drain completes with an empty queue.
    pub fn pop(&self) -> Popped {
        let mut st = self.lock();
        loop {
            if let Some(key) = st.queue.keys().next().copied() {
                if let Some(ticket) = st.queue.remove(&key) {
                    return Popped::Ticket(ticket);
                }
            }
            if st.draining {
                return Popped::Drained;
            }
            st = self.wake.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Removes a queued request, releasing its quota slot. A request
    /// already popped (running or finished) is `NotQueued`.
    pub fn cancel(&self, req: u64) -> CancelOutcome {
        let mut st = self.lock();
        let key = st.queue.iter().find(|(_, t)| t.req == req).map(|(k, _)| *k);
        match key.and_then(|k| st.queue.remove(&k)) {
            Some(ticket) => {
                Self::release_locked(&mut st, &ticket.client);
                CancelOutcome::Queued(ticket)
            }
            None => CancelOutcome::NotQueued,
        }
    }

    /// Releases a client's quota slot after its request reached a
    /// terminal state on the scheduler.
    pub fn finish(&self, client: &str) {
        let mut st = self.lock();
        Self::release_locked(&mut st, client);
    }

    fn release_locked(st: &mut AdmissionState, client: &str) {
        if let Some(n) = st.outstanding.get_mut(client) {
            *n = n.saturating_sub(1);
            if *n == 0 {
                st.outstanding.remove(client);
            }
        }
    }

    /// Enters drain: new submits are rejected with code `draining`,
    /// the scheduler finishes what is queued, then exits. Returns the
    /// queue depth at the moment drain began (the `serve.drained`
    /// count).
    pub fn begin_drain(&self) -> u64 {
        let mut st = self.lock();
        st.draining = true;
        let depth = st.queue.len() as u64;
        drop(st);
        self.wake.notify_all();
        depth
    }

    /// Whether drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Current queue depth.
    pub fn depth(&self) -> u64 {
        self.lock().queue.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(exp: &str, priority: u64) -> SubmitReq {
        SubmitReq {
            experiment: exp.to_string(),
            quick: true,
            seed: Some(1),
            priority,
            timeout_secs: None,
        }
    }

    fn admit_one(adm: &Admission, client: &str, s: SubmitReq) -> AdmitResult {
        adm.submit_batch(client, vec![s]).remove(0)
    }

    #[test]
    fn priorities_run_first_fifo_within_class() {
        let adm = Admission::new(16, 16);
        admit_one(&adm, "a", submit("e1", 0)).unwrap();
        admit_one(&adm, "a", submit("e2", 5)).unwrap();
        admit_one(&adm, "a", submit("e3", 5)).unwrap();
        let order: Vec<String> = (0..3)
            .map(|_| match adm.pop() {
                Popped::Ticket(t) => t.submit.experiment,
                Popped::Drained => unreachable!(),
            })
            .collect();
        assert_eq!(order, ["e2", "e3", "e1"]);
    }

    #[test]
    fn queue_cap_and_quota_reject_with_logical_retry() {
        let adm = Admission::new(2, 8);
        admit_one(&adm, "a", submit("e1", 0)).unwrap();
        admit_one(&adm, "b", submit("e1", 0)).unwrap();
        let rej = admit_one(&adm, "c", submit("e1", 0)).unwrap_err();
        assert_eq!(rej.code(), "queue_full");
        assert_eq!(rej.retry_after_ticks(), 2);

        let adm = Admission::new(16, 1);
        admit_one(&adm, "a", submit("e1", 0)).unwrap();
        let rej = admit_one(&adm, "a", submit("e1", 0)).unwrap_err();
        assert_eq!(rej.code(), "quota_exceeded");
        assert_eq!(rej.retry_after_ticks(), 1);
        // Another client is unaffected.
        admit_one(&adm, "b", submit("e1", 0)).unwrap();
        // Finishing releases the slot.
        adm.finish("a");
        admit_one(&adm, "a", submit("e1", 0)).unwrap();
    }

    #[test]
    fn batch_depth_samples_form_a_ramp() {
        let adm = Admission::new(16, 16);
        let depths: Vec<u64> = adm
            .submit_batch("a", vec![submit("e1", 0), submit("e1", 0), submit("e1", 0)])
            .into_iter()
            .map(|r| r.unwrap().depth)
            .collect();
        assert_eq!(depths, [1, 2, 3]);
    }

    #[test]
    fn drain_rejects_new_work_but_pops_backlog() {
        let adm = Admission::new(16, 16);
        admit_one(&adm, "a", submit("e1", 0)).unwrap();
        assert_eq!(adm.begin_drain(), 1);
        let rej = admit_one(&adm, "a", submit("e2", 0)).unwrap_err();
        assert_eq!(rej.code(), "draining");
        assert!(matches!(adm.pop(), Popped::Ticket(_)));
        assert!(matches!(adm.pop(), Popped::Drained));
    }

    #[test]
    fn cancel_removes_queued_and_releases_quota() {
        let adm = Admission::new(16, 1);
        let acc = admit_one(&adm, "a", submit("e1", 0)).unwrap();
        assert!(matches!(adm.cancel(acc.req), CancelOutcome::Queued(_)));
        assert!(matches!(adm.cancel(acc.req), CancelOutcome::NotQueued));
        // Slot released: the same client can submit again.
        admit_one(&adm, "a", submit("e1", 0)).unwrap();
    }
}
