//! `bcc-serve`: a long-lived experiment service for the bcclique
//! workspace, plus its deterministic load generator.
//!
//! Every run used to be a one-shot CLI invocation: the artifact cache
//! was rebuilt from scratch each process start, and the runner,
//! trace, and metrics layers never saw sustained load. This crate
//! turns the harness into a daemon:
//!
//! - **`bcc-serve`** listens on loopback TCP, speaks a JSONL
//!   request/response protocol ([`proto`]), and schedules submitted
//!   experiments on one shared [`bcc_runner::Pool`] over one warm
//!   process-wide artifact store — repeat queries hit the cache
//!   instead of recomputing.
//! - **Admission control** ([`admission`]) bounds the queue and
//!   enforces per-client quotas with *explicit* backpressure: a
//!   refused submit gets a typed `reject` carrying a logical
//!   `retry_after_ticks`, never silent buffering. Priorities order
//!   the queue; FIFO breaks ties.
//! - **Graceful drain** ([`Server::drain`]): refuse new work, finish
//!   everything admitted, quiesce the pool, flush byte-stable
//!   metrics/trace dumps, then exit.
//! - **`bcc-client`** ([`client`]) replays a scripted request
//!   schedule on logical ticks and writes a transcript that is
//!   byte-identical across same-seed runs against fresh daemons —
//!   doubling as a seeded workload for the observability stack.
//!
//! The crate is std-only and, outside the accept loop's drain
//! watchdog in [`net`] (the lint D2 carve-out), clock-free: every
//! byte the daemon emits on the wire or into a dump is a pure
//! function of the admission sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod conn;
pub mod net;
pub mod proto;
pub mod server;

pub use admission::Admission;
pub use client::{parse_script, run_script, Script, Transcript};
pub use net::{Listening, NetConfig};
pub use proto::{Request, Response};
pub use server::{Server, ServerConfig};
