//! Per-connection protocol handling: a bounded JSONL line reader and
//! the request dispatch loop.
//!
//! Every malformed input maps to a typed `error` line — a daemon must
//! never panic on a client's bytes. Only an oversized line closes the
//! connection (the remainder of the line cannot be trusted as a
//! framing boundary); every other error leaves it usable.
//!
//! On disconnect (EOF or transport error) the handler cancels every
//! request this connection admitted but never collected, so an
//! abandoned client cannot pin queue slots or quota.

use crate::proto::{ProtoError, Request, Response, SubmitReq, TransportHealthMsg, WorkerHealthMsg};
use crate::server::Server;
use std::collections::BTreeSet;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Worker health of the installed transport backend, for `snapshot`
/// lines. `None` on the local backend, so local-backend observe
/// transcripts keep their pre-telemetry bytes.
fn transport_health() -> Option<TransportHealthMsg> {
    let health = bcc_model::transport::default_factory().health()?;
    Some(TransportHealthMsg {
        backend: health.backend,
        workers: health
            .workers
            .iter()
            .map(|w| WorkerHealthMsg {
                rank: w.rank as u64,
                alive: w.alive,
                respawns: w.respawns,
                sessions: w.sessions,
            })
            .collect(),
    })
}

/// Outcome of one bounded line read.
#[derive(Debug)]
pub enum LineRead {
    /// A complete line (without the newline).
    Line(String),
    /// Clean end of stream.
    Eof,
    /// The line exceeded the configured maximum.
    TooLong,
}

/// Reads one `\n`-terminated line of at most `max` bytes. Invalid
/// UTF-8 is replaced lossily — the JSON parser then reports it as a
/// `bad_json` error rather than the daemon dying on it.
pub fn read_bounded_line<R: BufRead>(reader: &mut R, max: usize) -> std::io::Result<LineRead> {
    let mut out: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF; a partial trailing line is dropped rather than
            // parsed — the client never finished framing it.
            return Ok(LineRead::Eof);
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if out.len() + i > max {
                    reader.consume(i + 1);
                    return Ok(LineRead::TooLong);
                }
                out.extend_from_slice(&chunk[..i]);
                reader.consume(i + 1);
                return Ok(LineRead::Line(String::from_utf8_lossy(&out).into_owned()));
            }
            None => {
                let len = chunk.len();
                if out.len() + len > max {
                    reader.consume(len);
                    return Ok(LineRead::TooLong);
                }
                out.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
    }
}

/// Largest batch frame a single `batch` header may announce.
pub const MAX_BATCH: u64 = 256;

struct Conn<'a, R: BufRead, W: Write> {
    server: &'a Arc<Server>,
    reader: R,
    writer: W,
    client: String,
    /// Requests admitted here and not yet delivered via `await`.
    undelivered: BTreeSet<u64>,
}

impl<R: BufRead, W: Write> Conn<'_, R, W> {
    fn send(&mut self, response: &Response) -> std::io::Result<()> {
        writeln!(self.writer, "{}", response.to_json())?;
        self.writer.flush()
    }

    /// Records one countable connection event under this connection's
    /// metrics unit and absorbs it immediately, so the dump flushed at
    /// drain already contains everything up to the shutdown request.
    fn record(&self, f: impl FnOnce(&mut bcc_metrics::MetricsBuf)) {
        let hub = self.server.hub();
        if !hub.enabled() {
            return;
        }
        let mut buf = hub.buf(format!("serve/conn/{}", self.client));
        f(&mut buf);
        hub.absorb(buf);
    }

    fn admit(&mut self, submits: Vec<SubmitReq>) -> Vec<Response> {
        let outcomes = self.server.admit(&self.client, submits);
        let mut responses = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome {
                Ok(acc) => {
                    self.undelivered.insert(acc.req);
                    self.record(|buf| {
                        buf.counter("serve.accepted", 1);
                        buf.observe("serve.queue.depth", acc.depth);
                    });
                    responses.push(Response::Accepted {
                        req: acc.req,
                        queue_depth: acc.depth,
                    });
                }
                Err(reject) => {
                    self.record(|buf| {
                        buf.counter("serve.rejected", 1);
                        buf.counter(&format!("serve.rejected.{}", reject.code()), 1);
                    });
                    responses.push(Response::Rejected(reject));
                }
            }
        }
        responses
    }

    fn protocol_error(&mut self, err: ProtoError) -> std::io::Result<()> {
        self.record(|buf| {
            buf.counter("serve.errors", 1);
            buf.counter(&format!("serve.errors.{}", err.code), 1);
        });
        self.send(&Response::Error(err))
    }

    /// Reads the `n` submit lines of a batch frame. Lines that fail
    /// to parse as `submit` get an error slot; the valid ones are
    /// admitted under one lock hold and every slot is answered in
    /// line order.
    fn handle_batch(&mut self, n: u64) -> std::io::Result<bool> {
        if n == 0 || n > MAX_BATCH {
            self.protocol_error(ProtoError::bad_request(format!(
                "batch n must be in 1..={MAX_BATCH}, got {n}"
            )))?;
            return Ok(true);
        }
        let max = self.server.config().max_line_bytes;
        let mut slots: Vec<Result<SubmitReq, ProtoError>> = Vec::with_capacity(n as usize);
        for _ in 0..n {
            match read_bounded_line(&mut self.reader, max)? {
                LineRead::Eof => return Ok(false),
                LineRead::TooLong => {
                    self.protocol_error(ProtoError {
                        code: "line_too_long",
                        message: format!("request line exceeds {max} bytes"),
                    })?;
                    return Ok(false);
                }
                LineRead::Line(line) => slots.push(match Request::parse(&line) {
                    Ok(Request::Submit(s)) => Ok(s),
                    Ok(_) => Err(ProtoError::bad_request(
                        "batch frames may contain only submit lines",
                    )),
                    Err(e) => Err(e),
                }),
            }
        }
        let submits: Vec<SubmitReq> = slots.iter().filter_map(|s| s.clone().ok()).collect();
        let mut admitted = self.admit(submits).into_iter();
        for slot in slots {
            match slot {
                Ok(_) => {
                    if let Some(response) = admitted.next() {
                        self.send(&response)?;
                    }
                }
                Err(err) => self.protocol_error(err)?,
            }
        }
        Ok(true)
    }

    /// Streams `count` stats snapshots, one every `every` logical
    /// ticks, then an `observed` terminator. The first snapshot is
    /// sent immediately at the current tick; the stream ends early
    /// (with the terminator) when the server drains. Blocking here
    /// only parks this connection's thread — the scheduler and every
    /// other connection keep running, which is why `bcc-client
    /// --watch` uses a dedicated connection.
    fn handle_observe(&mut self, every: u64, count: u64) -> std::io::Result<bool> {
        self.record(|buf| buf.counter("serve.observers", 1));
        let mut tick = self.server.tick();
        self.send(&Response::Snapshot {
            tick,
            stats: self.server.stats(),
            transport: transport_health(),
        })?;
        let mut sent = 1u64;
        while sent < count {
            let target = tick + every;
            match self.server.wait_tick(target - 1) {
                Some(now) => {
                    tick = now;
                    self.send(&Response::Snapshot {
                        tick,
                        stats: self.server.stats(),
                        transport: transport_health(),
                    })?;
                    sent += 1;
                }
                None => break,
            }
        }
        self.send(&Response::Observed {
            snapshots: sent,
            tick: self.server.tick(),
        })?;
        Ok(true)
    }

    /// Dispatches one parsed request; `false` means close the
    /// connection.
    fn handle(&mut self, request: Request) -> std::io::Result<bool> {
        self.record(|buf| buf.counter("serve.requests", 1));
        match request {
            Request::Hello { client } => {
                self.client = client;
                self.send(&Response::Welcome)?;
            }
            Request::Submit(submit) => {
                let responses = self.admit(vec![submit]);
                for response in responses {
                    self.send(&response)?;
                }
            }
            Request::Batch { n } => return self.handle_batch(n),
            Request::Await { req } => match self.server.await_result(req) {
                Some(msg) => {
                    self.undelivered.remove(&req);
                    self.send(&Response::Result(msg))?;
                }
                None => {
                    self.protocol_error(ProtoError {
                        code: "unknown_req",
                        message: format!("request {req} was never accepted or already delivered"),
                    })?;
                }
            },
            Request::Cancel { req } => {
                let state = self.server.cancel(req);
                self.send(&Response::Cancelled { req, state })?;
            }
            Request::Stats => {
                let stats = self.server.stats();
                self.send(&Response::Stats(stats))?;
            }
            Request::Observe { every, count } => return self.handle_observe(every, count),
            Request::Ping { nonce } => self.send(&Response::Pong { nonce })?,
            Request::Shutdown => {
                let drained = self.server.drain();
                self.send(&Response::Bye { drained })?;
            }
        }
        Ok(true)
    }

    fn run(&mut self) -> std::io::Result<()> {
        let max = self.server.config().max_line_bytes;
        loop {
            match read_bounded_line(&mut self.reader, max)? {
                LineRead::Eof => return Ok(()),
                LineRead::TooLong => {
                    self.protocol_error(ProtoError {
                        code: "line_too_long",
                        message: format!("request line exceeds {max} bytes"),
                    })?;
                    return Ok(());
                }
                LineRead::Line(line) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    match Request::parse(&line) {
                        Ok(request) => {
                            if !self.handle(request)? {
                                return Ok(());
                            }
                        }
                        Err(err) => self.protocol_error(err)?,
                    }
                }
            }
        }
    }
}

/// Runs one connection to completion. Transport errors end the
/// connection quietly; undelivered requests are cancelled on the way
/// out so a vanished client releases its queue and quota footprint.
pub fn handle_connection<R: BufRead, W: Write>(server: &Arc<Server>, reader: R, writer: W) {
    let mut conn = Conn {
        server,
        reader,
        writer,
        client: "anon".to_string(),
        undelivered: BTreeSet::new(),
    };
    let _ = conn.run();
    for req in std::mem::take(&mut conn.undelivered) {
        conn.server.release_abandoned(req);
    }
}
