//! The loopback TCP accept loop.
//!
//! This file is the **only** lint D2 carve-out in `crates/serve`:
//! the post-drain watchdog below reads `Instant::now` so a client
//! that received its `bye` but never closes cannot keep the process
//! alive forever. Nothing read here ever reaches report, trace, or
//! metrics bytes — those are flushed before the watchdog starts — so
//! the determinism contract is untouched. Everything else in the
//! crate is clock-free and lint-enforced to stay that way.

use crate::conn::handle_connection;
use crate::server::Server;
use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Network configuration for the daemon.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Port to bind on loopback; 0 asks the OS for a free one.
    pub port: u16,
    /// Where to write the bound port (readers poll this file to find
    /// a daemon started with port 0).
    pub port_file: Option<PathBuf>,
    /// How long to wait, after drain completes, for lingering
    /// connections to close before forcing exit.
    pub drain_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            port: 0,
            port_file: None,
            drain_timeout: Duration::from_secs(30),
        }
    }
}

/// A bound, accepting daemon socket.
#[derive(Debug)]
pub struct Listening {
    port: u16,
    accept: std::thread::JoinHandle<std::io::Result<()>>,
}

impl Listening {
    /// The bound loopback port.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Blocks until the accept loop exits (drain completed and
    /// connections closed, or the watchdog fired).
    pub fn join(self) -> std::io::Result<()> {
        match self.accept.join() {
            Ok(result) => result,
            Err(_) => Err(std::io::Error::other("accept loop panicked")),
        }
    }
}

/// Binds the loopback listener, writes the port file, and spawns the
/// accept loop (one handler thread per connection).
pub fn start(server: Arc<Server>, config: NetConfig) -> std::io::Result<Listening> {
    let listener = TcpListener::bind(("127.0.0.1", config.port))?;
    let port = listener.local_addr()?.port();
    if let Some(path) = &config.port_file {
        std::fs::write(path, format!("{port}\n"))?;
    }
    let accept = std::thread::Builder::new()
        .name("bcc-serve-accept".to_string())
        .spawn(move || accept_loop(server, listener, config.drain_timeout))?;
    Ok(Listening { port, accept })
}

fn spawn_handler(server: &Arc<Server>, stream: TcpStream, conns: &Arc<AtomicUsize>) {
    let server = Arc::clone(server);
    let worker_conns = Arc::clone(conns);
    conns.fetch_add(1, Ordering::SeqCst);
    let spawned = std::thread::Builder::new()
        .name("bcc-serve-conn".to_string())
        .spawn(move || {
            if let Ok(reader) = stream.try_clone() {
                handle_connection(&server, BufReader::new(reader), BufWriter::new(stream));
            }
            worker_conns.fetch_sub(1, Ordering::SeqCst);
        });
    if spawned.is_err() {
        conns.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    server: Arc<Server>,
    listener: TcpListener,
    drain_timeout: Duration,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let conns = Arc::new(AtomicUsize::new(0));
    let mut drain_observed: Option<Instant> = None;
    loop {
        if server.drain_done() {
            // Watchdog (the D2 carve-out): bounded patience for
            // clients that got their `bye` but never hang up.
            let since = *drain_observed.get_or_insert_with(Instant::now);
            if conns.load(Ordering::SeqCst) == 0 || since.elapsed() >= drain_timeout {
                return Ok(());
            }
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                if server.drain_done() {
                    // Refuse post-drain connections outright; the
                    // protocol-level `draining` reject covers the
                    // window before that.
                    drop(stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                spawn_handler(&server, stream, &conns);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}
