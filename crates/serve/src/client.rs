//! The deterministic load generator: parses a JSONL script, replays
//! it against a daemon on **logical ticks** (script order — the
//! client never sleeps or reads a clock), and records a transcript of
//! every line sent and received.
//!
//! Because the protocol is strictly request→response (results are
//! *pulled* with `await`, never pushed), a transcript is a pure
//! function of the script, the seed, and the daemon's admission
//! state — two same-seed runs against fresh daemons produce
//! byte-identical transcripts.
//!
//! Script grammar (one JSON object per line, `#`-lines and blank
//! lines skipped):
//!
//! ```text
//! {"op":"hello","client":"ci"}
//! {"op":"submit","experiment":"e2","quick":true,"priority":1}
//! {"op":"batch","submits":[{"experiment":"e1"},{"experiment":"e3"}]}
//! {"op":"await","submit":0}        // 0-based submit index in script order
//! {"op":"cancel","submit":1}
//! {"op":"stats"}
//! {"op":"ping","nonce":7}
//! {"op":"observe","every":1,"count":3}
//! {"op":"shutdown"}
//! ```
//!
//! A `submit` without a `"seed"` uses the client's `--seed`; an
//! optional `"tick"` must be nondecreasing and defaults to the step
//! index.

use crate::proto::SubmitReq;
use bcc_experiments::json::escape;
use bcc_metrics::json::{self, JsonValue};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One script operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Name the connection.
    Hello {
        /// Client name.
        client: String,
    },
    /// Submit one run.
    Submit(SubmitReq),
    /// Submit several runs under one admission-lock hold.
    Batch {
        /// The framed submits, in order.
        submits: Vec<SubmitReq>,
    },
    /// Collect the result of an earlier submit.
    Await {
        /// 0-based index into the script's submits (batch entries
        /// count individually, in order).
        submit: u64,
    },
    /// Cancel an earlier submit.
    Cancel {
        /// 0-based submit index.
        submit: u64,
    },
    /// Ask for live counters.
    Stats,
    /// Liveness probe.
    Ping {
        /// Echo value.
        nonce: u64,
    },
    /// Stream stats snapshots on logical ticks until the terminating
    /// `observed` line.
    Observe {
        /// Ticks between snapshots.
        every: u64,
        /// Snapshots to request.
        count: u64,
    },
    /// Drain the daemon and collect its `bye`.
    Shutdown,
}

/// One script step: a logical tick plus an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Logical time; ordering only, never waited on.
    pub tick: u64,
    /// The operation.
    pub op: Op,
}

/// A parsed script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Script {
    /// Steps in replay order.
    pub steps: Vec<Step>,
}

fn get_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a u64")),
    }
}

fn parse_submit_spec(v: &JsonValue) -> Result<SubmitReq, String> {
    let experiment = v
        .get("experiment")
        .and_then(JsonValue::as_str)
        .ok_or("submit needs a string \"experiment\"")?
        .to_string();
    let quick = match v.get("quick") {
        None | Some(JsonValue::Null) => true,
        Some(JsonValue::Bool(b)) => *b,
        Some(_) => return Err("field \"quick\" must be a bool".to_string()),
    };
    Ok(SubmitReq {
        experiment,
        quick,
        seed: get_u64(v, "seed")?,
        priority: get_u64(v, "priority")?.unwrap_or(0),
        timeout_secs: get_u64(v, "timeout_secs")?,
    })
}

/// Parses a script from JSONL text.
///
/// # Errors
///
/// Returns a message naming the offending line on malformed input or
/// a decreasing tick.
pub fn parse_script(text: &str) -> Result<Script, String> {
    let mut steps = Vec::new();
    let mut last_tick = 0u64;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let v = json::parse(line).map_err(|e| format!("script line {}: {e}", lineno + 1))?;
        let op_name = v
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("script line {}: missing \"op\"", lineno + 1))?;
        let op = match op_name {
            "hello" => Op::Hello {
                client: v
                    .get("client")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("bcc-client")
                    .to_string(),
            },
            "submit" => Op::Submit(
                parse_submit_spec(&v).map_err(|e| format!("script line {}: {e}", lineno + 1))?,
            ),
            "batch" => {
                let items = v
                    .get("submits")
                    .and_then(JsonValue::as_arr)
                    .ok_or_else(|| {
                        format!(
                            "script line {}: batch needs a \"submits\" array",
                            lineno + 1
                        )
                    })?;
                let mut submits = Vec::with_capacity(items.len());
                for item in items {
                    submits.push(
                        parse_submit_spec(item)
                            .map_err(|e| format!("script line {}: {e}", lineno + 1))?,
                    );
                }
                Op::Batch { submits }
            }
            "await" => Op::Await {
                submit: get_u64(&v, "submit")
                    .map_err(|e| format!("script line {}: {e}", lineno + 1))?
                    .ok_or_else(|| format!("script line {}: await needs \"submit\"", lineno + 1))?,
            },
            "cancel" => Op::Cancel {
                submit: get_u64(&v, "submit")
                    .map_err(|e| format!("script line {}: {e}", lineno + 1))?
                    .ok_or_else(|| {
                        format!("script line {}: cancel needs \"submit\"", lineno + 1)
                    })?,
            },
            "stats" => Op::Stats,
            "observe" => {
                let every = get_u64(&v, "every")
                    .map_err(|e| format!("script line {}: {e}", lineno + 1))?
                    .unwrap_or(1);
                let count = get_u64(&v, "count")
                    .map_err(|e| format!("script line {}: {e}", lineno + 1))?
                    .unwrap_or(1);
                if every == 0 || count == 0 {
                    return Err(format!(
                        "script line {}: observe \"every\" and \"count\" must be >= 1",
                        lineno + 1
                    ));
                }
                Op::Observe { every, count }
            }
            "ping" => Op::Ping {
                nonce: get_u64(&v, "nonce")
                    .map_err(|e| format!("script line {}: {e}", lineno + 1))?
                    .unwrap_or(0),
            },
            "shutdown" => Op::Shutdown,
            other => return Err(format!("script line {}: unknown op {other:?}", lineno + 1)),
        };
        let tick = get_u64(&v, "tick")
            .map_err(|e| format!("script line {}: {e}", lineno + 1))?
            .unwrap_or(steps.len() as u64);
        if tick < last_tick {
            return Err(format!(
                "script line {}: tick {tick} decreases (previous {last_tick})",
                lineno + 1
            ));
        }
        last_tick = tick;
        steps.push(Step { tick, op });
    }
    Ok(Script { steps })
}

/// Why a replay stopped.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure.
    Io(std::io::Error),
    /// The script itself is unusable at this step (e.g. awaiting a
    /// rejected submit).
    Script(String),
    /// `--strict` and the daemon answered with `error` or `reject`.
    Strict(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Script(m) => write!(f, "script: {m}"),
            ClientError::Strict(m) => write!(f, "strict: {m}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

fn render_submit(s: &SubmitReq, default_seed: u64) -> String {
    let seed = s.seed.unwrap_or(default_seed);
    let timeout = match s.timeout_secs {
        Some(t) => format!(",\"timeout_secs\":{t}"),
        None => String::new(),
    };
    format!(
        "{{\"type\":\"submit\",\"experiment\":\"{}\",\"quick\":{},\"seed\":{},\"priority\":{}{}}}",
        escape(&s.experiment),
        s.quick,
        seed,
        s.priority,
        timeout
    )
}

/// A replay transcript: alternating `sent`/`recv` records, one JSONL
/// line each, with the raw wire bytes embedded verbatim.
#[derive(Debug, Default)]
pub struct Transcript {
    /// Rendered transcript lines.
    pub lines: Vec<String>,
    /// Responses with type `error` or `reject` seen during replay.
    pub anomalies: u64,
}

impl Transcript {
    fn sent(&mut self, tick: u64, line: &str) {
        self.lines
            .push(format!("{{\"tick\":{tick},\"sent\":{line}}}"));
    }

    fn recv(&mut self, tick: u64, line: &str) {
        self.lines
            .push(format!("{{\"tick\":{tick},\"recv\":{line}}}"));
    }

    /// The transcript as JSONL text (one record per line, trailing
    /// newline included when nonempty).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

struct Wire {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Wire {
    fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn recv(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

fn response_req_id(line: &str) -> Option<u64> {
    let v = json::parse(line).ok()?;
    match v.get("type").and_then(JsonValue::as_str)? {
        "accepted" => v.get("req").and_then(JsonValue::as_u64),
        _ => None,
    }
}

fn response_type(line: &str) -> Option<String> {
    json::parse(line)
        .ok()?
        .get("type")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
}

fn response_is_anomaly(line: &str) -> bool {
    json::parse(line)
        .ok()
        .and_then(|v| {
            v.get("type")
                .and_then(JsonValue::as_str)
                .map(|t| t == "error" || t == "reject")
        })
        .unwrap_or(true)
}

/// Replays `script` against `addr` (`host:port`), filling omitted
/// seeds with `default_seed`.
///
/// # Errors
///
/// Transport failures and unusable script steps abort the replay;
/// `error`/`reject` responses are only counted (see
/// [`Transcript::anomalies`]) so backpressure scripts can be
/// replayed deliberately.
pub fn run_script(
    addr: &str,
    script: &Script,
    default_seed: u64,
) -> Result<Transcript, ClientError> {
    let stream = TcpStream::connect(addr)?;
    let reader_half = stream.try_clone()?;
    let mut wire = Wire {
        reader: BufReader::new(reader_half),
        writer: stream,
    };
    let mut transcript = Transcript::default();
    // Server req id for each script submit, in script order; None for
    // rejected/errored slots.
    let mut submit_ids: Vec<Option<u64>> = Vec::new();

    let roundtrip = |wire: &mut Wire,
                     transcript: &mut Transcript,
                     tick: u64,
                     line: &str|
     -> Result<String, ClientError> {
        wire.send(line)?;
        transcript.sent(tick, line);
        let reply = wire.recv()?;
        transcript.recv(tick, &reply);
        if response_is_anomaly(&reply) {
            transcript.anomalies += 1;
        }
        Ok(reply)
    };

    for step in &script.steps {
        let tick = step.tick;
        match &step.op {
            Op::Hello { client } => {
                let line = format!("{{\"type\":\"hello\",\"client\":\"{}\"}}", escape(client));
                roundtrip(&mut wire, &mut transcript, tick, &line)?;
            }
            Op::Submit(submit) => {
                let line = render_submit(submit, default_seed);
                let reply = roundtrip(&mut wire, &mut transcript, tick, &line)?;
                submit_ids.push(response_req_id(&reply));
            }
            Op::Batch { submits } => {
                let header = format!("{{\"type\":\"batch\",\"n\":{}}}", submits.len());
                wire.send(&header)?;
                transcript.sent(tick, &header);
                for submit in submits {
                    let line = render_submit(submit, default_seed);
                    wire.send(&line)?;
                    transcript.sent(tick, &line);
                }
                for _ in submits {
                    let reply = wire.recv()?;
                    transcript.recv(tick, &reply);
                    if response_is_anomaly(&reply) {
                        transcript.anomalies += 1;
                    }
                    submit_ids.push(response_req_id(&reply));
                }
            }
            Op::Await { submit } | Op::Cancel { submit } => {
                let req = submit_ids
                    .get(*submit as usize)
                    .copied()
                    .ok_or_else(|| {
                        ClientError::Script(format!(
                            "step references submit #{submit} before it ran"
                        ))
                    })?
                    .ok_or_else(|| {
                        ClientError::Script(format!(
                            "submit #{submit} was rejected; cannot target it"
                        ))
                    })?;
                let ty = match step.op {
                    Op::Await { .. } => "await",
                    _ => "cancel",
                };
                let line = format!("{{\"type\":\"{ty}\",\"req\":{req}}}");
                roundtrip(&mut wire, &mut transcript, tick, &line)?;
            }
            Op::Stats => {
                roundtrip(&mut wire, &mut transcript, tick, "{\"type\":\"stats\"}")?;
            }
            Op::Ping { nonce } => {
                let line = format!("{{\"type\":\"ping\",\"nonce\":{nonce}}}");
                roundtrip(&mut wire, &mut transcript, tick, &line)?;
            }
            Op::Observe { every, count } => {
                // One request, a stream of replies: snapshots until
                // the `observed` terminator.
                let line = format!("{{\"type\":\"observe\",\"every\":{every},\"count\":{count}}}");
                wire.send(&line)?;
                transcript.sent(tick, &line);
                loop {
                    let reply = wire.recv()?;
                    transcript.recv(tick, &reply);
                    if response_is_anomaly(&reply) {
                        transcript.anomalies += 1;
                    }
                    if response_type(&reply).as_deref() != Some("snapshot") {
                        break;
                    }
                }
            }
            Op::Shutdown => {
                roundtrip(&mut wire, &mut transcript, tick, "{\"type\":\"shutdown\"}")?;
            }
        }
    }
    Ok(transcript)
}

/// The `--watch` mode: a dedicated connection that streams `count`
/// stats snapshots (one every `every` logical ticks) to `out` as raw
/// JSONL, returning how many snapshots arrived. Ends early when the
/// daemon drains.
///
/// # Errors
///
/// Transport failures abort the watch.
pub fn watch(addr: &str, every: u64, count: u64, out: &mut dyn Write) -> Result<u64, ClientError> {
    let stream = TcpStream::connect(addr)?;
    let reader_half = stream.try_clone()?;
    let mut wire = Wire {
        reader: BufReader::new(reader_half),
        writer: stream,
    };
    wire.send(&format!(
        "{{\"type\":\"observe\",\"every\":{every},\"count\":{count}}}"
    ))?;
    let mut snapshots = 0u64;
    loop {
        let reply = wire.recv()?;
        writeln!(out, "{reply}").map_err(ClientError::Io)?;
        out.flush().map_err(ClientError::Io)?;
        match response_type(&reply).as_deref() {
            Some("snapshot") => snapshots += 1,
            _ => return Ok(snapshots),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_script() {
        let text = "\
# warm-cache demo
{\"op\":\"hello\",\"client\":\"ci\"}
{\"op\":\"submit\",\"experiment\":\"e2\"}
{\"op\":\"await\",\"submit\":0}
{\"op\":\"batch\",\"submits\":[{\"experiment\":\"e1\",\"priority\":2},{\"experiment\":\"e3\"}]}
{\"op\":\"stats\"}
{\"op\":\"ping\",\"nonce\":7}
{\"op\":\"shutdown\"}
";
        let script = parse_script(text).unwrap();
        assert_eq!(script.steps.len(), 7);
        assert!(matches!(script.steps[0].op, Op::Hello { .. }));
        assert!(matches!(
            &script.steps[3].op,
            Op::Batch { submits } if submits.len() == 2 && submits[0].priority == 2
        ));
        // Default ticks are the step index.
        assert_eq!(script.steps[6].tick, 6);
    }

    #[test]
    fn parses_observe_with_defaults() {
        let script = parse_script("{\"op\":\"observe\"}").unwrap();
        assert_eq!(script.steps[0].op, Op::Observe { every: 1, count: 1 });
        let script = parse_script("{\"op\":\"observe\",\"every\":2,\"count\":4}").unwrap();
        assert_eq!(script.steps[0].op, Op::Observe { every: 2, count: 4 });
        assert!(parse_script("{\"op\":\"observe\",\"count\":0}").is_err());
    }

    #[test]
    fn rejects_bad_scripts() {
        assert!(parse_script("{\"op\":\"warp\"}").is_err());
        assert!(parse_script("{\"op\":\"await\"}").is_err());
        assert!(parse_script("{\"op\":\"submit\"}").is_err());
        assert!(
            parse_script("{\"op\":\"ping\",\"tick\":5}\n{\"op\":\"ping\",\"tick\":4}").is_err()
        );
        assert!(parse_script("not json").is_err());
    }

    #[test]
    fn submit_rendering_fills_default_seed() {
        let s = SubmitReq {
            experiment: "e2".into(),
            quick: true,
            seed: None,
            priority: 3,
            timeout_secs: Some(10),
        };
        assert_eq!(
            render_submit(&s, 99),
            "{\"type\":\"submit\",\"experiment\":\"e2\",\"quick\":true,\"seed\":99,\
             \"priority\":3,\"timeout_secs\":10}"
        );
    }
}
