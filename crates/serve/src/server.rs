//! The daemon core: one shared [`bcc_runner::Pool`], one warm
//! process-wide artifact store, one scheduler thread, and the results
//! table connections await on.
//!
//! The scheduler runs admitted requests **one at a time** in
//! admission order (priority, then FIFO): repeat queries hit the warm
//! store, and every byte a request produces — its `result` line, its
//! `serve.*` metrics, its request span — is a pure function of the
//! admission sequence, never of connection interleaving. Concurrency
//! lives *inside* a request (the pool shards its jobs), not across
//! requests.
//!
//! This module is clock-free (lint rule D2): deadlines are delegated
//! to the runner, the drain watchdog lives in [`crate::net`], and
//! `retry_after_ticks` is logical.

use crate::admission::{Admission, CancelOutcome, Popped, Ticket};
use crate::proto::{Reject, ResultMsg, ResultStatus, StatsMsg, SubmitReq};
use bcc_experiments::{cache, RunRequest};
use bcc_metrics::{MetricsHub, MetricsLevel};
use bcc_runner::{CancellationToken, Pool};
use bcc_trace::{field, Collector, TraceLevel};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Daemon configuration; every knob has a service-shaped default.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Pool worker threads per request.
    pub threads: usize,
    /// Admission queue capacity.
    pub queue_cap: u64,
    /// Per-client outstanding-request quota.
    pub quota: u64,
    /// Seed used when a submit carries none.
    pub default_seed: u64,
    /// Metrics recording level.
    pub metrics_level: MetricsLevel,
    /// Trace recording level.
    pub trace_level: TraceLevel,
    /// Where the merged metrics dump is flushed at drain.
    pub metrics_path: Option<PathBuf>,
    /// Where the merged trace is flushed at drain.
    pub trace_path: Option<PathBuf>,
    /// Longest accepted request line, in bytes.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 2,
            queue_cap: 16,
            quota: 8,
            default_seed: 2024,
            metrics_level: MetricsLevel::Core,
            trace_level: TraceLevel::Off,
            metrics_path: None,
            trace_path: None,
            max_line_bytes: 64 * 1024,
        }
    }
}

/// Server-wide live counters (the `stats` reply). Plain atomics:
/// deterministic dumps come from the [`MetricsHub`], these exist for
/// live introspection.
#[derive(Debug, Default)]
struct LiveStats {
    accepted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    drained: AtomicU64,
}

#[derive(Debug, Default)]
struct ResultsState {
    /// Accepted but not yet finished.
    pending: BTreeSet<u64>,
    /// Finished, rendered, not yet delivered.
    ready: BTreeMap<u64, ResultMsg>,
}

/// Blocking results table: `post` fulfills, `take` awaits.
#[derive(Debug, Default)]
struct Results {
    state: Mutex<ResultsState>,
    fulfilled: Condvar,
}

impl Results {
    fn lock(&self) -> MutexGuard<'_, ResultsState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn register(&self, req: u64) {
        self.lock().pending.insert(req);
    }

    fn post(&self, msg: ResultMsg) {
        let mut st = self.lock();
        st.pending.remove(&msg.req);
        st.ready.insert(msg.req, msg);
        drop(st);
        self.fulfilled.notify_all();
    }

    /// Blocks until `req` finishes; `None` when the id was never
    /// accepted or its result was already delivered.
    fn take(&self, req: u64) -> Option<ResultMsg> {
        let mut st = self.lock();
        loop {
            if let Some(msg) = st.ready.remove(&req) {
                return Some(msg);
            }
            if !st.pending.contains(&req) {
                return None;
            }
            st = self.fulfilled.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Drops an undelivered result, if any.
    fn forget(&self, req: u64) {
        self.lock().ready.remove(&req);
    }

    /// `done` when the request finished (delivered or not), `pending`
    /// while queued/running, `unknown` otherwise.
    fn status(&self, req: u64) -> &'static str {
        let st = self.lock();
        if st.ready.contains_key(&req) {
            "done"
        } else if st.pending.contains(&req) {
            "pending"
        } else {
            "unknown"
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DrainPhase {
    Running,
    Draining,
    Done(u64),
}

/// The shared daemon state. Construct with [`Server::start`], which
/// also spawns the scheduler thread.
pub struct Server {
    config: ServerConfig,
    pool: Pool,
    hub: MetricsHub,
    collector: Collector,
    admission: Admission,
    results: Results,
    running: Mutex<BTreeMap<u64, CancellationToken>>,
    stats: LiveStats,
    drain_phase: Mutex<DrainPhase>,
    drain_done_cv: Condvar,
    scheduler: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Logical clock for observers: one tick per request reaching a
    /// terminal state (completed or cancelled-from-queue). `observe`
    /// streams are keyed to this counter, never to wall-clock.
    ticks: Mutex<u64>,
    tick_cv: Condvar,
}

impl Server {
    /// Builds the server and spawns its scheduler thread.
    pub fn start(config: ServerConfig) -> Arc<Server> {
        let server = Arc::new(Server {
            pool: Pool::new(config.threads.max(1)),
            hub: MetricsHub::new(config.metrics_level),
            collector: Collector::new(config.trace_level),
            admission: Admission::new(config.queue_cap, config.quota),
            results: Results::default(),
            running: Mutex::new(BTreeMap::new()),
            stats: LiveStats::default(),
            drain_phase: Mutex::new(DrainPhase::Running),
            drain_done_cv: Condvar::new(),
            scheduler: Mutex::new(None),
            ticks: Mutex::new(0),
            tick_cv: Condvar::new(),
            config,
        });
        let worker = Arc::clone(&server);
        if let Ok(handle) = std::thread::Builder::new()
            .name("bcc-serve-sched".to_string())
            .spawn(move || worker.scheduler_loop())
        {
            *server.scheduler.lock().unwrap_or_else(|e| e.into_inner()) = Some(handle);
        }
        server
    }

    /// The daemon configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Admits a batch of submits under one admission-lock hold.
    /// Registry validation happens here: unknown ids are rejected in
    /// place and never consume a queue slot. Per-slot outcomes keep
    /// the input order.
    pub fn admit(
        &self,
        client: &str,
        submits: Vec<SubmitReq>,
    ) -> Vec<Result<crate::admission::Accepted, Reject>> {
        let mut validated: Vec<Result<SubmitReq, Reject>> = Vec::with_capacity(submits.len());
        let mut runnable = Vec::new();
        for s in submits {
            if bcc_experiments::experiment(&s.experiment).is_err() {
                validated.push(Err(Reject::UnknownExperiment {
                    id: s.experiment.clone(),
                }));
            } else {
                validated.push(Ok(s.clone()));
                runnable.push(s);
            }
        }
        let mut admitted = self.admission.submit_batch(client, runnable).into_iter();
        let mut out = Vec::with_capacity(validated.len());
        for slot in validated {
            match slot {
                Err(reject) => out.push(Err(reject)),
                Ok(_) => match admitted.next() {
                    Some(Ok(acc)) => {
                        self.results.register(acc.req);
                        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                        out.push(Ok(acc));
                    }
                    Some(Err(reject)) => out.push(Err(reject)),
                    // submit_batch returns one outcome per input;
                    // running dry would mean a counting bug upstream.
                    None => out.push(Err(Reject::Draining)),
                },
            }
        }
        for slot in &out {
            if slot.is_err() {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
            }
        }
        out
    }

    /// Blocks until `req` finishes, then hands its result out
    /// (exactly once).
    pub fn await_result(&self, req: u64) -> Option<ResultMsg> {
        self.results.take(req)
    }

    /// Disconnect path: cancels an abandoned request and drops any
    /// result it already produced, so a vanished client leaks neither
    /// queue slots nor table entries.
    pub fn release_abandoned(&self, req: u64) {
        self.cancel(req);
        self.results.forget(req);
    }

    /// Cancels a request: removes it from the queue, or flips the
    /// cooperative token when it is already running.
    pub fn cancel(&self, req: u64) -> &'static str {
        match self.admission.cancel(req) {
            CancelOutcome::Queued(ticket) => {
                self.stats.cancelled.fetch_add(1, Ordering::Relaxed);
                let mut mbuf = self.hub.buf("serve/sched");
                mbuf.counter("serve.cancelled", 1);
                self.hub.absorb(mbuf);
                self.results.post(ResultMsg {
                    req: ticket.req,
                    experiment: ticket.submit.experiment,
                    status: ResultStatus::Cancelled,
                    passed: None,
                    scheduled: 0,
                    completed: 0,
                    cancelled: 0,
                    cache_lookups: 0,
                    report_json: None,
                });
                self.bump_tick();
                "cancelled"
            }
            CancelOutcome::NotQueued => {
                let running = self.running.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(token) = running.get(&req) {
                    token.cancel();
                    return "cancelled";
                }
                drop(running);
                match self.results.status(req) {
                    "done" | "pending" => "done",
                    _ => "unknown",
                }
            }
        }
    }

    /// Advances the logical clock and wakes every observer.
    fn bump_tick(&self) {
        let mut ticks = self.ticks.lock().unwrap_or_else(|e| e.into_inner());
        *ticks += 1;
        drop(ticks);
        self.tick_cv.notify_all();
    }

    /// The current logical tick (requests that reached a terminal
    /// state so far).
    pub fn tick(&self) -> u64 {
        *self.ticks.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Blocks until the logical clock passes `after`, returning the
    /// new tick — or `None` once the server is draining and no
    /// further tick will come, so observers terminate instead of
    /// hanging the drain.
    pub fn wait_tick(&self, after: u64) -> Option<u64> {
        let mut ticks = self.ticks.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if *ticks > after {
                return Some(*ticks);
            }
            if self.admission.is_draining() {
                return None;
            }
            ticks = self.tick_cv.wait(ticks).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// A live stats snapshot.
    pub fn stats(&self) -> StatsMsg {
        let store = cache::store();
        StatsMsg {
            accepted: self.stats.accepted.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            cancelled: self.stats.cancelled.load(Ordering::Relaxed),
            drained: self.stats.drained.load(Ordering::Relaxed),
            queue_depth: self.admission.depth(),
            draining: self.admission.is_draining(),
            cache_lookups: store.lookups(),
            cache_hits: store.hits(),
            cache_entries: store.entries(),
        }
    }

    /// The metrics hub (for per-connection `serve.*` counters).
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// Graceful drain: refuse new work, finish everything admitted,
    /// quiesce the pool, flush metrics/trace dumps. Idempotent; every
    /// caller blocks until the first caller's drain completes and
    /// gets the same drained count back.
    pub fn drain(&self) -> u64 {
        {
            let mut phase = self.drain_phase.lock().unwrap_or_else(|e| e.into_inner());
            match *phase {
                DrainPhase::Done(n) => return n,
                DrainPhase::Draining => loop {
                    phase = self
                        .drain_done_cv
                        .wait(phase)
                        .unwrap_or_else(|e| e.into_inner());
                    if let DrainPhase::Done(n) = *phase {
                        return n;
                    }
                },
                DrainPhase::Running => *phase = DrainPhase::Draining,
            }
        }
        let drained = self.admission.begin_drain();
        // Wake observers so they see the drain and terminate their
        // streams instead of outliving the daemon.
        self.tick_cv.notify_all();
        self.stats.drained.store(drained, Ordering::Relaxed);
        let mut mbuf = self.hub.buf("serve/sched");
        mbuf.counter("serve.drained", drained);
        self.hub.absorb(mbuf);
        let handle = self
            .scheduler
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        self.pool.begin_drain();
        self.pool.wait_idle(None);
        if let Err(err) = self.flush_dumps() {
            eprintln!("bcc-serve: flush failed: {err}");
        }
        let mut phase = self.drain_phase.lock().unwrap_or_else(|e| e.into_inner());
        *phase = DrainPhase::Done(drained);
        drop(phase);
        self.drain_done_cv.notify_all();
        drained
    }

    /// Whether drain has fully completed (queue empty, dumps
    /// flushed). The accept loop exits on this.
    pub fn drain_done(&self) -> bool {
        matches!(
            *self.drain_phase.lock().unwrap_or_else(|e| e.into_inner()),
            DrainPhase::Done(_)
        )
    }

    fn flush_dumps(&self) -> std::io::Result<()> {
        // Drain worker-shipped transport telemetry (a no-op on the
        // local backend) before the sinks finish, so daemon dumps
        // carry the same rank-ordered transport.* family as batch
        // runs (DESIGN.md §15).
        bcc_model::transport::default_factory().flush_telemetry(&self.collector, &self.hub);
        if let Some(path) = &self.config.metrics_path {
            let file = std::fs::File::create(path)?;
            let mut w = std::io::BufWriter::new(file);
            self.hub.finish().write_jsonl(&mut w)?;
            std::io::Write::flush(&mut w)?;
        }
        if let Some(path) = &self.config.trace_path {
            let file = std::fs::File::create(path)?;
            let mut w = std::io::BufWriter::new(file);
            self.collector.finish().write_jsonl(&mut w)?;
            std::io::Write::flush(&mut w)?;
        }
        Ok(())
    }

    fn scheduler_loop(&self) {
        loop {
            match self.admission.pop() {
                Popped::Ticket(ticket) => self.run_one(ticket),
                Popped::Drained => return,
            }
        }
    }

    /// Runs one admitted request to its terminal state. Sequential by
    /// construction: the next pop happens only after this returns, so
    /// cache-lookup deltas and queue-depth samples are deterministic.
    fn run_one(&self, ticket: Ticket) {
        self.running
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(ticket.req, ticket.token.clone());
        let seed = ticket.submit.seed.unwrap_or(self.config.default_seed);
        // Observers are the daemon's own collector/hub; the transport
        // is deliberately left unset so requests run on whatever the
        // daemon installed at startup (`--transport`).
        let mut request = RunRequest::new(&ticket.submit.experiment, ticket.submit.quick, seed)
            .observed(self.collector.clone(), self.hub.clone());
        request.timeout = ticket.submit.timeout_secs.map(Duration::from_secs);

        let store = cache::store();
        let lookups_before = store.lookups();
        let mut tbuf = self.collector.buf(format!("serve/req={:06}", ticket.req));
        tbuf.span_start(
            "serve.request",
            vec![
                field("req", ticket.req),
                field("client", ticket.client.as_str()),
                field("experiment", ticket.submit.experiment.as_str()),
                field("seed", seed),
                field("priority", ticket.submit.priority),
                field("quick", ticket.submit.quick),
            ],
        );
        let outcome = request.run_on_pool(&self.pool, &ticket.token);
        let cache_lookups = store.lookups().saturating_sub(lookups_before);

        let msg = match outcome {
            Ok(run) => {
                tbuf.span_end(
                    "serve.request",
                    vec![
                        field("scheduled", run.scheduled),
                        field("completed", run.completed),
                        field("cancelled", run.cancelled),
                        field("passed", run.report.passed),
                    ],
                );
                ResultMsg {
                    req: ticket.req,
                    experiment: ticket.submit.experiment.clone(),
                    status: ResultStatus::Done,
                    passed: Some(run.report.passed),
                    scheduled: run.scheduled as u64,
                    completed: run.completed as u64,
                    cancelled: run.cancelled as u64,
                    cache_lookups,
                    report_json: Some(run.report.to_json()),
                }
            }
            // Unreachable in practice: ids are validated at admission.
            Err(_) => {
                tbuf.span_end("serve.request", vec![field("passed", false)]);
                ResultMsg {
                    req: ticket.req,
                    experiment: ticket.submit.experiment.clone(),
                    status: ResultStatus::Cancelled,
                    passed: None,
                    scheduled: 0,
                    completed: 0,
                    cancelled: 0,
                    cache_lookups,
                    report_json: None,
                }
            }
        };
        self.collector.absorb(tbuf);
        let mut mbuf = self.hub.buf("serve/sched");
        mbuf.counter("serve.completed", 1);
        mbuf.counter("cache.lookups", cache_lookups);
        self.hub.absorb(mbuf);
        self.stats.completed.fetch_add(1, Ordering::Relaxed);

        self.running
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&ticket.req);
        self.results.post(msg);
        self.admission.finish(&ticket.client);
        self.bump_tick();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .field("queue_depth", &self.admission.depth())
            .finish()
    }
}
