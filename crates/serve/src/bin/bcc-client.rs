//! The `bcc-client` load generator.
//!
//! ```text
//! bcc-client --script PATH [OPTIONS]
//! bcc-client --watch [--every N] [--count M] [OPTIONS]
//!
//! OPTIONS:
//!   --addr HOST:PORT     daemon address (default 127.0.0.1:<port-file>)
//!   --port-file PATH     read the daemon's port from this file,
//!                        polling briefly until it appears
//!   --seed S             default seed for submits without one (2024)
//!   --transcript PATH    write the replay transcript here
//!                        (default: stdout)
//!   --strict             exit 1 if any response was an error/reject
//!   --watch              live observation: stream stats snapshots
//!                        (raw JSONL) to stdout on logical ticks
//!   --every N            ticks between snapshots (default 1)
//!   --count M            snapshots to stream (default 16)
//! ```
//!
//! The replay runs on logical ticks — the client never sleeps — and
//! the transcript is byte-identical across same-seed runs against
//! fresh daemons. `--watch` opens a dedicated connection (an
//! `observe` stream parks the connection thread between ticks) and
//! ends when the daemon drains or `--count` snapshots arrived.

use bcc_serve::client::{parse_script, run_script, watch};
use std::process::ExitCode;

const USAGE: &str = "usage: bcc-client --script PATH [--addr HOST:PORT] \
[--port-file PATH] [--seed S] [--transcript PATH] [--strict]
       bcc-client --watch [--every N] [--count M] [--addr HOST:PORT] [--port-file PATH]";

struct Cli {
    script: Option<String>,
    addr: Option<String>,
    port_file: Option<String>,
    seed: u64,
    transcript: Option<String>,
    strict: bool,
    watch: bool,
    every: u64,
    count: u64,
}

fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut script = None;
    let mut addr = None;
    let mut port_file = None;
    let mut seed = 2024u64;
    let mut transcript = None;
    let mut strict = false;
    let mut watch_mode = false;
    let mut every = 1u64;
    let mut count = 16u64;
    let parse_u64 = |flag: &str, v: Option<String>| -> Result<u64, String> {
        let v = v.ok_or_else(|| format!("{flag} needs a value"))?;
        v.parse::<u64>()
            .map_err(|_| format!("{flag}: not a u64: {v:?}"))
    };
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--script" => script = Some(it.next().ok_or("--script needs a path")?),
            "--addr" => addr = Some(it.next().ok_or("--addr needs host:port")?),
            "--port-file" => port_file = Some(it.next().ok_or("--port-file needs a path")?),
            "--seed" => seed = parse_u64("--seed", it.next())?,
            "--transcript" => transcript = Some(it.next().ok_or("--transcript needs a path")?),
            "--strict" => strict = true,
            "--watch" => watch_mode = true,
            "--every" => every = parse_u64("--every", it.next())?.max(1),
            "--count" => count = parse_u64("--count", it.next())?.max(1),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if watch_mode {
        if script.is_some() || transcript.is_some() || strict {
            return Err(
                "--watch is its own mode; combine it only with --every, --count, \
--addr and --port-file"
                    .to_string(),
            );
        }
    } else if script.is_none() {
        return Err("--script is required (or pass --watch)".to_string());
    }
    Ok(Cli {
        script,
        addr,
        port_file,
        seed,
        transcript,
        strict,
        watch: watch_mode,
        every,
        count,
    })
}

/// Polls the port file until the daemon has written it (bounded
/// number of fixed sleeps; no clock reads).
fn resolve_addr(cli: &Cli) -> Result<String, String> {
    if let Some(addr) = &cli.addr {
        return Ok(addr.clone());
    }
    let path = cli
        .port_file
        .as_ref()
        .ok_or("one of --addr or --port-file is required")?;
    for _ in 0..400 {
        if let Ok(text) = std::fs::read_to_string(path) {
            let port = text.trim();
            if !port.is_empty() {
                return Ok(format!("127.0.0.1:{port}"));
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    Err(format!("port file {path:?} never appeared"))
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1).collect()) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let addr = match resolve_addr(&cli) {
        Ok(addr) => addr,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    if cli.watch {
        let mut out = std::io::stdout();
        return match watch(&addr, cli.every, cli.count, &mut out) {
            Ok(snapshots) => {
                eprintln!("bcc-client: watched {snapshots} snapshot(s)");
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("error: {err}");
                ExitCode::FAILURE
            }
        };
    }
    let script_path = cli.script.as_deref().unwrap_or_default();
    let text = match std::fs::read_to_string(script_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: reading {script_path}: {err}");
            return ExitCode::from(2);
        }
    };
    let script = match parse_script(&text) {
        Ok(script) => script,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let transcript = match run_script(&addr, &script, cli.seed) {
        Ok(transcript) => transcript,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = transcript.to_jsonl();
    match &cli.transcript {
        Some(path) => {
            if let Err(err) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path}: {err}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "bcc-client: wrote {} transcript records to {path}",
                transcript.lines.len()
            );
        }
        None => print!("{rendered}"),
    }
    if cli.strict && transcript.anomalies > 0 {
        eprintln!(
            "error: --strict and {} error/reject responses in transcript",
            transcript.anomalies
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
