//! The `bcc-client` load generator.
//!
//! ```text
//! bcc-client --script PATH [OPTIONS]
//!
//! OPTIONS:
//!   --addr HOST:PORT     daemon address (default 127.0.0.1:<port-file>)
//!   --port-file PATH     read the daemon's port from this file,
//!                        polling briefly until it appears
//!   --seed S             default seed for submits without one (2024)
//!   --transcript PATH    write the replay transcript here
//!                        (default: stdout)
//!   --strict             exit 1 if any response was an error/reject
//! ```
//!
//! The replay runs on logical ticks — the client never sleeps — and
//! the transcript is byte-identical across same-seed runs against
//! fresh daemons.

use bcc_serve::client::{parse_script, run_script};
use std::process::ExitCode;

const USAGE: &str = "usage: bcc-client --script PATH [--addr HOST:PORT] \
[--port-file PATH] [--seed S] [--transcript PATH] [--strict]";

struct Cli {
    script: String,
    addr: Option<String>,
    port_file: Option<String>,
    seed: u64,
    transcript: Option<String>,
    strict: bool,
}

fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut script = None;
    let mut addr = None;
    let mut port_file = None;
    let mut seed = 2024u64;
    let mut transcript = None;
    let mut strict = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--script" => script = Some(it.next().ok_or("--script needs a path")?),
            "--addr" => addr = Some(it.next().ok_or("--addr needs host:port")?),
            "--port-file" => port_file = Some(it.next().ok_or("--port-file needs a path")?),
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("--seed: not a u64: {v:?}"))?;
            }
            "--transcript" => transcript = Some(it.next().ok_or("--transcript needs a path")?),
            "--strict" => strict = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(Cli {
        script: script.ok_or("--script is required")?,
        addr,
        port_file,
        seed,
        transcript,
        strict,
    })
}

/// Polls the port file until the daemon has written it (bounded
/// number of fixed sleeps; no clock reads).
fn resolve_addr(cli: &Cli) -> Result<String, String> {
    if let Some(addr) = &cli.addr {
        return Ok(addr.clone());
    }
    let path = cli
        .port_file
        .as_ref()
        .ok_or("one of --addr or --port-file is required")?;
    for _ in 0..400 {
        if let Ok(text) = std::fs::read_to_string(path) {
            let port = text.trim();
            if !port.is_empty() {
                return Ok(format!("127.0.0.1:{port}"));
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    Err(format!("port file {path:?} never appeared"))
}

fn main() -> ExitCode {
    let cli = match parse_args(std::env::args().skip(1).collect()) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&cli.script) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("error: reading {}: {err}", cli.script);
            return ExitCode::from(2);
        }
    };
    let script = match parse_script(&text) {
        Ok(script) => script,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let addr = match resolve_addr(&cli) {
        Ok(addr) => addr,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    let transcript = match run_script(&addr, &script, cli.seed) {
        Ok(transcript) => transcript,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::FAILURE;
        }
    };
    let rendered = transcript.to_jsonl();
    match &cli.transcript {
        Some(path) => {
            if let Err(err) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path}: {err}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "bcc-client: wrote {} transcript records to {path}",
                transcript.lines.len()
            );
        }
        None => print!("{rendered}"),
    }
    if cli.strict && transcript.anomalies > 0 {
        eprintln!(
            "error: --strict and {} error/reject responses in transcript",
            transcript.anomalies
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
