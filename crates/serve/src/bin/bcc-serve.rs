//! The `bcc-serve` daemon.
//!
//! ```text
//! bcc-serve [OPTIONS]
//!
//! OPTIONS:
//!   --port N               loopback port (default 0 = OS-assigned)
//!   --port-file PATH       write the bound port here after binding
//!   --jobs N               pool worker threads per request (default 2)
//!   --queue-cap N          admission queue capacity (default 16)
//!   --quota N              per-client outstanding quota (default 8)
//!   --seed S               default suite seed for submits without one
//!   --metrics PATH         flush the merged metrics dump here at drain
//!   --metrics-level L      off | core | full (default: core when
//!                          --metrics is given, else off)
//!   --trace PATH           flush the merged trace here at drain
//!   --trace-level L        off | spans | costs | events (default: events when
//!                          --trace is given, else off)
//!   --cache PATH           persist the artifact cache in PATH
//!   --transport T          round-delivery backend for all requests:
//!                          local (in-process, default) or sockets:N
//!                          (N worker subprocesses over loopback TCP);
//!                          reports are byte-identical either way
//!   --max-line-bytes N     longest accepted request line (default 65536)
//!   --drain-timeout-secs T post-drain patience for lingering
//!                          connections (default 30)
//! ```
//!
//! The daemon exits 0 after a protocol `shutdown` completes its
//! drain (queue finished, dumps flushed, connections closed or timed
//! out).

use bcc_metrics::MetricsLevel;
use bcc_serve::{net, NetConfig, Server, ServerConfig};
use bcc_trace::TraceLevel;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: bcc-serve [--port N] [--port-file PATH] [--jobs N] \
[--queue-cap N] [--quota N] [--seed S] [--metrics PATH] [--metrics-level off|core|full] \
[--trace PATH] [--trace-level off|spans|costs|events] [--cache PATH] \
[--transport local|sockets:N] [--max-line-bytes N] [--drain-timeout-secs T]";

struct Cli {
    server: ServerConfig,
    net: NetConfig,
    cache_dir: Option<std::path::PathBuf>,
    transport: Option<bcc_model::TransportSpec>,
}

fn parse_u64(it: &mut std::vec::IntoIter<String>, flag: &str) -> Result<u64, String> {
    let v = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    v.parse::<u64>()
        .map_err(|_| format!("{flag}: not a u64: {v:?}"))
}

fn parse_args(args: Vec<String>) -> Result<Cli, String> {
    let mut server = ServerConfig::default();
    let mut net_config = NetConfig::default();
    let mut cache_dir = None;
    let mut transport = None;
    let mut metrics_level: Option<MetricsLevel> = None;
    let mut trace_level: Option<TraceLevel> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--port" => {
                let v = parse_u64(&mut it, "--port")?;
                net_config.port =
                    u16::try_from(v).map_err(|_| format!("--port: not a port: {v}"))?;
            }
            "--port-file" => {
                let v = it.next().ok_or("--port-file needs a path")?;
                net_config.port_file = Some(std::path::PathBuf::from(v));
            }
            "--jobs" => server.threads = parse_u64(&mut it, "--jobs")?.max(1) as usize,
            "--queue-cap" => server.queue_cap = parse_u64(&mut it, "--queue-cap")?,
            "--quota" => server.quota = parse_u64(&mut it, "--quota")?,
            "--seed" => server.default_seed = parse_u64(&mut it, "--seed")?,
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs a path")?;
                server.metrics_path = Some(std::path::PathBuf::from(v));
            }
            "--metrics-level" => {
                let v = it.next().ok_or("--metrics-level needs a value")?;
                metrics_level = Some(MetricsLevel::from_name(&v).ok_or_else(|| {
                    format!("--metrics-level: expected off, core, or full, got {v:?}")
                })?);
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a path")?;
                server.trace_path = Some(std::path::PathBuf::from(v));
            }
            "--trace-level" => {
                let v = it.next().ok_or("--trace-level needs a value")?;
                trace_level = Some(match v.as_str() {
                    "off" => TraceLevel::Off,
                    "spans" => TraceLevel::Spans,
                    "costs" => TraceLevel::Costs,
                    "events" => TraceLevel::Events,
                    other => {
                        return Err(format!(
                            "--trace-level: expected off, spans, costs, or events, got {other:?}"
                        ))
                    }
                });
            }
            "--cache" => {
                let v = it.next().ok_or("--cache needs a path")?;
                cache_dir = Some(std::path::PathBuf::from(v));
            }
            "--transport" => {
                let v = it.next().ok_or("--transport needs a value")?;
                transport = Some(
                    bcc_model::TransportSpec::parse(&v).map_err(|e| format!("--transport: {e}"))?,
                );
            }
            "--max-line-bytes" => {
                server.max_line_bytes = parse_u64(&mut it, "--max-line-bytes")?.max(64) as usize;
            }
            "--drain-timeout-secs" => {
                net_config.drain_timeout =
                    Duration::from_secs(parse_u64(&mut it, "--drain-timeout-secs")?);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    // Same convention as bcc-experiments: naming a dump path turns
    // recording on; an explicit level always wins.
    server.metrics_level = match (metrics_level, &server.metrics_path) {
        (Some(level), _) => level,
        (None, Some(_)) => MetricsLevel::Core,
        (None, None) => MetricsLevel::Off,
    };
    server.trace_level = match (trace_level, &server.trace_path) {
        (Some(level), _) => level,
        (None, Some(_)) => TraceLevel::Events,
        (None, None) => TraceLevel::Off,
    };
    Ok(Cli {
        server,
        net: net_config,
        cache_dir,
        transport,
    })
}

fn main() -> ExitCode {
    // Must run before anything else: under `--transport sockets:N`
    // this binary re-execs itself as the delivery workers.
    bcc_transport::maybe_run_worker();
    let cli = match parse_args(std::env::args().skip(1).collect()) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(dir) = cli.cache_dir {
        bcc_experiments::cache::configure_disk(dir);
    }
    if let Some(spec) = cli.transport {
        bcc_transport::install(spec);
    }
    let server = Server::start(cli.server);
    let listening = match net::start(server, cli.net) {
        Ok(listening) => listening,
        Err(err) => {
            eprintln!("error: bind failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("bcc-serve: listening on 127.0.0.1:{}", listening.port());
    match listening.join() {
        Ok(()) => {
            eprintln!("bcc-serve: drained, exiting");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("error: accept loop: {err}");
            ExitCode::FAILURE
        }
    }
}
