//! Property tests for the trace layer: arbitrary events round-trip
//! through the JSONL sink, and the collector merge is a pure function
//! of event content.

use bcc_trace::json::{event_to_json, parse_event};
use bcc_trace::{Collector, Event, EventKind, FieldValue, TraceLevel};
use proptest::prelude::*;

/// Maps a generator word to a printable string, exercising escapes.
fn word(bits: u64, len: usize) -> String {
    const ALPHABET: [char; 16] = [
        'a', 'b', 'z', '0', '9', ' ', '=', '/', '"', '\\', '\n', '\t', 'é', '⊥', '{', '}',
    ];
    (0..len)
        .map(|i| ALPHABET[((bits >> (i * 4)) & 0xf) as usize])
        .collect()
}

fn kind_for(selector: u8) -> EventKind {
    match selector % 5 {
        0 => EventKind::SpanStart,
        1 => EventKind::SpanEnd,
        2 => EventKind::Counter,
        3 => EventKind::Gauge,
        _ => EventKind::Point,
    }
}

/// Builds a field value; non-negative `Int`s are avoided because they
/// serialize identically to `UInt` (the documented representation
/// ambiguity), and floats are quantized to stay finite.
fn value_for(selector: u8, payload: u64) -> FieldValue {
    match selector % 5 {
        0 => FieldValue::Int(-((payload >> 1) as i64).abs() - 1),
        1 => FieldValue::UInt(payload),
        2 => FieldValue::Float((payload as f64) / 256.0 - 1e6),
        3 => FieldValue::Bool(payload.is_multiple_of(2)),
        _ => FieldValue::Str(word(payload, 6)),
    }
}

fn event_from(
    unit_bits: u64,
    seq: u64,
    path_bits: u64,
    kind_sel: u8,
    name_bits: u64,
    fields_raw: Vec<(u64, u8, u64)>,
) -> Event {
    Event {
        unit: word(unit_bits, 8),
        seq,
        path: word(path_bits, 5),
        kind: kind_for(kind_sel),
        name: word(name_bits, 4),
        fields: fields_raw
            .into_iter()
            .enumerate()
            .map(|(i, (key_bits, sel, payload))| {
                // Suffix with the index so duplicate keys cannot arise
                // (lookup by name would be ambiguous otherwise).
                (
                    format!("{}{}", word(key_bits, 3), i),
                    value_for(sel, payload),
                )
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    #[test]
    fn events_round_trip_through_jsonl(
        unit_bits in proptest::strategy::any::<u64>(),
        seq in 0u64..1_000_000,
        path_bits in proptest::strategy::any::<u64>(),
        kind_sel in proptest::strategy::any::<u8>(),
        name_bits in proptest::strategy::any::<u64>(),
        fields_raw in proptest::collection::vec(
            (
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u8>(),
                proptest::strategy::any::<u64>(),
            ),
            0..6,
        ),
    ) {
        let event = event_from(unit_bits, seq, path_bits, kind_sel, name_bits, fields_raw);
        let line = event_to_json(&event);
        prop_assert!(!line.contains('\n'), "JSONL record must be one line: {line:?}");
        let parsed = parse_event(&line).expect("writer output must parse");
        prop_assert_eq!(&parsed, &event);
        // Serialization is a pure function: a second pass is identical.
        prop_assert_eq!(event_to_json(&parsed), line);
    }

    #[test]
    fn collector_merge_ignores_absorb_order(
        units in proptest::collection::vec(
            (proptest::strategy::any::<u64>(), 1usize..8),
            1..6,
        ),
        flip in proptest::strategy::any::<bool>(),
    ) {
        let build = |reverse: bool| {
            let collector = Collector::new(TraceLevel::Events);
            let mut bufs: Vec<_> = units
                .iter()
                .enumerate()
                .map(|(i, (bits, n))| {
                    // Index-suffixed units stay unique even when the
                    // generator repeats a word.
                    let mut buf = collector.buf(format!("{}#{i}", word(*bits, 6)));
                    for k in 0..*n {
                        buf.event("e", vec![bcc_trace::field("k", k)]);
                    }
                    buf
                })
                .collect();
            if reverse {
                bufs.reverse();
            }
            for buf in bufs {
                collector.absorb(buf);
            }
            collector.finish()
        };
        let (one, two) = (build(flip), build(!flip));
        prop_assert_eq!(one.events(), two.events());
    }
}
