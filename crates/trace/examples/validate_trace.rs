//! Trace-file validator: checks that a JSONL trace emitted by
//! `--trace` is well-formed. Used by CI after the trace smoke run.
//!
//! Checks, per file:
//!
//! 1. every line parses back through the codec (`parse_event`);
//! 2. lines appear in merge order — `(unit, seq)` non-decreasing, so
//!    units are grouped and sequences increase within each unit;
//! 3. spans balance within each unit: every `span_end` matches the
//!    innermost open `span_start`, and no span is left open.
//!
//! Usage: `validate_trace <trace.jsonl>...`; exits 0 when every file
//! is valid, 1 on any violation, 2 on usage/IO errors.

use std::collections::BTreeMap;
use std::process::ExitCode;

use bcc_trace::json::parse_event;
use bcc_trace::EventKind;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_trace <trace.jsonl>...");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => match validate(&text) {
                Ok(stats) => println!("{path}: ok ({stats})"),
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    ok = false;
                }
            },
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs all checks over one file's contents; returns a stats line.
fn validate(text: &str) -> Result<String, String> {
    let mut prev: Option<(String, u64)> = None;
    // Per-unit stack of open span names.
    let mut open: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let e = parse_event(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let key = (e.unit.clone(), e.seq);
        if let Some(p) = &prev {
            if *p > key {
                return Err(format!(
                    "line {lineno}: out of merge order: ({}, {}) after ({}, {})",
                    key.0, key.1, p.0, p.1
                ));
            }
        }
        prev = Some(key);
        let stack = open.entry(e.unit.clone()).or_default();
        match e.kind {
            EventKind::SpanStart => stack.push(e.name.clone()),
            EventKind::SpanEnd => match stack.pop() {
                Some(top) if top == e.name => {}
                Some(top) => {
                    return Err(format!(
                        "line {lineno}: span_end `{}` closes open span `{top}` in unit `{}`",
                        e.name, e.unit
                    ));
                }
                None => {
                    return Err(format!(
                        "line {lineno}: span_end `{}` with no open span in unit `{}`",
                        e.name, e.unit
                    ));
                }
            },
            EventKind::Point | EventKind::Counter | EventKind::Gauge => {}
        }
        events += 1;
    }
    for (unit, stack) in &open {
        if let Some(name) = stack.last() {
            return Err(format!("span `{name}` left open in unit `{unit}`"));
        }
    }
    Ok(format!("{events} events, {} units", open.len()))
}
