//! Trace-file validator: checks that a JSONL trace emitted by
//! `--trace` is well-formed. Used by CI after the trace smoke run.
//!
//! Checks, per file:
//!
//! 1. every line parses back through the codec (`parse_event`);
//! 2. lines appear in merge order — units grouped, and `seq` strictly
//!    increasing within each unit (a duplicate seq means two writers
//!    shared a unit, which the merge cannot order deterministically);
//! 3. spans nest within each unit: every `span_end` matches the
//!    innermost open `span_start`, and no span is left open;
//! 4. span opens and closes balance per `(unit, name)` pair — a close
//!    in one unit can never satisfy an open in another, so a
//!    cross-unit mismatch shows up as one unit with surplus opens and
//!    another with surplus closes rather than being absorbed silently;
//! 5. worker-origin units (`transport/worker:<rank>`, replayed from
//!    telemetry the workers shipped over the wire) start with their
//!    `worker:<rank>` wrapper `span_start` and end with its matching
//!    `span_end` — so a truncated or mis-merged worker replay cannot
//!    masquerade as a valid unit. Because only *closed* sessions ship
//!    telemetry (a dead worker's open sessions are counted as
//!    `truncated` instead), these checks must hold even for traces
//!    collected on a run that lost a worker.
//!
//! All violations in a file are reported, not just the first — a
//! truncated or interleaved trace usually breaks several checks at
//! once and the full list localises the corruption faster.
//!
//! Usage: `validate_trace <trace.jsonl>...`; exits 0 when every file
//! is valid, 1 on any violation, 2 on usage/IO errors.

use std::collections::BTreeMap;
use std::process::ExitCode;

use bcc_trace::json::parse_event;
use bcc_trace::EventKind;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_trace <trace.jsonl>...");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => match validate(&text) {
                Ok(stats) => println!("{path}: ok ({stats})"),
                Err(violations) => {
                    for v in &violations {
                        eprintln!("{path}: INVALID: {v}");
                    }
                    ok = false;
                }
            },
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs all checks over one file's contents. Returns a stats line on
/// success, or every violation found (never an empty list) on
/// failure. A line that fails to parse ends validation at that line —
/// nothing after it can be trusted as event data — but everything
/// gathered up to it is still reported.
fn validate(text: &str) -> Result<String, Vec<String>> {
    let mut violations: Vec<String> = Vec::new();
    let mut prev: Option<(String, u64)> = None;
    // Per-unit stack of open span names, for nesting checks.
    let mut open: BTreeMap<String, Vec<String>> = BTreeMap::new();
    // Per-(unit, name) open/close tallies, for balance checks that
    // survive even when nesting is already broken.
    let mut opens: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut closes: BTreeMap<(String, String), u64> = BTreeMap::new();
    // Per-unit first and last (kind, name), for the worker wrapper
    // check.
    type Edge = (EventKind, String);
    let mut bounds: BTreeMap<String, (Edge, Edge)> = BTreeMap::new();
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let e = match parse_event(line) {
            Ok(e) => e,
            Err(e) => {
                violations.push(format!("line {lineno}: {e}"));
                return Err(violations);
            }
        };
        let key = (e.unit.clone(), e.seq);
        if let Some(p) = &prev {
            if *p >= key {
                let what = if *p == key { "duplicate" } else { "out of" };
                violations.push(format!(
                    "line {lineno}: {what} merge order: ({}, {}) after ({}, {})",
                    key.0, key.1, p.0, p.1
                ));
            }
        }
        prev = Some(key);
        let stack = open.entry(e.unit.clone()).or_default();
        match e.kind {
            EventKind::SpanStart => {
                stack.push(e.name.clone());
                *opens.entry((e.unit.clone(), e.name.clone())).or_default() += 1;
            }
            EventKind::SpanEnd => {
                *closes.entry((e.unit.clone(), e.name.clone())).or_default() += 1;
                match stack.pop() {
                    Some(top) if top == e.name => {}
                    Some(top) => violations.push(format!(
                        "line {lineno}: span_end `{}` closes open span `{top}` in unit `{}`",
                        e.name, e.unit
                    )),
                    None => violations.push(format!(
                        "line {lineno}: span_end `{}` with no open span in unit `{}`",
                        e.name, e.unit
                    )),
                }
            }
            EventKind::Point | EventKind::Counter | EventKind::Gauge => {}
        }
        let this = (e.kind, e.name.clone());
        bounds
            .entry(e.unit.clone())
            .and_modify(|(_, last)| *last = this.clone())
            .or_insert_with(|| (this.clone(), this.clone()));
        events += 1;
    }
    for (unit, stack) in &open {
        for name in stack {
            violations.push(format!("span `{name}` left open in unit `{unit}`"));
        }
    }
    // Cross-check counts per (unit, name): surplus closes here pair
    // with surplus opens elsewhere when a close landed in the wrong
    // unit's stream.
    let mut pairs: Vec<&(String, String)> = opens.keys().chain(closes.keys()).collect();
    pairs.sort();
    pairs.dedup();
    for pair in pairs {
        let o = opens.get(pair).copied().unwrap_or(0);
        let c = closes.get(pair).copied().unwrap_or(0);
        if o != c {
            violations.push(format!(
                "span `{}` in unit `{}`: {o} open(s) vs {c} close(s)",
                pair.1, pair.0
            ));
        }
    }
    // Worker-origin units must be bracketed by the wrapper span the
    // driver synthesises at flush: `transport/worker:<rank>` opens
    // with span_start `worker:<rank>` and closes with its span_end.
    for (unit, (first, last)) in &bounds {
        let Some(wrapper) = unit.strip_prefix("transport/") else {
            continue;
        };
        if !wrapper.starts_with("worker:") {
            continue;
        }
        if *first != (EventKind::SpanStart, wrapper.to_string()) {
            violations.push(format!(
                "unit `{unit}` does not start with its `{wrapper}` wrapper span_start"
            ));
        }
        if *last != (EventKind::SpanEnd, wrapper.to_string()) {
            violations.push(format!(
                "unit `{unit}` does not end with its `{wrapper}` wrapper span_end"
            ));
        }
    }
    // Unit classes (the prefix before `/`) tell a reader at a glance
    // which subsystems contributed: jobs, suite, transport workers.
    let classes: std::collections::BTreeSet<&str> = open
        .keys()
        .map(|u| u.split('/').next().unwrap_or(u.as_str()))
        .collect();
    if violations.is_empty() {
        Ok(format!(
            "{events} events, {} units, {} unit classes",
            open.len(),
            classes.len()
        ))
    } else {
        Err(violations)
    }
}
