//! `bcc-trace`: deterministic structured tracing for the bcclique
//! workspace.
//!
//! The theorems this repository reproduces are statements about
//! *transcripts* — which bits cross the broadcast channel in which
//! round. This crate makes those transcripts observable without
//! breaking the property that makes them checkable: every span and
//! event is keyed on **logical time** (experiment → job → round →
//! node), never wall-clock, so a trace is a pure function of the
//! suite seed and the lint rule D2 (no clock reads outside the
//! runner) keeps holding in instrumented code.
//!
//! # Pieces
//!
//! - [`Event`], [`EventKind`], [`FieldValue`]: the typed event model.
//!   Events carry a `unit` (the owning logical scope, e.g. a job id),
//!   a per-unit sequence number, a slash-joined logical `path`
//!   (`round=3/node=7`), and named fields.
//! - [`TraceBuf`]: a plain, lock-free per-unit buffer. Recording is a
//!   `Vec::push`; a disabled buffer ([`TraceLevel::Off`]) skips the
//!   push entirely, so tracing compiles to a branch on the hot path.
//! - [`Collector`]: the only blessed route from buffers to bytes
//!   (lint rule O1). Buffers are absorbed under one short lock each
//!   and merged **deterministically** by `(unit, seq)` — thread
//!   interleaving can never reorder a trace.
//! - [`Trace`]: the merged, immutable result; renders through the
//!   sinks in [`sink`] (JSONL writer, compact text summary, null).
//! - [`json`]: the JSONL codec, including a parser so traces
//!   round-trip (used by the determinism proptests and the trace
//!   validator in CI).
//! - [`tree`]: span-tree reconstruction — rebuilds each unit's span
//!   forest (with per-span cost attachment) from the merged stream,
//!   the substrate for the `bcc-prof` cost-attribution profiler.
//!
//! # The invariant
//!
//! Tracing **on vs. off must never change experiment reports**, and a
//! re-run with the same seed must produce a byte-identical trace.
//! Nothing in this crate reads clocks, thread ids, or addresses, and
//! the merge order is a pure function of event content.
//!
//! # Example
//!
//! ```
//! use bcc_trace::{Collector, TraceLevel, field};
//!
//! let collector = Collector::new(TraceLevel::Events);
//! let mut buf = collector.buf("e1/n=27");
//! buf.span_start("job", vec![field("seed", 42u64)]);
//! buf.event("broadcast", vec![field("round", 0u64), field("bit", true)]);
//! buf.counter("bits_broadcast", 1);
//! buf.span_end("job", vec![]);
//! collector.absorb(buf);
//! let trace = collector.finish();
//! assert_eq!(trace.events().len(), 4);
//! let mut jsonl = Vec::new();
//! trace.write_jsonl(&mut jsonl).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buf;
mod collector;
mod event;
pub mod json;
mod scope;
pub mod sink;
pub mod tree;

pub use buf::{TraceBuf, TraceLevel};
pub use collector::{Collector, Trace};
pub use event::{field, Event, EventKind, FieldValue};
pub use scope::TraceScope;
pub use tree::{build_trees, SpanNode, UnitTree};
