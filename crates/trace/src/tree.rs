//! Span-tree reconstruction: from a merged, flat event stream back to
//! the per-unit tree of logical scopes.
//!
//! A [`Trace`](crate::Trace) is a flat record — `(unit, seq)`-ordered
//! span opens/closes with counters interleaved. Consumers that reason
//! about *structure* (the `bcc-prof` cost-attribution profiler, the
//! trace validator) want the tree back: which spans nested in which,
//! and which costs were recorded while each span was innermost.
//! This module rebuilds that tree deterministically from the merged
//! stream, without re-running anything.
//!
//! Reconstruction is total: malformed streams (a close without an
//! open, a span left open at end of unit) never panic — the anomalies
//! are surfaced on the [`UnitTree`] so callers can decide whether
//! they are errors (the validator does) or noise (the profiler
//! attributes what it can and reports the rest as unattributed).

use crate::event::{Event, EventKind, FieldValue};

/// One reconstructed span instance: a named scope with the costs
/// recorded while it was innermost and the spans that nested in it.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// The span name as recorded (`"job"`, `"round=3"`).
    pub name: String,
    /// Sequence number of the opening record within the unit.
    pub start_seq: u64,
    /// Sequence number of the closing record, or `None` when the
    /// span was still open at the end of the unit's stream.
    pub end_seq: Option<u64>,
    /// Counter increments recorded while this span was innermost
    /// (name, delta), in recording order. Gauges and point events are
    /// not part of the cost stream and are not retained here.
    pub counters: Vec<(String, u64)>,
    /// Child spans, in opening order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Walks this node and all descendants, depth-first, parents
    /// before children.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a SpanNode, usize)) {
        self.visit_at(0, f);
    }

    fn visit_at<'a>(&'a self, depth: usize, f: &mut impl FnMut(&'a SpanNode, usize)) {
        f(self, depth);
        for child in &self.children {
            child.visit_at(depth + 1, f);
        }
    }

    /// Total number of spans in this subtree (including `self`).
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::span_count)
            .sum::<usize>()
    }
}

/// The reconstructed span forest of one unit, plus every anomaly the
/// reconstruction hit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UnitTree {
    /// The owning unit.
    pub unit: String,
    /// Top-level spans, in opening order.
    pub roots: Vec<SpanNode>,
    /// Counter increments recorded outside any span (name, delta).
    pub floor_counters: Vec<(String, u64)>,
    /// Spans that were still open when the unit's stream ended
    /// (their nodes are in the tree with `end_seq: None`).
    pub unclosed: usize,
    /// Span-close records that had no matching open.
    pub unmatched_closes: usize,
}

impl UnitTree {
    /// Walks every span in the forest, depth-first.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a SpanNode, usize)) {
        for root in &self.roots {
            root.visit(f);
        }
    }

    /// True when reconstruction hit no anomalies.
    pub fn well_formed(&self) -> bool {
        self.unclosed == 0 && self.unmatched_closes == 0
    }
}

/// Extracts the `delta` payload of a counter record; counters written
/// by [`TraceBuf::counter`](crate::TraceBuf::counter) always carry
/// one. A hand-built event without it counts as zero cost.
fn counter_delta(event: &Event) -> u64 {
    match event.field("delta") {
        Some(FieldValue::UInt(v)) => *v,
        Some(FieldValue::Int(v)) => u64::try_from(*v).unwrap_or(0),
        _ => 0,
    }
}

/// Rebuilds the span forest of every unit in a merged event stream.
///
/// `events` must be grouped by unit with per-unit recording order
/// preserved — exactly what [`Trace::events`](crate::Trace::events)
/// yields. Units appear in the output in first-appearance order.
pub fn build_trees(events: &[Event]) -> Vec<UnitTree> {
    let mut trees: Vec<UnitTree> = Vec::new();
    let mut start = 0usize;
    while start < events.len() {
        let unit = &events[start].unit;
        let mut end = start + 1;
        while end < events.len() && events[end].unit == *unit {
            end += 1;
        }
        trees.push(build_unit_tree(unit, &events[start..end]));
        start = end;
    }
    trees
}

fn build_unit_tree(unit: &str, events: &[Event]) -> UnitTree {
    let mut tree = UnitTree {
        unit: unit.to_string(),
        ..UnitTree::default()
    };
    // The stack holds spans that are open; closing pops the top and
    // attaches it to the new top (or the roots).
    let mut stack: Vec<SpanNode> = Vec::new();
    for event in events {
        match event.kind {
            EventKind::SpanStart => stack.push(SpanNode {
                name: event.name.clone(),
                start_seq: event.seq,
                end_seq: None,
                counters: Vec::new(),
                children: Vec::new(),
            }),
            EventKind::SpanEnd => match stack.pop() {
                Some(mut node) => {
                    node.end_seq = Some(event.seq);
                    attach(&mut stack, &mut tree.roots, node);
                }
                None => tree.unmatched_closes += 1,
            },
            EventKind::Counter => {
                let cost = (event.name.clone(), counter_delta(event));
                match stack.last_mut() {
                    Some(node) => node.counters.push(cost),
                    None => tree.floor_counters.push(cost),
                }
            }
            EventKind::Gauge | EventKind::Point => {}
        }
    }
    // Anything still open is kept in the tree (deepest spans attach
    // to their parents first) and counted as an anomaly.
    tree.unclosed = stack.len();
    while let Some(node) = stack.pop() {
        attach(&mut stack, &mut tree.roots, node);
    }
    // Popping open spans attaches in reverse opening order; restore
    // opening order at whatever level they landed.
    tree.roots.sort_by_key(|n| n.start_seq);
    tree
}

fn attach(stack: &mut [SpanNode], roots: &mut Vec<SpanNode>, node: SpanNode) {
    match stack.last_mut() {
        Some(parent) => parent.children.push(node),
        None => roots.push(node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buf::{TraceBuf, TraceLevel};

    fn sample_events() -> Vec<Event> {
        let mut b = TraceBuf::new(TraceLevel::Events, "u");
        b.counter("floor.cost", 1);
        b.span_start("job", vec![]);
        b.counter("sim.bits_broadcast", 10);
        b.span_start("round=0", vec![]);
        b.counter("sim.bits_broadcast", 7);
        b.event("broadcast", vec![]);
        b.span_end("round=0", vec![]);
        b.span_end("job", vec![]);
        b.into_events()
    }

    #[test]
    fn rebuilds_nesting_and_cost_attachment() {
        let trees = build_trees(&sample_events());
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert!(tree.well_formed());
        assert_eq!(tree.unit, "u");
        assert_eq!(tree.floor_counters, vec![("floor.cost".into(), 1)]);
        assert_eq!(tree.roots.len(), 1);
        let job = &tree.roots[0];
        assert_eq!(job.name, "job");
        assert_eq!(job.counters, vec![("sim.bits_broadcast".into(), 10)]);
        assert_eq!(job.children.len(), 1);
        let round = &job.children[0];
        assert_eq!(round.name, "round=0");
        assert_eq!(round.counters, vec![("sim.bits_broadcast".into(), 7)]);
        assert_eq!(round.end_seq, Some(6));
        assert_eq!(job.span_count(), 2);
    }

    #[test]
    fn groups_by_unit_in_first_appearance_order() {
        let mut a = TraceBuf::new(TraceLevel::Spans, "a");
        a.span_start("s", vec![]);
        a.span_end("s", vec![]);
        let mut b = TraceBuf::new(TraceLevel::Spans, "b");
        b.span_start("t", vec![]);
        b.span_end("t", vec![]);
        let mut events = a.into_events();
        events.extend(b.into_events());
        let trees = build_trees(&events);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].unit, "a");
        assert_eq!(trees[1].unit, "b");
    }

    #[test]
    fn anomalies_are_counted_not_fatal() {
        // A close without an open, then an open without a close.
        let mut events = Vec::new();
        let mut b = TraceBuf::new(TraceLevel::Spans, "u");
        b.span_start("late", vec![]);
        let open = b.into_events();
        events.push(Event {
            kind: EventKind::SpanEnd,
            ..open[0].clone()
        });
        events.extend(open);
        let trees = build_trees(&events);
        assert_eq!(trees[0].unmatched_closes, 1);
        assert_eq!(trees[0].unclosed, 1);
        assert_eq!(trees[0].roots.len(), 1);
        assert_eq!(trees[0].roots[0].end_seq, None);
        assert!(!trees[0].well_formed());
    }

    #[test]
    fn unclosed_spans_keep_their_nesting() {
        let mut b = TraceBuf::new(TraceLevel::Events, "u");
        b.span_start("outer", vec![]);
        b.span_start("inner", vec![]);
        b.counter("c", 3);
        let trees = build_trees(&b.into_events());
        let tree = &trees[0];
        assert_eq!(tree.unclosed, 2);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].name, "outer");
        assert_eq!(tree.roots[0].children[0].name, "inner");
        assert_eq!(tree.roots[0].children[0].counters, vec![("c".into(), 3)]);
    }

    #[test]
    fn counter_delta_tolerates_odd_fields() {
        let e = Event {
            unit: "u".into(),
            seq: 0,
            path: String::new(),
            kind: EventKind::Counter,
            name: "c".into(),
            fields: vec![("delta".into(), FieldValue::Int(-4))],
        };
        assert_eq!(counter_delta(&e), 0);
    }
}
