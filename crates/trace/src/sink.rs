//! Trace sinks: where a merged [`Trace`](crate::Trace) renders to.
//!
//! Sinks only ever see the deterministic, `(unit, seq)`-sorted event
//! stream — instrumented code records through
//! [`TraceBuf`](crate::TraceBuf)/[`Collector`](crate::Collector) and
//! never writes to a sink directly (lint rule O1).

use crate::event::Event;
use crate::json;
use std::collections::BTreeMap;
use std::io::{self, Write};

/// A consumer of ordered trace events.
pub trait Sink {
    /// Consumes one event.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, if any.
    fn write_event(&mut self, event: &Event) -> io::Result<()>;

    /// Flushes any buffered output. Default: no-op.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error, if any.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Writes one JSONL record per event.
pub struct JsonlSink<'w> {
    w: io::BufWriter<&'w mut dyn Write>,
}

impl<'w> JsonlSink<'w> {
    /// A sink writing to `w`.
    pub fn new(w: &'w mut dyn Write) -> Self {
        JsonlSink {
            w: io::BufWriter::new(w),
        }
    }
}

impl Sink for JsonlSink<'_> {
    fn write_event(&mut self, event: &Event) -> io::Result<()> {
        writeln!(self.w, "{}", json::event_to_json(event))
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// Accumulates a compact text summary: record counts per kind, event
/// counts per name, and counter totals. Purely in-memory; never
/// fails.
#[derive(Debug, Default)]
pub struct SummarySink {
    units: BTreeMap<String, usize>,
    kinds: BTreeMap<&'static str, usize>,
    names: BTreeMap<String, usize>,
    counters: BTreeMap<String, u64>,
}

impl SummarySink {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders the accumulated summary as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("-- trace summary --\n");
        let total: usize = self.kinds.values().sum();
        out.push_str(&format!(
            "{} events across {} units\n",
            total,
            self.units.len()
        ));
        for (kind, n) in &self.kinds {
            out.push_str(&format!("  kind {kind:<10} {n:>8}\n"));
        }
        for (name, n) in &self.names {
            out.push_str(&format!("  event {name:<20} {n:>8}\n"));
        }
        for (name, total) in &self.counters {
            out.push_str(&format!("  counter {name:<18} {total:>8}\n"));
        }
        out
    }
}

impl Sink for SummarySink {
    fn write_event(&mut self, event: &Event) -> io::Result<()> {
        *self.units.entry(event.unit.clone()).or_insert(0) += 1;
        *self.kinds.entry(event.kind.tag()).or_insert(0) += 1;
        *self.names.entry(event.name.clone()).or_insert(0) += 1;
        if event.kind == crate::EventKind::Counter {
            if let Some(crate::FieldValue::UInt(delta)) = event.field("delta") {
                *self.counters.entry(event.name.clone()).or_insert(0) += delta;
            }
        }
        Ok(())
    }
}

/// Discards every event. Exists so call sites can keep one code path
/// and plug in "no output" with zero branching downstream.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl Sink for NullSink {
    fn write_event(&mut self, _event: &Event) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{field, EventKind};

    fn ev(name: &str, kind: EventKind) -> Event {
        Event {
            unit: "u".into(),
            seq: 0,
            path: String::new(),
            kind,
            name: name.into(),
            fields: vec![field("delta", 7u64)],
        }
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let mut out = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut out);
            sink.write_event(&ev("a", EventKind::Point)).unwrap();
            sink.write_event(&ev("b", EventKind::Counter)).unwrap();
            sink.finish().unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn summary_sink_accumulates() {
        let mut sink = SummarySink::new();
        sink.write_event(&ev("bits", EventKind::Counter)).unwrap();
        sink.write_event(&ev("bits", EventKind::Counter)).unwrap();
        sink.write_event(&ev("msg", EventKind::Point)).unwrap();
        let text = sink.render();
        assert!(text.contains("3 events across 1 units"));
        assert!(text.contains("counter bits"));
        assert!(text.contains("14"), "counter total missing: {text}");
    }

    #[test]
    fn null_sink_accepts_everything() {
        let mut sink = NullSink;
        sink.write_event(&ev("x", EventKind::Gauge)).unwrap();
        sink.finish().unwrap();
    }
}
