//! The typed event model: logical-time events with named fields.

use std::fmt;

/// A typed field value. Floats are carried as `f64` and serialized
/// with `{:?}` so integral values keep a trailing `.0` and round-trip
/// exactly; non-finite floats are rejected at construction (they have
/// no JSON literal and would break round-tripping).
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer (counts, deltas).
    Int(i64),
    /// Unsigned integer (ids, seeds, indices).
    UInt(u64),
    /// Finite real (errors, bounds).
    Float(f64),
    /// Boolean (verified properties, decisions).
    Bool(bool),
    /// Free-form label (algorithm names, statuses).
    Str(String),
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::Int(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::UInt(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::UInt(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::UInt(v as u64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        if v.is_finite() {
            FieldValue::Float(v)
        } else {
            // A non-finite measurement is a label, not a number — keep
            // the trace parseable rather than emitting bare `NaN`.
            FieldValue::Str(format!("{v}"))
        }
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Int(v) => write!(f, "{v}"),
            FieldValue::UInt(v) => write!(f, "{v}"),
            FieldValue::Float(v) => write!(f, "{v:?}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// Builds one named field — sugar for `(name.into(), value.into())`.
pub fn field(name: impl Into<String>, value: impl Into<FieldValue>) -> (String, FieldValue) {
    (name.into(), value.into())
}

/// What an [`Event`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A logical scope opened (experiment, job, protocol, round).
    SpanStart,
    /// A logical scope closed.
    SpanEnd,
    /// A monotonically accumulated quantity (bits broadcast,
    /// messages delivered).
    Counter,
    /// An instantaneous level (inbox size, frontier width).
    Gauge,
    /// A domain point event (a broadcast, a message, a decision, a
    /// crossing statistic).
    Point,
}

impl EventKind {
    /// Machine-readable tag, stable across versions.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::SpanStart => "span_start",
            EventKind::SpanEnd => "span_end",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Point => "point",
        }
    }

    /// Parses a tag produced by [`tag`](Self::tag).
    pub fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "span_start" => Some(EventKind::SpanStart),
            "span_end" => Some(EventKind::SpanEnd),
            "counter" => Some(EventKind::Counter),
            "gauge" => Some(EventKind::Gauge),
            "point" => Some(EventKind::Point),
            _ => None,
        }
    }
}

/// One trace record, keyed entirely on logical time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The owning logical unit — a job id (`"e1/n=27 t=0"`) or
    /// `"suite"`. Units are the outer merge key; each unit's events
    /// keep their recording order.
    pub unit: String,
    /// Per-unit sequence number (recording order within the unit).
    pub seq: u64,
    /// Slash-joined logical path *inside* the unit, from open spans:
    /// `"round=3/node=7"`. Empty at unit scope.
    pub path: String,
    /// The record kind.
    pub kind: EventKind,
    /// Event name (`"broadcast"`, `"bits_broadcast"`, `"job"`).
    pub name: String,
    /// Named fields, in insertion order.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_conversions() {
        assert_eq!(field("a", 3i64).1, FieldValue::Int(3));
        assert_eq!(field("b", 3usize).1, FieldValue::UInt(3));
        assert_eq!(field("c", true).1, FieldValue::Bool(true));
        assert_eq!(field("d", "x").1, FieldValue::Str("x".into()));
        assert_eq!(field("e", 0.5).1, FieldValue::Float(0.5));
    }

    #[test]
    fn non_finite_floats_become_labels() {
        assert_eq!(field("n", f64::NAN).1, FieldValue::Str("NaN".into()));
        assert_eq!(field("i", f64::INFINITY).1, FieldValue::Str("inf".into()));
    }

    #[test]
    fn kind_tags_round_trip() {
        for k in [
            EventKind::SpanStart,
            EventKind::SpanEnd,
            EventKind::Counter,
            EventKind::Gauge,
            EventKind::Point,
        ] {
            assert_eq!(EventKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(EventKind::from_tag("nope"), None);
    }

    #[test]
    fn event_field_lookup() {
        let e = Event {
            unit: "u".into(),
            seq: 0,
            path: String::new(),
            kind: EventKind::Point,
            name: "x".into(),
            fields: vec![field("n", 4usize)],
        };
        assert_eq!(e.field("n"), Some(&FieldValue::UInt(4)));
        assert_eq!(e.field("m"), None);
    }
}
