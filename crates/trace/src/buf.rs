//! The per-unit recording buffer: plain pushes, no locks, no clocks.

use crate::event::{Event, EventKind, FieldValue};

/// How much a run records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// Record nothing; every recording call is a cheap early return.
    #[default]
    Off,
    /// Record span opens/closes only (job lifecycles, rounds).
    Spans,
    /// Record spans plus the cost stream (counters and gauges) — what
    /// the profiler needs for span attribution — but not per-message
    /// point events. This is the cheapest level that still yields a
    /// complete cost profile.
    Costs,
    /// Record everything: spans, counters, gauges, and point events.
    Events,
}

impl TraceLevel {
    /// Parses a CLI-style level name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "off" => Some(TraceLevel::Off),
            "spans" => Some(TraceLevel::Spans),
            "costs" => Some(TraceLevel::Costs),
            "events" => Some(TraceLevel::Events),
            _ => None,
        }
    }

    /// The CLI-style name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Spans => "spans",
            TraceLevel::Costs => "costs",
            TraceLevel::Events => "events",
        }
    }
}

/// A per-unit event buffer. One buffer belongs to exactly one logical
/// unit (a job, the suite) and is written from exactly one thread at
/// a time, so recording is a plain `Vec::push` — the only lock in the
/// whole pipeline is the one `Collector::absorb` takes per *buffer*.
///
/// The buffer maintains a stack of open spans; event `path`s are the
/// slash-joined open-span names, so merged traces can be filtered by
/// logical position (`round=3/node=7`) without any global state.
#[derive(Debug, Clone)]
pub struct TraceBuf {
    level: TraceLevel,
    unit: String,
    seq: u64,
    stack: Vec<String>,
    events: Vec<Event>,
}

impl TraceBuf {
    /// A buffer for `unit` recording at `level`.
    pub fn new(level: TraceLevel, unit: impl Into<String>) -> Self {
        TraceBuf {
            level,
            unit: unit.into(),
            seq: 0,
            stack: Vec::new(),
            events: Vec::new(),
        }
    }

    /// A buffer that records nothing (the default for untraced runs).
    pub fn disabled() -> Self {
        TraceBuf::new(TraceLevel::Off, "")
    }

    /// The recording level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// The owning unit.
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// True when span records are kept.
    pub fn spans_enabled(&self) -> bool {
        self.level >= TraceLevel::Spans
    }

    /// True when counter/gauge cost records are kept.
    pub fn costs_enabled(&self) -> bool {
        self.level >= TraceLevel::Costs
    }

    /// True when point records are kept.
    pub fn events_enabled(&self) -> bool {
        self.level >= TraceLevel::Events
    }

    fn record(&mut self, kind: EventKind, name: &str, fields: Vec<(String, FieldValue)>) {
        let event = Event {
            unit: self.unit.clone(),
            seq: self.seq,
            path: self.stack.join("/"),
            kind,
            name: name.to_string(),
            fields,
        };
        self.seq += 1;
        self.events.push(event);
    }

    /// Opens a span. The span's `name` (plus any `key=value` detail
    /// the caller bakes into it) joins the logical path of every
    /// record until the matching [`span_end`](Self::span_end).
    pub fn span_start(&mut self, name: &str, fields: Vec<(String, FieldValue)>) {
        if self.spans_enabled() {
            self.record(EventKind::SpanStart, name, fields);
        }
        self.stack.push(name.to_string());
    }

    /// Closes the innermost span. `name` is recorded for readability;
    /// the stack pops regardless so a mismatched name cannot corrupt
    /// deeper paths.
    pub fn span_end(&mut self, name: &str, fields: Vec<(String, FieldValue)>) {
        self.stack.pop();
        if self.spans_enabled() {
            self.record(EventKind::SpanEnd, name, fields);
        }
    }

    /// Records a domain point event.
    pub fn event(&mut self, name: &str, fields: Vec<(String, FieldValue)>) {
        if self.events_enabled() {
            self.record(EventKind::Point, name, fields);
        }
    }

    /// Records a counter increment.
    pub fn counter(&mut self, name: &str, delta: u64) {
        if self.costs_enabled() {
            self.record(
                EventKind::Counter,
                name,
                vec![("delta".into(), delta.into())],
            );
        }
    }

    /// Records an instantaneous level.
    pub fn gauge(&mut self, name: &str, value: impl Into<FieldValue>) {
        if self.costs_enabled() {
            self.record(EventKind::Gauge, name, vec![("value".into(), value.into())]);
        }
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the buffer into its records.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::field;

    #[test]
    fn levels_order_and_parse() {
        assert!(TraceLevel::Off < TraceLevel::Spans);
        assert!(TraceLevel::Spans < TraceLevel::Costs);
        assert!(TraceLevel::Costs < TraceLevel::Events);
        for l in [
            TraceLevel::Off,
            TraceLevel::Spans,
            TraceLevel::Costs,
            TraceLevel::Events,
        ] {
            assert_eq!(TraceLevel::from_name(l.name()), Some(l));
        }
        assert_eq!(TraceLevel::from_name("verbose"), None);
    }

    #[test]
    fn disabled_buf_records_nothing() {
        let mut b = TraceBuf::disabled();
        b.span_start("job", vec![]);
        b.event("x", vec![field("a", 1u64)]);
        b.counter("c", 2);
        b.gauge("g", 3u64);
        b.span_end("job", vec![]);
        assert!(b.is_empty());
    }

    #[test]
    fn spans_level_drops_events_keeps_spans() {
        let mut b = TraceBuf::new(TraceLevel::Spans, "u");
        b.span_start("job", vec![]);
        b.event("x", vec![]);
        b.counter("c", 1);
        b.span_end("job", vec![]);
        let ev = b.into_events();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].kind, EventKind::SpanStart);
        assert_eq!(ev[1].kind, EventKind::SpanEnd);
    }

    #[test]
    fn paths_follow_span_stack() {
        let mut b = TraceBuf::new(TraceLevel::Events, "u");
        b.span_start("round=0", vec![]);
        b.span_start("node=3", vec![]);
        b.event("broadcast", vec![field("bit", true)]);
        b.span_end("node=3", vec![]);
        b.span_end("round=0", vec![]);
        let ev = b.into_events();
        assert_eq!(ev[2].path, "round=0/node=3");
        assert_eq!(ev[3].path, "round=0");
        assert_eq!(ev[4].path, "");
        // Sequence numbers are dense and ordered.
        let seqs: Vec<u64> = ev.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mismatched_span_end_still_pops() {
        let mut b = TraceBuf::new(TraceLevel::Events, "u");
        b.span_start("a", vec![]);
        b.span_end("b", vec![]);
        b.event("x", vec![]);
        assert_eq!(b.into_events()[2].path, "");
    }
}
