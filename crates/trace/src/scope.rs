//! A shared, clonable handle to a [`TraceBuf`].
//!
//! [`TraceBuf`] is deliberately single-owner (recording is a plain
//! `Vec::push`), but configuration objects — a simulator config, a
//! protocol-driver options struct, a job context — want to *carry* a
//! trace destination by value and hand it to library code that takes
//! `&mut TraceBuf`. `TraceScope` is that bridge: an `Arc<Mutex<_>>`
//! wrapper whose every method is a cheap no-op branch when tracing is
//! off. Recording stays deterministic — everything lands in the one
//! wrapped buffer, in call order, keyed by the buffer's own sequence
//! counter, never by wall-clock.

use crate::buf::{TraceBuf, TraceLevel};
use crate::event::FieldValue;
use std::sync::{Arc, Mutex, PoisonError};

/// A clonable handle to one [`TraceBuf`].
///
/// The mutex serializes the (rare) case of two clones recording
/// concurrently; when tracing is off every method is a branch on a
/// cached level — no lock, no allocation — so instrumented code needs
/// no `if`s.
#[derive(Debug, Clone)]
pub struct TraceScope {
    level: TraceLevel,
    buf: Arc<Mutex<TraceBuf>>,
}

impl TraceScope {
    /// Wraps a buffer for sharing.
    pub fn new(buf: TraceBuf) -> Self {
        TraceScope {
            level: buf.level(),
            buf: Arc::new(Mutex::new(buf)),
        }
    }

    /// A scope that records nothing (detached contexts, untraced
    /// runs). This is the `Default`.
    pub fn disabled() -> Self {
        TraceScope::new(TraceBuf::disabled())
    }

    /// The recording level the wrapped buffer was created with.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// True when point events are kept.
    pub fn enabled(&self) -> bool {
        self.level >= TraceLevel::Events
    }

    /// True when counter/gauge cost records are kept.
    pub fn costs_enabled(&self) -> bool {
        self.level >= TraceLevel::Costs
    }

    /// True when span start/end records are kept.
    pub fn spans_enabled(&self) -> bool {
        self.level >= TraceLevel::Spans
    }

    /// Runs `f` with exclusive access to the underlying buffer — the
    /// bridge into traced library APIs that take `&mut TraceBuf`
    /// (e.g. a simulator or protocol driver recording its own spans).
    pub fn with<R>(&self, f: impl FnOnce(&mut TraceBuf) -> R) -> R {
        let mut buf = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut buf)
    }

    /// Records a domain point event (no-op when tracing is off).
    pub fn event(&self, name: &str, fields: Vec<(String, FieldValue)>) {
        if self.enabled() {
            self.with(|b| b.event(name, fields));
        }
    }

    /// Records a counter increment (no-op when tracing is off).
    pub fn counter(&self, name: &str, delta: u64) {
        if self.costs_enabled() {
            self.with(|b| b.counter(name, delta));
        }
    }

    /// Records an instantaneous level (no-op when tracing is off).
    pub fn gauge(&self, name: &str, value: impl Into<FieldValue>) {
        if self.costs_enabled() {
            self.with(|b| b.gauge(name, value));
        }
    }

    /// Takes the buffer back out, leaving a disabled one behind. A
    /// collector calls this once to absorb the records; a closure that
    /// (incorrectly) kept a clone alive past its owner records into
    /// the discarded replacement, never corrupting the trace.
    pub fn take(&self) -> TraceBuf {
        let mut buf = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *buf, TraceBuf::disabled())
    }
}

impl Default for TraceScope {
    fn default() -> Self {
        TraceScope::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field;

    #[test]
    fn disabled_scope_records_nothing() {
        let scope = TraceScope::disabled();
        assert!(!scope.enabled());
        assert!(!scope.spans_enabled());
        scope.event("x", vec![]);
        scope.counter("c", 1);
        scope.gauge("g", 2u64);
        assert!(scope.take().into_events().is_empty());
    }

    #[test]
    fn clones_share_one_buffer() {
        let scope = TraceScope::new(TraceBuf::new(TraceLevel::Events, "u"));
        let clone = scope.clone();
        scope.event("a", vec![field("k", 1u64)]);
        clone.event("b", vec![]);
        let events = scope.take().into_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].name, "b");
        // The clone now points at the discarded replacement.
        clone.event("late", vec![]);
        assert!(scope.take().into_events().is_empty());
    }

    #[test]
    fn with_bridges_into_traced_apis() {
        let scope = TraceScope::new(TraceBuf::new(TraceLevel::Spans, "u"));
        assert!(scope.spans_enabled());
        assert!(!scope.enabled());
        scope.with(|b| {
            b.span_start("s", vec![]);
            b.span_end("s", vec![]);
        });
        assert_eq!(scope.take().into_events().len(), 2);
    }
}
