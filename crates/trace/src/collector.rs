//! The deterministic collector: per-unit buffers in, one ordered
//! trace out.

use crate::buf::{TraceBuf, TraceLevel};
use crate::event::{Event, EventKind};
use crate::sink::Sink;
use std::sync::{Arc, Mutex, PoisonError};

/// Collects [`TraceBuf`]s from any number of threads and merges them
/// into one deterministic [`Trace`].
///
/// The collector is the *only* blessed route from recorded events to
/// rendered bytes (lint rule O1): instrumented code records into
/// buffers, buffers are absorbed here, and sinks only ever see the
/// merged, `(unit, seq)`-sorted stream. That ordering is a pure
/// function of event content, so `--jobs 1` and `--jobs 8` produce
/// byte-identical traces no matter how workers interleave.
///
/// Cloning shares the underlying store (`Arc`), so a collector can be
/// handed to a pool and finished by the caller.
#[derive(Debug, Clone)]
pub struct Collector {
    level: TraceLevel,
    store: Arc<Mutex<Vec<Vec<Event>>>>,
}

impl Collector {
    /// A collector recording at `level`.
    pub fn new(level: TraceLevel) -> Self {
        Collector {
            level,
            store: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A collector that records nothing.
    pub fn disabled() -> Self {
        Collector::new(TraceLevel::Off)
    }

    /// The recording level handed to new buffers.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// True when this collector keeps any records at all.
    pub fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// A fresh buffer for the logical unit `unit`, recording at the
    /// collector's level. Units should be unique per run (job ids
    /// are); the merge is still deterministic if they are not, but
    /// interleaved same-unit events sort by sequence number alone.
    pub fn buf(&self, unit: impl Into<String>) -> TraceBuf {
        TraceBuf::new(self.level, unit)
    }

    /// Absorbs a finished buffer: one short lock per buffer, never
    /// per event. Empty buffers are dropped without locking.
    pub fn absorb(&self, buf: TraceBuf) {
        if buf.is_empty() {
            return;
        }
        self.store
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(buf.into_events());
    }

    /// Absorbs events recorded by a *foreign* buffer — one that lived
    /// in another process (a transport worker) and crossed a wire —
    /// re-homing them under `unit` as if they had been recorded into
    /// a local [`TraceBuf`] of that unit: sequence numbers are
    /// reassigned densely, `path`s are recomputed from the span
    /// structure (a span's own start/end exclude its name, exactly
    /// like [`TraceBuf`]), and records below the collector's level
    /// are dropped. Callers feed each unit's events in one call, in a
    /// canonical order, so the merge stays deterministic; feeding the
    /// same unit twice would produce colliding sequence numbers.
    pub fn absorb_foreign(&self, unit: impl Into<String>, events: Vec<Event>) {
        if !self.enabled() || events.is_empty() {
            return;
        }
        let unit = unit.into();
        let spans = self.level >= TraceLevel::Spans;
        let costs = self.level >= TraceLevel::Costs;
        let points = self.level >= TraceLevel::Events;
        let mut seq = 0u64;
        let mut stack: Vec<String> = Vec::new();
        let mut kept: Vec<Event> = Vec::new();
        let keep = |e: Event, stack: &[String], seq: &mut u64, kept: &mut Vec<Event>| {
            kept.push(Event {
                unit: unit.clone(),
                seq: *seq,
                path: stack.join("/"),
                kind: e.kind,
                name: e.name,
                fields: e.fields,
            });
            *seq += 1;
        };
        for e in events {
            match e.kind {
                EventKind::SpanStart => {
                    let name = e.name.clone();
                    if spans {
                        keep(e, &stack, &mut seq, &mut kept);
                    }
                    stack.push(name);
                }
                EventKind::SpanEnd => {
                    stack.pop();
                    if spans {
                        keep(e, &stack, &mut seq, &mut kept);
                    }
                }
                EventKind::Counter | EventKind::Gauge => {
                    if costs {
                        keep(e, &stack, &mut seq, &mut kept);
                    }
                }
                EventKind::Point => {
                    if points {
                        keep(e, &stack, &mut seq, &mut kept);
                    }
                }
            }
        }
        if kept.is_empty() {
            return;
        }
        self.store
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(kept);
    }

    /// Merges everything absorbed so far into an ordered [`Trace`].
    ///
    /// Events sort by `(unit, seq, name)` — unit groups a job's
    /// records together, sequence preserves recording order inside a
    /// unit, and the name tiebreak makes even pathological duplicate
    /// `(unit, seq)` pairs order deterministically.
    pub fn finish(&self) -> Trace {
        let mut batches = self
            .store
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .split_off(0);
        let mut events: Vec<Event> = batches.drain(..).flatten().collect();
        events.sort_by(|a, b| {
            (a.unit.as_str(), a.seq, a.name.as_str()).cmp(&(
                b.unit.as_str(),
                b.seq,
                b.name.as_str(),
            ))
        });
        Trace {
            level: self.level,
            events,
        }
    }
}

/// The merged, immutable result of a traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    level: TraceLevel,
    events: Vec<Event>,
}

impl Trace {
    /// The level the trace was recorded at.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// The ordered events.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Streams every event through a sink and finishes it.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O errors.
    pub fn emit(&self, sink: &mut dyn Sink) -> std::io::Result<()> {
        for e in &self.events {
            sink.write_event(e)?;
        }
        sink.finish()
    }

    /// Writes the trace as JSONL, one event per line.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_jsonl(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        let mut sink = crate::sink::JsonlSink::new(w);
        self.emit(&mut sink)
    }

    /// The compact text summary (event/kind counts, counter totals).
    pub fn summary(&self) -> String {
        let mut sink = crate::sink::SummarySink::new();
        // SummarySink never fails: it only accumulates into memory.
        let _ = self.emit(&mut sink);
        sink.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::field;

    #[test]
    fn merge_is_deterministic_regardless_of_absorb_order() {
        let order_ab = Collector::new(TraceLevel::Events);
        let order_ba = Collector::new(TraceLevel::Events);
        let make = |c: &Collector, unit: &str, n: u64| {
            let mut b = c.buf(unit);
            for i in 0..n {
                b.event("x", vec![field("i", i)]);
            }
            b
        };
        let (a1, b1) = (make(&order_ab, "a", 3), make(&order_ab, "b", 2));
        order_ab.absorb(a1);
        order_ab.absorb(b1);
        let (a2, b2) = (make(&order_ba, "a", 3), make(&order_ba, "b", 2));
        order_ba.absorb(b2);
        order_ba.absorb(a2);
        assert_eq!(order_ab.finish().events(), order_ba.finish().events());
    }

    #[test]
    fn disabled_collector_stays_empty() {
        let c = Collector::disabled();
        assert!(!c.enabled());
        let mut b = c.buf("u");
        b.event("x", vec![]);
        b.counter("c", 1);
        c.absorb(b);
        assert!(c.finish().is_empty());
    }

    #[test]
    fn clones_share_the_store() {
        let c = Collector::new(TraceLevel::Events);
        let c2 = c.clone();
        let mut b = c2.buf("u");
        b.event("x", vec![]);
        c2.absorb(b);
        assert_eq!(c.finish().events().len(), 1);
    }

    #[test]
    fn absorb_foreign_rehomes_reseqs_and_repaths() {
        // Record into a worker-side buffer, strip it down to what a
        // wire crossing preserves, and check the collector rebuilds
        // unit/seq/path as if the events had been recorded locally.
        let mut remote = TraceBuf::new(TraceLevel::Events, "worker-local-name");
        remote.span_start("session", vec![field("n", 5u64)]);
        remote.counter("frames", 3);
        remote.event("routed", vec![]);
        remote.span_end("session", vec![]);
        let c = Collector::new(TraceLevel::Events);
        c.absorb_foreign("transport/worker:1", remote.into_events());
        let ev = c.finish();
        let ev = ev.events();
        assert_eq!(ev.len(), 4);
        assert!(ev.iter().all(|e| e.unit == "transport/worker:1"));
        assert_eq!(
            ev.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(ev[0].path, "");
        assert_eq!(ev[1].path, "session");
        assert_eq!(ev[2].path, "session");
        assert_eq!(ev[3].path, "");
    }

    #[test]
    fn absorb_foreign_filters_by_collector_level() {
        let mut remote = TraceBuf::new(TraceLevel::Events, "w");
        remote.span_start("session", vec![]);
        remote.counter("frames", 1);
        remote.event("routed", vec![]);
        remote.span_end("session", vec![]);
        let events = remote.into_events();

        let spans_only = Collector::new(TraceLevel::Spans);
        spans_only.absorb_foreign("transport/worker:0", events.clone());
        let t = spans_only.finish();
        assert_eq!(t.events().len(), 2);
        // Sequence numbers stay dense after filtering, mirroring a
        // local buffer recording at the same level.
        assert_eq!(t.events()[1].seq, 1);

        let off = Collector::disabled();
        off.absorb_foreign("transport/worker:0", events);
        assert!(off.finish().is_empty());
    }

    #[test]
    fn summary_renders_counts() {
        let c = Collector::new(TraceLevel::Events);
        let mut b = c.buf("u");
        b.counter("bits", 3);
        b.counter("bits", 2);
        b.event("broadcast", vec![]);
        c.absorb(b);
        let s = c.finish().summary();
        assert!(s.contains("bits"), "summary was: {s}");
        assert!(s.contains('5'), "summary was: {s}");
    }
}
