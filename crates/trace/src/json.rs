//! The JSONL codec for trace events: a hand-rolled writer (no
//! external deps) and a parser for the exact dialect the writer
//! emits, so traces round-trip — the property the determinism
//! proptests and the CI trace validator check.

use crate::event::{Event, EventKind, FieldValue};
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn string_literal(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

impl FieldValue {
    /// This value as a JSON literal. Unsigned and signed integers get
    /// distinct literals (`u:` has no sign, negative `Int`s do), but
    /// a non-negative `Int` and a `UInt` serialize identically — the
    /// parser resolves that ambiguity in favour of `UInt`, which is
    /// why [`parse_event`] documents value-level (not variant-level)
    /// round-tripping.
    pub fn to_json(&self) -> String {
        match self {
            FieldValue::Int(v) => v.to_string(),
            FieldValue::UInt(v) => v.to_string(),
            FieldValue::Float(v) => format!("{v:?}"),
            FieldValue::Bool(v) => v.to_string(),
            FieldValue::Str(v) => {
                let mut out = String::with_capacity(v.len() + 2);
                string_literal(&mut out, v);
                out
            }
        }
    }
}

/// Renders one event as a single-line JSON object with a fixed key
/// order (`unit`, `seq`, `path`, `kind`, `name`, `fields`).
pub fn event_to_json(e: &Event) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"unit\":");
    string_literal(&mut out, &e.unit);
    let _ = write!(out, ",\"seq\":{}", e.seq);
    out.push_str(",\"path\":");
    string_literal(&mut out, &e.path);
    out.push_str(",\"kind\":");
    string_literal(&mut out, e.kind.tag());
    out.push_str(",\"name\":");
    string_literal(&mut out, &e.name);
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in e.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        string_literal(&mut out, k);
        out.push(':');
        out.push_str(&v.to_json());
    }
    out.push_str("}}");
    out
}

/// A JSONL parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the line.
    pub at: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace JSONL parse error at byte {}: {}",
            self.at, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one line produced by [`event_to_json`].
///
/// Round-trip guarantee: `parse_event(event_to_json(e))` equals `e`
/// up to the `Int`/`UInt` representation of non-negative integers
/// (both serialize as bare digits; the parser yields `UInt`).
///
/// # Errors
///
/// Returns a [`ParseError`] on any structural deviation from the
/// writer's dialect.
pub fn parse_event(line: &str) -> Result<Event, ParseError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.expect_byte(b'{')?;
    let mut unit = None;
    let mut seq = None;
    let mut path = None;
    let mut kind = None;
    let mut name = None;
    let mut fields = None;
    loop {
        let key = p.parse_string()?;
        p.expect_byte(b':')?;
        match key.as_str() {
            "unit" => unit = Some(p.parse_string()?),
            "seq" => match p.parse_value()? {
                FieldValue::UInt(v) => seq = Some(v),
                other => return p.fail(format!("seq must be an unsigned integer, got {other:?}")),
            },
            "path" => path = Some(p.parse_string()?),
            "kind" => {
                let tag = p.parse_string()?;
                kind = Some(
                    EventKind::from_tag(&tag)
                        .ok_or_else(|| p.error(format!("unknown event kind {tag:?}")))?,
                );
            }
            "name" => name = Some(p.parse_string()?),
            "fields" => fields = Some(p.parse_fields()?),
            other => return p.fail(format!("unexpected key {other:?}")),
        }
        if !p.eat(b',') {
            break;
        }
    }
    p.expect_byte(b'}')?;
    p.end()?;
    let missing = |what: &str| ParseError {
        at: line.len(),
        message: format!("missing key {what:?}"),
    };
    Ok(Event {
        unit: unit.ok_or_else(|| missing("unit"))?,
        seq: seq.ok_or_else(|| missing("seq"))?,
        path: path.ok_or_else(|| missing("path"))?,
        kind: kind.ok_or_else(|| missing("kind"))?,
        name: name.ok_or_else(|| missing("name"))?,
        fields: fields.ok_or_else(|| missing("fields"))?,
    })
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: String) -> ParseError {
        ParseError {
            at: self.pos,
            message,
        }
    }

    fn fail<T>(&self, message: String) -> Result<T, ParseError> {
        Err(self.error(message))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.fail(format!(
                "expected {:?}, found {:?}",
                b as char,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn end(&self) -> Result<(), ParseError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            self.fail("trailing bytes after event object".to_string())
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.fail("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error(format!("bad \\u escape {hex:?}")))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid codepoint".to_string()))?,
                            );
                            self.pos += 3; // 4 hex digits minus the +1 below
                        }
                        other => {
                            return self.fail(format!("bad escape {:?}", other.map(|c| c as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8".to_string()))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.error("unterminated string".to_string()))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<FieldValue, ParseError> {
        match self.peek() {
            Some(b'"') => Ok(FieldValue::Str(self.parse_string()?)),
            Some(b't') => self.keyword("true", FieldValue::Bool(true)),
            Some(b'f') => self.keyword("false", FieldValue::Bool(false)),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => self.fail(format!(
                "expected a value, found {:?}",
                other.map(|c| c as char)
            )),
        }
    }

    fn keyword(&mut self, word: &str, value: FieldValue) -> Result<FieldValue, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.fail(format!("expected {word:?}"))
        }
    }

    fn parse_number(&mut self) -> Result<FieldValue, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number bytes".to_string()))?;
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.error(format!("bad float literal {text:?}")))?;
            Ok(FieldValue::Float(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(FieldValue::UInt(v))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(FieldValue::Int(v))
        } else {
            self.fail(format!("integer out of range: {text:?}"))
        }
    }

    fn parse_fields(&mut self) -> Result<Vec<(String, FieldValue)>, ParseError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        if self.eat(b'}') {
            return Ok(fields);
        }
        loop {
            let key = self.parse_string()?;
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            if !self.eat(b',') {
                break;
            }
        }
        self.expect_byte(b'}')?;
        Ok(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::field;

    fn sample() -> Event {
        Event {
            unit: "e1/n=27 t=0 \"quoted\"".into(),
            seq: 12,
            path: "round=3/node=7".into(),
            kind: EventKind::Point,
            name: "broadcast".into(),
            fields: vec![
                field("bit", true),
                field("n", 27usize),
                field("delta", -4i64),
                field("err", 0.25),
                field("label", "a\nb"),
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let e = sample();
        let parsed = parse_event(&event_to_json(&e)).unwrap();
        assert_eq!(parsed, e);
    }

    #[test]
    fn integral_floats_keep_their_point() {
        let mut e = sample();
        e.fields = vec![field("x", 2.0f64)];
        let json = event_to_json(&e);
        assert!(json.contains("\"x\":2.0"), "json: {json}");
        assert_eq!(
            parse_event(&json).unwrap().fields[0].1,
            FieldValue::Float(2.0)
        );
    }

    #[test]
    fn empty_fields_parse() {
        let mut e = sample();
        e.fields.clear();
        assert_eq!(parse_event(&event_to_json(&e)).unwrap(), e);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_event("not json").is_err());
        assert!(parse_event("{\"unit\":\"u\"}").is_err(), "missing keys");
        assert!(parse_event(&(event_to_json(&sample()) + "x")).is_err());
    }

    #[test]
    fn negative_and_large_integers() {
        let mut e = sample();
        e.fields = vec![field("a", i64::MIN), field("b", u64::MAX)];
        let parsed = parse_event(&event_to_json(&e)).unwrap();
        assert_eq!(parsed.fields[0].1, FieldValue::Int(i64::MIN));
        assert_eq!(parsed.fields[1].1, FieldValue::UInt(u64::MAX));
    }
}
