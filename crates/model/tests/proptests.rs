//! Property-based tests for the BCC(b) model invariants.

use bcc_graphs::{generators, Graph};
use bcc_model::testing::{ConstantDecision, EchoBit, IdBroadcast};
use bcc_model::{runs_indistinguishable, Instance, Message, SimConfig, Symbol};
use proptest::prelude::*;

fn arb_cycle_graph() -> impl Strategy<Value = Graph> {
    (3usize..12).prop_map(generators::cycle)
}

mod permuted {
    //! A conforming-but-adversarial transport: delivers the right
    //! message multiset to every node, in an order scrambled by a
    //! seeded xorshift. The driver's canonicalization must make runs
    //! over it indistinguishable from the `LocalTransport` oracle.

    use bcc_model::transport::{
        LocalTransport, RoundView, Routes, Transport, TransportError, TransportFactory,
    };
    use bcc_model::Message;

    pub struct PermutingTransport {
        inner: LocalTransport,
        state: u64,
    }

    impl PermutingTransport {
        fn next(&mut self) -> u64 {
            // xorshift64: deterministic, seedable, dependency-free.
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x
        }
    }

    impl Transport for PermutingTransport {
        fn open(&mut self, routes: &Routes) -> Result<(), TransportError> {
            self.inner.open(routes)
        }

        fn exchange(
            &mut self,
            round: usize,
            outbox: &[Message],
        ) -> Result<RoundView, TransportError> {
            let view = self.inner.exchange(round, outbox)?;
            let mut inboxes = view.into_inboxes();
            for inbox in &mut inboxes {
                // Fisher–Yates with the xorshift stream.
                for i in (1..inbox.len()).rev() {
                    let j = (self.next() % (i as u64 + 1)) as usize;
                    inbox.swap(i, j);
                }
            }
            Ok(RoundView::new(inboxes))
        }
    }

    pub struct PermutingFactory {
        pub seed: u64,
    }

    impl TransportFactory for PermutingFactory {
        fn create(&self) -> Box<dyn Transport> {
            Box::new(PermutingTransport {
                inner: LocalTransport::new(),
                // xorshift needs a nonzero state.
                state: self.seed | 1,
            })
        }

        fn label(&self) -> String {
            "permuting".to_string()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The wiring of any seeded KT-0 network is a consistent double
    /// permutation: peer_of ∘ port_of = identity, no self-loops, every
    /// peer appears exactly once.
    #[test]
    fn kt0_wiring_consistency(n in 2usize..20, seed in any::<u64>()) {
        // Networks are built through `Instance`; an edgeless input
        // graph keeps the wiring the only thing under test.
        let inst = Instance::new_kt0(Graph::new(n), seed).unwrap();
        let net = inst.network();
        for v in 0..n {
            let mut seen = std::collections::HashSet::new();
            for p in 0..n - 1 {
                let w = net.peer_of(v, p);
                prop_assert_ne!(w, v);
                prop_assert!(seen.insert(w));
                prop_assert_eq!(net.port_of(v, w), p);
            }
        }
    }

    /// KT-1 labels are exactly the peer IDs for arbitrary ID sets.
    #[test]
    fn kt1_labels_are_ids(ids in proptest::collection::hash_set(any::<u64>(), 2..12)) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let n = ids.len();
        let inst = Instance::new_kt1_with_ids(Graph::new(n), ids.clone()).unwrap();
        let net = inst.network();
        for v in 0..n {
            for p in 0..n - 1 {
                prop_assert_eq!(net.port_label(v, p), ids[net.peer_of(v, p)]);
            }
        }
    }

    /// Simulation is deterministic: same instance, same algorithm,
    /// same coin → indistinguishable runs.
    #[test]
    fn simulation_deterministic(g in arb_cycle_graph(), seed in any::<u64>(), coin in any::<u64>()) {
        let inst = Instance::new_kt0(g, seed).unwrap();
        let a = SimConfig::bcc1(5).run(&inst, &EchoBit, coin);
        let b = SimConfig::bcc1(5).run(&inst, &EchoBit, coin);
        prop_assert!(runs_indistinguishable(&a, &b));
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Every vertex's initial knowledge reports exactly its input
    /// degree, and labels are within range.
    #[test]
    fn initial_knowledge_consistent(g in arb_cycle_graph(), seed in any::<u64>()) {
        let n = g.num_vertices();
        let inst = Instance::new_kt0(g.clone(), seed).unwrap();
        for v in 0..n {
            let ik = inst.initial_knowledge(v, 1, 0);
            prop_assert_eq!(ik.input_degree(), g.degree(v));
            for &l in &ik.input_port_labels {
                prop_assert!((1..n as u64).contains(&l));
            }
            prop_assert_eq!(ik.port_labels.len(), n - 1);
        }
    }

    /// Message stats: EchoBit broadcasts exactly one bit per vertex per
    /// round; messages delivered = rounds·n·(n−1).
    #[test]
    fn stats_accounting(g in arb_cycle_graph(), t in 1usize..6) {
        let n = g.num_vertices();
        let inst = Instance::new_kt1(g).unwrap();
        let out = SimConfig::bcc1(t).run(&inst, &EchoBit, 0);
        prop_assert_eq!(out.stats().rounds, t);
        prop_assert_eq!(out.stats().bits_broadcast, t * n);
        prop_assert_eq!(out.stats().messages_delivered, t * n * (n - 1));
    }

    /// System decision rule: YES iff all vertices vote YES.
    #[test]
    fn system_decision_rule(g in arb_cycle_graph()) {
        let inst = Instance::new_kt1(g).unwrap();
        let yes = SimConfig::bcc1(1).run(&inst, &ConstantDecision::yes(), 0);
        prop_assert_eq!(yes.system_decision(), bcc_model::Decision::Yes);
        let no = SimConfig::bcc1(1).run(&inst, &ConstantDecision::no(), 0);
        prop_assert_eq!(no.system_decision(), bcc_model::Decision::No);
    }

    /// IdBroadcast terminates in exactly ⌈log₂ n⌉ rounds regardless of
    /// wiring, and completes.
    #[test]
    fn id_broadcast_rounds(n in 3usize..20, seed in any::<u64>()) {
        let inst = Instance::new_kt0(generators::cycle(n), seed).unwrap();
        let out = SimConfig::bcc1(100).run(&inst, &IdBroadcast::new(), 0);
        prop_assert!(out.completed());
        prop_assert_eq!(out.stats().rounds, bcc_model::codec::bits_needed(n));
    }

    /// Inbox-ordering guarantee (DESIGN.md §14): a transport that
    /// delivers each node's messages in a permuted order still yields
    /// the canonical port-ordered `Inbox` after the driver
    /// canonicalizes — outcome, stats, transcripts, and views all pin
    /// to the `LocalTransport` oracle. (`SocketTransport` is pinned
    /// against the same oracle in `crates/transport`.)
    #[test]
    fn permuted_delivery_yields_canonical_inboxes(
        g in arb_cycle_graph(),
        wiring in any::<u64>(),
        perm_seed in any::<u64>(),
        coin in any::<u64>(),
    ) {
        let inst = Instance::new_kt0(g, wiring).unwrap();
        let oracle = SimConfig::bcc1(4).run(&inst, &EchoBit, coin);
        let permuted = SimConfig::bcc1(4)
            .transport(std::sync::Arc::new(permuted::PermutingFactory { seed: perm_seed }))
            .run(&inst, &EchoBit, coin);
        prop_assert_eq!(oracle.decisions(), permuted.decisions());
        prop_assert_eq!(oracle.stats(), permuted.stats());
        prop_assert!(runs_indistinguishable(&oracle, &permuted));
        for v in 0..inst.num_vertices() {
            prop_assert_eq!(oracle.transcript(v), permuted.transcript(v));
        }
    }

    /// Codec roundtrip for arbitrary values and widths.
    #[test]
    fn codec_roundtrip(value in any::<u64>(), width in 1usize..64) {
        let v = value & ((1u64 << width) - 1);
        let bits = bcc_model::codec::u64_to_bits(v, width);
        prop_assert_eq!(bcc_model::codec::bits_to_u64(&bits), v);
    }

    /// Message bit packing roundtrips.
    #[test]
    fn message_roundtrip(value in any::<u64>(), width in 1usize..32) {
        let v = value & ((1u64 << width) - 1);
        let m = Message::from_bits(v, width);
        prop_assert_eq!(m.to_bits(), Some(v));
        prop_assert_eq!(m.len(), width);
        prop_assert!(!m.symbols().contains(&Symbol::Silent));
    }
}
