//! Property-based tests for the BCC(b) model invariants.

use bcc_graphs::{generators, Graph};
use bcc_model::testing::{ConstantDecision, EchoBit, IdBroadcast};
use bcc_model::{runs_indistinguishable, Instance, Message, Network, SimConfig, Symbol};
use proptest::prelude::*;

fn arb_cycle_graph() -> impl Strategy<Value = Graph> {
    (3usize..12).prop_map(generators::cycle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The wiring of any seeded KT-0 network is a consistent double
    /// permutation: peer_of ∘ port_of = identity, no self-loops, every
    /// peer appears exactly once.
    #[test]
    fn kt0_wiring_consistency(n in 2usize..20, seed in any::<u64>()) {
        let net = Network::kt0_seeded((0..n as u64).collect(), seed).unwrap();
        for v in 0..n {
            let mut seen = std::collections::HashSet::new();
            for p in 0..n - 1 {
                let w = net.peer_of(v, p);
                prop_assert_ne!(w, v);
                prop_assert!(seen.insert(w));
                prop_assert_eq!(net.port_of(v, w), p);
            }
        }
    }

    /// KT-1 labels are exactly the peer IDs for arbitrary ID sets.
    #[test]
    fn kt1_labels_are_ids(ids in proptest::collection::hash_set(any::<u64>(), 2..12)) {
        let ids: Vec<u64> = ids.into_iter().collect();
        let n = ids.len();
        let net = Network::kt1(ids.clone()).unwrap();
        for v in 0..n {
            for p in 0..n - 1 {
                prop_assert_eq!(net.port_label(v, p), ids[net.peer_of(v, p)]);
            }
        }
    }

    /// Simulation is deterministic: same instance, same algorithm,
    /// same coin → indistinguishable runs.
    #[test]
    fn simulation_deterministic(g in arb_cycle_graph(), seed in any::<u64>(), coin in any::<u64>()) {
        let inst = Instance::new_kt0(g, seed).unwrap();
        let a = SimConfig::bcc1(5).run(&inst, &EchoBit, coin);
        let b = SimConfig::bcc1(5).run(&inst, &EchoBit, coin);
        prop_assert!(runs_indistinguishable(&a, &b));
        prop_assert_eq!(a.stats(), b.stats());
    }

    /// Every vertex's initial knowledge reports exactly its input
    /// degree, and labels are within range.
    #[test]
    fn initial_knowledge_consistent(g in arb_cycle_graph(), seed in any::<u64>()) {
        let n = g.num_vertices();
        let inst = Instance::new_kt0(g.clone(), seed).unwrap();
        for v in 0..n {
            let ik = inst.initial_knowledge(v, 1, 0);
            prop_assert_eq!(ik.input_degree(), g.degree(v));
            for &l in &ik.input_port_labels {
                prop_assert!((1..n as u64).contains(&l));
            }
            prop_assert_eq!(ik.port_labels.len(), n - 1);
        }
    }

    /// Message stats: EchoBit broadcasts exactly one bit per vertex per
    /// round; messages delivered = rounds·n·(n−1).
    #[test]
    fn stats_accounting(g in arb_cycle_graph(), t in 1usize..6) {
        let n = g.num_vertices();
        let inst = Instance::new_kt1(g).unwrap();
        let out = SimConfig::bcc1(t).run(&inst, &EchoBit, 0);
        prop_assert_eq!(out.stats().rounds, t);
        prop_assert_eq!(out.stats().bits_broadcast, t * n);
        prop_assert_eq!(out.stats().messages_delivered, t * n * (n - 1));
    }

    /// System decision rule: YES iff all vertices vote YES.
    #[test]
    fn system_decision_rule(g in arb_cycle_graph()) {
        let inst = Instance::new_kt1(g).unwrap();
        let yes = SimConfig::bcc1(1).run(&inst, &ConstantDecision::yes(), 0);
        prop_assert_eq!(yes.system_decision(), bcc_model::Decision::Yes);
        let no = SimConfig::bcc1(1).run(&inst, &ConstantDecision::no(), 0);
        prop_assert_eq!(no.system_decision(), bcc_model::Decision::No);
    }

    /// IdBroadcast terminates in exactly ⌈log₂ n⌉ rounds regardless of
    /// wiring, and completes.
    #[test]
    fn id_broadcast_rounds(n in 3usize..20, seed in any::<u64>()) {
        let inst = Instance::new_kt0(generators::cycle(n), seed).unwrap();
        let out = SimConfig::bcc1(100).run(&inst, &IdBroadcast::new(), 0);
        prop_assert!(out.completed());
        prop_assert_eq!(out.stats().rounds, bcc_model::codec::bits_needed(n));
    }

    /// Codec roundtrip for arbitrary values and widths.
    #[test]
    fn codec_roundtrip(value in any::<u64>(), width in 1usize..64) {
        let v = value & ((1u64 << width) - 1);
        let bits = bcc_model::codec::u64_to_bits(v, width);
        prop_assert_eq!(bcc_model::codec::bits_to_u64(&bits), v);
    }

    /// Message bit packing roundtrips.
    #[test]
    fn message_roundtrip(value in any::<u64>(), width in 1usize..32) {
        let v = value & ((1u64 << width) - 1);
        let m = Message::from_bits(v, width);
        prop_assert_eq!(m.to_bits(), Some(v));
        prop_assert_eq!(m.len(), width);
        prop_assert!(!m.symbols().contains(&Symbol::Silent));
    }
}
