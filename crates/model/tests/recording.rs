//! Behavioural contract of `SimConfig::transcripts(false)`: identical
//! decisions and stats, no recorded state.

use bcc_graphs::generators;
use bcc_model::testing::{EchoBit, IdBroadcast};
use bcc_model::{Instance, SimConfig};

#[test]
fn recording_off_preserves_semantics() {
    let inst = Instance::new_kt0(generators::cycle(10), 3).unwrap();
    let on = SimConfig::bcc1(6).run(&inst, &EchoBit, 1);
    let off = SimConfig::bcc1(6)
        .transcripts(false)
        .run(&inst, &EchoBit, 1);
    assert_eq!(on.decisions(), off.decisions());
    assert_eq!(on.stats(), off.stats());
    assert_eq!(on.completed(), off.completed());
}

#[test]
fn recording_off_yields_empty_records() {
    let inst = Instance::new_kt1(generators::cycle(6)).unwrap();
    let off = SimConfig::bcc1(3)
        .transcripts(false)
        .run(&inst, &IdBroadcast::new(), 0);
    assert!(off.views().is_empty());
    for v in 0..6 {
        assert_eq!(off.transcript(v).rounds(), 0);
    }
}

#[test]
fn recording_on_by_default() {
    let inst = Instance::new_kt1(generators::cycle(6)).unwrap();
    let on = SimConfig::bcc1(3).run(&inst, &IdBroadcast::new(), 0);
    assert_eq!(on.views().len(), 6);
    assert_eq!(on.transcript(0).rounds(), 3);
    assert_eq!(on.transcript(0).received.len(), 3);
    assert_eq!(on.transcript(0).received[0].len(), 5);
}
