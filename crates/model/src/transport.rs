//! The round-delivery surface of the model: who hands round-`r`
//! broadcasts to whom.
//!
//! The paper's model is communication-first — every bound is stated
//! in bits broadcast per round on the clique — so delivery is an
//! explicit, swappable API rather than a loop buried in the
//! simulator. A [`Transport`] receives the full per-round outbox
//! (one [`Message`] per vertex, already bandwidth-normalized) and
//! returns a [`RoundView`]: for every vertex, its `(port label,
//! message)` pairs. The driver — scalar simulator or the batched
//! engine — owns *all* accounting (trace spans, `sim.*` metrics,
//! transcripts); a transport only moves symbols. That split is what
//! makes a multi-process socket run byte-identical to the in-process
//! oracle: observability never crosses the wire, so there is nothing
//! wall-clock-shaped to diverge (DESIGN.md §14).
//!
//! Determinism contract, in order of obligation:
//!
//! 1. `exchange` is a pure function of `(routes, outbox)` — same
//!    inputs, same `RoundView`, across processes and runs.
//! 2. Message *multiset* per vertex is fixed by the routes; delivery
//!    *order* inside a vertex's inbox is the transport's own. The
//!    driver canonicalizes with [`RoundView::canonicalized`] (stable
//!    sort by port label) before programs see an `Inbox`, so a
//!    transport that permutes entries is still conforming.
//! 3. Failure is a typed [`TransportError`], never a panic: a dead
//!    worker surfaces as [`TransportError::WorkerDead`] and the run
//!    degrades (see `SimConfig::try_run`).

use crate::network::Network;
use crate::postmortem::{Postmortem, TransportHealth};
use crate::symbol::Message;
use bcc_metrics::MetricsHub;
use bcc_trace::Collector;
use std::fmt;
use std::sync::{Arc, RwLock};

/// A delivery failure. Every variant is a condition the driver can
/// report and degrade on; transports must never panic on I/O or
/// protocol trouble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Worker processes could not be launched or connected.
    Spawn {
        /// Human-readable cause (exec error, handshake timeout, …).
        detail: String,
    },
    /// A worker died or stopped responding mid-run.
    WorkerDead {
        /// The rank of the dead worker.
        rank: usize,
        /// Human-readable cause (EOF, read timeout, exit status, …).
        detail: String,
        /// Flight-recorder dump frozen when the failure fired; `None`
        /// for backends without a recorder. Boxed to keep the happy
        /// path's error size small.
        postmortem: Option<Box<Postmortem>>,
    },
    /// The transport was driven outside its contract or answered
    /// outside the wire protocol (wrong shape, bad handshake, use
    /// before `open`).
    Protocol {
        /// Human-readable cause.
        detail: String,
        /// Flight-recorder dump frozen when the failure fired; `None`
        /// for backends without a recorder.
        postmortem: Option<Box<Postmortem>>,
    },
}

impl TransportError {
    /// The flight-recorder dump attached to this error, if any.
    pub fn postmortem(&self) -> Option<&Postmortem> {
        match self {
            TransportError::Spawn { .. } => None,
            TransportError::WorkerDead { postmortem, .. }
            | TransportError::Protocol { postmortem, .. } => postmortem.as_deref(),
        }
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Spawn { detail } => {
                write!(f, "transport spawn failed: {detail}")
            }
            TransportError::WorkerDead { rank, detail, .. } => {
                write!(f, "transport worker {rank} died: {detail}")
            }
            TransportError::Protocol { detail, .. } => {
                write!(f, "transport protocol violation: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// The delivery plan of one instance: for every vertex `v` and port
/// `p`, the label the vertex sees on that port and the peer whose
/// broadcast arrives there. A `Routes` is the *only* topology a
/// transport receives — workers never reconstruct a [`Network`], so
/// the wire format is a plain table and network construction stays
/// private to this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routes {
    /// `ports[v][p] = (port_label, peer)` in port-index order.
    ports: Vec<Vec<(u64, usize)>>,
}

impl Routes {
    /// Extracts the delivery plan of a network.
    pub fn of(network: &Network) -> Routes {
        let n = network.num_vertices();
        Routes {
            ports: (0..n)
                .map(|v| {
                    (0..n.saturating_sub(1))
                        .map(|p| (network.port_label(v, p), network.peer_of(v, p)))
                        .collect()
                })
                .collect(),
        }
    }

    /// Builds a plan from a raw port table (`ports[v][p] =
    /// (port_label, peer)`). Used by transports that reconstruct the
    /// plan from the wire; peers must index into `0..ports.len()`.
    pub fn from_ports(ports: Vec<Vec<(u64, usize)>>) -> Routes {
        Routes { ports }
    }

    /// Number of vertices in the plan.
    pub fn num_nodes(&self) -> usize {
        self.ports.len()
    }

    /// The `(port_label, peer)` pairs of vertex `v` in port-index
    /// order; empty when `v` is out of range.
    pub fn ports(&self, v: usize) -> &[(u64, usize)] {
        self.ports.get(v).map_or(&[], Vec::as_slice)
    }
}

/// One round's delivery result: for every vertex, its `(port label,
/// message)` pairs. Produced by [`Transport::exchange`]; the driver
/// canonicalizes it before building an `Inbox`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundView {
    inboxes: Vec<Vec<(u64, Message)>>,
}

impl RoundView {
    /// Wraps per-vertex inbox entries (vertex order).
    pub fn new(inboxes: Vec<Vec<(u64, Message)>>) -> RoundView {
        RoundView { inboxes }
    }

    /// Number of vertices covered.
    pub fn num_nodes(&self) -> usize {
        self.inboxes.len()
    }

    /// The entries of vertex `v`; empty when out of range.
    pub fn inbox(&self, v: usize) -> &[(u64, Message)] {
        self.inboxes.get(v).map_or(&[], Vec::as_slice)
    }

    /// Consumes the view into its per-vertex entries.
    pub fn into_inboxes(self) -> Vec<Vec<(u64, Message)>> {
        self.inboxes
    }

    /// The canonical form: every vertex's entries stable-sorted by
    /// port label. For every constructible [`Network`] this equals
    /// port-index order (KT-1 ports are sorted by increasing peer ID;
    /// KT-0 labels are `p+1`), so canonicalization is a behavioral
    /// no-op for conforming transports — and the normative step that
    /// makes a permuting transport conforming too.
    #[must_use]
    pub fn canonicalized(mut self) -> RoundView {
        for inbox in &mut self.inboxes {
            inbox.sort_by_key(|&(label, _)| label);
        }
        self
    }
}

/// A round-delivery backend. Drivers call [`open`](Self::open) once
/// per run with the instance's [`Routes`], then
/// [`exchange`](Self::exchange) once per round, then
/// [`barrier`](Self::barrier) after the last round and
/// [`teardown`](Self::teardown) when the transport is dropped from
/// service. See the module docs for the determinism contract.
pub trait Transport {
    /// Binds the transport to one instance's delivery plan. Called
    /// exactly once before the first `exchange`.
    fn open(&mut self, routes: &Routes) -> Result<(), TransportError>;

    /// Delivers round `round`: `outbox[v]` is vertex `v`'s broadcast,
    /// already normalized to the configured bandwidth. Returns every
    /// vertex's `(port label, message)` entries.
    fn exchange(&mut self, round: usize, outbox: &[Message]) -> Result<RoundView, TransportError>;

    /// Quiesces the transport after the final round: a conforming
    /// implementation returns only once every in-flight delivery of
    /// this run has been acknowledged.
    fn barrier(&mut self) -> Result<(), TransportError> {
        Ok(())
    }

    /// Releases resources; best-effort, never fails.
    fn teardown(&mut self) {}
}

/// Builds [`Transport`] instances for runs. Factories are shared
/// (`Arc<dyn TransportFactory>`) between the scalar simulator, the
/// batched engine (one transport per lane), and the process-wide
/// default installed by `--transport`.
pub trait TransportFactory: Send + Sync {
    /// Creates a fresh transport for one run (or one lane).
    /// Infallible by design: backends whose setup can fail return a
    /// transport whose `open` reports the stored error.
    fn create(&self) -> Box<dyn Transport>;

    /// A short human-readable tag (`"local"`, `"sockets:4"`).
    fn label(&self) -> String;

    /// Drains any cross-process telemetry the factory has accumulated
    /// (worker-origin trace spans and `transport.*` counters) into the
    /// run's shared sinks, in rank order. Backends without workers
    /// have nothing to flush. Callers must flush at most once per
    /// collector lifetime — foreign events are re-sequenced per call,
    /// so a second flush into the same collector would collide.
    fn flush_telemetry(&self, _collector: &Collector, _hub: &MetricsHub) {}

    /// Live per-worker health (no flight rings), for observation
    /// surfaces such as `bcc-serve`'s `observe` snapshots. `None` for
    /// backends without workers.
    fn health(&self) -> Option<TransportHealth> {
        None
    }

    /// Drains the postmortems recorded by this factory's flight
    /// recorder since the last call (empty for backends without one).
    fn take_postmortems(&self) -> Vec<Postmortem> {
        Vec::new()
    }

    /// Wall-clock-ish transport counters (accept retries, spawns,
    /// respawns, …) for the `--transport-wall` sidecar. Never merged
    /// into deterministic artifacts.
    fn wall_stats(&self) -> Vec<(String, u64)> {
        Vec::new()
    }
}

/// The in-process oracle: delivers straight out of the outbox slice
/// by the routes table. This is the extracted form of the historical
/// simulator loop and the reference every other backend is pinned
/// against — byte-identical traces, metrics, and outcomes.
#[derive(Debug, Clone, Default)]
pub struct LocalTransport {
    routes: Option<Routes>,
}

impl LocalTransport {
    /// A transport awaiting `open`.
    pub fn new() -> LocalTransport {
        LocalTransport { routes: None }
    }
}

impl Transport for LocalTransport {
    fn open(&mut self, routes: &Routes) -> Result<(), TransportError> {
        self.routes = Some(routes.clone());
        Ok(())
    }

    fn exchange(&mut self, _round: usize, outbox: &[Message]) -> Result<RoundView, TransportError> {
        let routes = self
            .routes
            .as_ref()
            .ok_or_else(|| TransportError::Protocol {
                detail: "exchange before open".to_string(),
                postmortem: None,
            })?;
        let n = routes.num_nodes();
        if outbox.len() != n {
            return Err(TransportError::Protocol {
                detail: format!("outbox has {} entries for {n} nodes", outbox.len()),
                postmortem: None,
            });
        }
        Ok(RoundView::new(
            (0..n)
                .map(|v| {
                    routes
                        .ports(v)
                        .iter()
                        .map(|&(label, peer)| (label, outbox[peer].clone()))
                        .collect()
                })
                .collect(),
        ))
    }
}

/// Factory for [`LocalTransport`] — the process-wide default when
/// nothing else is installed.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalFactory;

impl TransportFactory for LocalFactory {
    fn create(&self) -> Box<dyn Transport> {
        Box::new(LocalTransport::new())
    }

    fn label(&self) -> String {
        "local".to_string()
    }
}

/// A parsed `--transport` selector. The model crate only defines the
/// vocabulary; `bcc-transport` maps a spec to a concrete factory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportSpec {
    /// In-process delivery ([`LocalTransport`]).
    Local,
    /// `N` worker subprocesses over loopback TCP, each owning a
    /// contiguous node range.
    Sockets(usize),
}

impl TransportSpec {
    /// Parses `"local"` or `"sockets:N"` (N ≥ 1).
    ///
    /// # Errors
    ///
    /// Returns a usage message for anything else.
    pub fn parse(s: &str) -> Result<TransportSpec, String> {
        if s == "local" {
            return Ok(TransportSpec::Local);
        }
        if let Some(n) = s.strip_prefix("sockets:") {
            let workers: usize = n
                .parse()
                .map_err(|_| format!("--transport sockets:N needs a count, got {n:?}"))?;
            if workers == 0 {
                return Err("--transport sockets:N needs N >= 1".to_string());
            }
            return Ok(TransportSpec::Sockets(workers));
        }
        Err(format!(
            "unknown transport {s:?} (expected local or sockets:N)"
        ))
    }
}

impl fmt::Display for TransportSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportSpec::Local => write!(f, "local"),
            TransportSpec::Sockets(n) => write!(f, "sockets:{n}"),
        }
    }
}

static DEFAULT_FACTORY: RwLock<Option<Arc<dyn TransportFactory>>> = RwLock::new(None);

/// Installs the process-wide default transport factory, used by every
/// run whose `SimConfig` has no explicit transport. `--transport`
/// flags funnel here (via `bcc_transport::install`).
pub fn set_default_factory(factory: Arc<dyn TransportFactory>) {
    let mut slot = DEFAULT_FACTORY.write().unwrap_or_else(|e| e.into_inner());
    *slot = Some(factory);
}

/// Clears the process-wide default back to [`LocalFactory`].
pub fn reset_default_factory() {
    let mut slot = DEFAULT_FACTORY.write().unwrap_or_else(|e| e.into_inner());
    *slot = None;
}

/// The process-wide default factory: whatever
/// [`set_default_factory`] installed, else [`LocalFactory`].
pub fn default_factory() -> Arc<dyn TransportFactory> {
    let slot = DEFAULT_FACTORY.read().unwrap_or_else(|e| e.into_inner());
    match slot.as_ref() {
        Some(f) => Arc::clone(f),
        None => Arc::new(LocalFactory),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::symbol::Symbol;
    use bcc_graphs::generators;

    fn msg(bit: u8) -> Message {
        Message::single(if bit == 0 { Symbol::Zero } else { Symbol::One })
    }

    #[test]
    fn local_transport_delivers_by_routes() {
        let i = Instance::new_kt1(generators::cycle(4)).unwrap();
        let routes = Routes::of(i.network());
        assert_eq!(routes.num_nodes(), 4);
        let mut t = LocalTransport::new();
        t.open(&routes).unwrap();
        let outbox: Vec<Message> = (0..4).map(|v| msg((v % 2) as u8)).collect();
        let view = t.exchange(0, &outbox).unwrap();
        assert_eq!(view.num_nodes(), 4);
        for v in 0..4 {
            let entries = view.inbox(v);
            assert_eq!(entries.len(), 3);
            for (i, &(label, ref m)) in entries.iter().enumerate() {
                let (want_label, peer) = routes.ports(v)[i];
                assert_eq!(label, want_label);
                assert_eq!(*m, outbox[peer]);
            }
        }
        t.barrier().unwrap();
        t.teardown();
    }

    #[test]
    fn exchange_before_open_is_typed_error() {
        let mut t = LocalTransport::new();
        let err = t.exchange(0, &[]).unwrap_err();
        assert!(matches!(err, TransportError::Protocol { .. }));
        assert!(err.to_string().contains("protocol"));
    }

    #[test]
    fn wrong_outbox_shape_is_typed_error() {
        let i = Instance::new_kt1(generators::cycle(3)).unwrap();
        let mut t = LocalTransport::new();
        t.open(&Routes::of(i.network())).unwrap();
        let err = t.exchange(0, &[Message::silent(1)]).unwrap_err();
        assert!(matches!(err, TransportError::Protocol { .. }));
    }

    #[test]
    fn canonicalized_sorts_each_inbox_by_label() {
        let view = RoundView::new(vec![
            vec![(3, msg(1)), (1, msg(0)), (2, msg(1))],
            vec![(5, msg(0)), (4, msg(0))],
        ]);
        let canon = view.canonicalized();
        assert_eq!(
            canon.inbox(0).iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(
            canon.inbox(1).iter().map(|e| e.0).collect::<Vec<_>>(),
            vec![4, 5]
        );
    }

    #[test]
    fn canonicalization_is_noop_on_constructible_networks() {
        for inst in [
            Instance::new_kt1(generators::cycle(6)).unwrap(),
            Instance::new_kt0(generators::two_cycles(3, 3), 7).unwrap(),
        ] {
            let routes = Routes::of(inst.network());
            let mut t = LocalTransport::new();
            t.open(&routes).unwrap();
            let outbox: Vec<Message> = (0..routes.num_nodes()).map(|_| msg(1)).collect();
            let view = t.exchange(0, &outbox).unwrap();
            assert_eq!(view.clone().canonicalized(), view);
        }
    }

    #[test]
    fn spec_parse_and_display_round_trip() {
        assert_eq!(TransportSpec::parse("local"), Ok(TransportSpec::Local));
        assert_eq!(
            TransportSpec::parse("sockets:4"),
            Ok(TransportSpec::Sockets(4))
        );
        assert_eq!(TransportSpec::Sockets(2).to_string(), "sockets:2");
        assert_eq!(TransportSpec::Local.to_string(), "local");
        assert!(TransportSpec::parse("sockets:0").is_err());
        assert!(TransportSpec::parse("sockets:x").is_err());
        assert!(TransportSpec::parse("carrier-pigeon").is_err());
    }

    #[test]
    fn default_factory_falls_back_to_local() {
        // Not exercised concurrently with installs: the suite never
        // installs a default inside the model crate's own tests.
        assert_eq!(default_factory().label(), "local");
    }

    #[test]
    fn error_display_names_the_failure() {
        let e = TransportError::WorkerDead {
            rank: 1,
            detail: "EOF".to_string(),
            postmortem: None,
        };
        assert!(e.postmortem().is_none());
        assert_eq!(e.to_string(), "transport worker 1 died: EOF");
        let s = TransportError::Spawn {
            detail: "no exe".to_string(),
        };
        assert!(s.to_string().contains("spawn"));
    }
}
