//! The synchronous executor and the per-vertex state it records.

use crate::error::ModelError;
use crate::instance::Instance;
use crate::program::{Algorithm, Decision, Inbox};
use crate::symbol::Message;
use crate::transport::{default_factory, Routes, Transport, TransportError, TransportFactory};
use bcc_metrics::MetricScope;
use bcc_trace::{field, TraceBuf, TraceLevel, TraceScope};
use std::fmt;
use std::sync::Arc;

/// The full communication record of one vertex: what it broadcast and
/// what it received on each port, round by round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transcript {
    /// Messages broadcast by this vertex, one per executed round.
    pub sent: Vec<Message>,
    /// Messages received, `received[round]` = `(port label, message)`
    /// pairs in port-index order.
    pub received: Vec<Vec<(u64, Message)>>,
}

impl Transcript {
    /// Rounds recorded.
    pub fn rounds(&self) -> usize {
        self.sent.len()
    }

    /// The sent messages as a display string (one row per round).
    pub fn sent_string(&self) -> String {
        self.sent
            .iter()
            .map(Message::to_string)
            .collect::<Vec<_>>()
            .join("")
    }
}

/// The *state of a vertex* after `t` rounds, in the exact sense of the
/// paper's indistinguishability definition: "the initial knowledge and
/// the transcript at that vertex". Two instances are indistinguishable
/// after `t` rounds iff every vertex has the same [`NodeView`] in both
/// (Section 3).
///
/// The received half is keyed and sorted by *port label*, because the
/// port label — not the peer's identity — is what the vertex can see.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeView {
    /// The vertex ID.
    pub id: u64,
    /// Sorted port labels (initial knowledge).
    pub port_labels: Vec<u64>,
    /// Sorted labels of input-edge ports (initial knowledge).
    pub input_port_labels: Vec<u64>,
    /// Broadcast messages, round by round.
    pub sent: Vec<Message>,
    /// Received messages, per round, sorted by port label.
    pub received: Vec<Vec<(u64, Message)>>,
}

/// Aggregate statistics of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Rounds actually executed.
    pub rounds: usize,
    /// Total non-silent symbols broadcast across all vertices and
    /// rounds.
    pub bits_broadcast: usize,
    /// Total messages delivered (`rounds · n · (n−1)`).
    pub messages_delivered: usize,
}

/// Counts rounds, bits, and deliveries, and — when the caller asked
/// for a trace or for metrics — mirrors the same quantities into
/// round spans and broadcast/decision events, and into the `sim.*`
/// workload metrics. All RunStats accounting goes through here, so
/// the statistics a report prints, the events a trace records, and
/// the counters a metrics dump merges can never drift apart.
///
/// Every recorded value is logical (round numbers, node ids, bit
/// counts); the simulator never reads a clock, so equal-seed runs
/// produce byte-identical traces and dumps.
struct SimRecorder<'a> {
    trace: &'a mut TraceBuf,
    metrics: &'a MetricScope,
    stats: RunStats,
    round_bits: usize,
}

impl<'a> SimRecorder<'a> {
    fn new(trace: &'a mut TraceBuf, metrics: &'a MetricScope) -> Self {
        SimRecorder {
            trace,
            metrics,
            stats: RunStats::default(),
            round_bits: 0,
        }
    }

    fn run_start(&mut self, n: usize, bandwidth: usize, max_rounds: usize, coin_seed: u64) {
        if self.trace.spans_enabled() {
            self.trace.span_start(
                "sim",
                vec![
                    field("n", n),
                    field("bandwidth", bandwidth),
                    field("max_rounds", max_rounds),
                    field("coin_seed", coin_seed),
                ],
            );
        }
    }

    fn round_start(&mut self, round: usize) {
        self.round_bits = 0;
        if self.trace.spans_enabled() {
            self.trace.span_start(&format!("round={round}"), vec![]);
        }
    }

    fn broadcast(&mut self, v: usize, message: &Message) {
        let bits = message.bits_used();
        self.stats.bits_broadcast += bits;
        self.round_bits += bits;
        self.metrics.full_observe("sim.broadcast_bits", bits as u64);
        if self.trace.events_enabled() {
            self.trace.event(
                "broadcast",
                vec![
                    field("node", v),
                    field("bits", bits),
                    field("msg", message.to_string()),
                ],
            );
        }
    }

    fn delivered(&mut self, count: usize) {
        self.stats.messages_delivered += count;
    }

    fn round_end(&mut self, round: usize) {
        self.stats.rounds = round + 1;
        self.metrics
            .full_observe("sim.round_bits", self.round_bits as u64);
        // The per-round cost record carries the same canonical name as
        // the core `sim.bits_broadcast` workload counter, so the
        // profiler can join span-attributed costs against dump totals.
        if self.trace.costs_enabled() {
            self.trace
                .counter("sim.bits_broadcast", self.round_bits as u64);
        }
        if self.trace.spans_enabled() {
            self.trace.span_end(&format!("round={round}"), vec![]);
        }
    }

    fn decision(&mut self, v: usize, decision: Decision) {
        if self.trace.events_enabled() {
            let tag = match decision {
                Decision::Yes => "yes",
                Decision::No => "no",
                Decision::Undecided => "undecided",
            };
            self.trace
                .event("decision", vec![field("node", v), field("decision", tag)]);
        }
    }

    /// Closes any open spans on a transport failure, so traced error
    /// paths stay balanced: the current `round=r` span (when the
    /// failure struck mid-round) and the `sim` span, tagged with the
    /// error text.
    fn abort(&mut self, open_round: Option<usize>, err: &TransportError) {
        if self.trace.events_enabled() {
            self.trace
                .event("transport.error", vec![field("error", err.to_string())]);
        }
        if self.trace.spans_enabled() {
            if let Some(round) = open_round {
                self.trace.span_end(&format!("round={round}"), vec![]);
            }
            self.trace
                .span_end("sim", vec![field("error", err.to_string())]);
        }
    }

    fn run_end(&mut self, completed: bool) -> RunStats {
        if self.metrics.core_enabled() {
            let stats = self.stats;
            // One lock for the whole batch of end-of-run counters.
            self.metrics.with(|b| {
                b.counter("sim.runs", 1);
                b.counter("sim.rounds", stats.rounds as u64);
                b.counter("sim.bits_broadcast", stats.bits_broadcast as u64);
                b.counter("sim.messages_delivered", stats.messages_delivered as u64);
            });
        }
        if self.trace.spans_enabled() {
            self.trace.span_end(
                "sim",
                vec![
                    field("rounds", self.stats.rounds),
                    field("bits_broadcast", self.stats.bits_broadcast),
                    field("messages_delivered", self.stats.messages_delivered),
                    field("completed", completed),
                ],
            );
        }
        self.stats
    }
}

/// The result of simulating an algorithm on an instance.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    decisions: Vec<Decision>,
    component_labels: Vec<Option<u64>>,
    spanning_edges: Vec<Option<Vec<(u64, u64)>>>,
    transcripts: Vec<Transcript>,
    views: Vec<NodeView>,
    stats: RunStats,
    all_done: bool,
    recorded: bool,
    transport_failure: Option<TransportError>,
}

impl RunOutcome {
    /// Per-vertex decisions.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// The system decision per Section 1.2: YES iff every vertex says
    /// YES, otherwise NO.
    pub fn system_decision(&self) -> Decision {
        if self.decisions.iter().all(|&d| d == Decision::Yes) {
            Decision::Yes
        } else {
            Decision::No
        }
    }

    /// Returns `true` if any vertex was still undecided at the end.
    pub fn any_undecided(&self) -> bool {
        self.decisions.contains(&Decision::Undecided)
    }

    /// Per-vertex component labels (for `ConnectedComponents`).
    pub fn component_labels(&self) -> &[Option<u64>] {
        &self.component_labels
    }

    /// Per-vertex spanning-structure outputs (for MST-style
    /// algorithms); `None` entries for algorithms without one.
    pub fn spanning_edges(&self) -> &[Option<Vec<(u64, u64)>>] {
        &self.spanning_edges
    }

    /// The transcript of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn transcript(&self, v: usize) -> &Transcript {
        &self.transcripts[v]
    }

    /// The state (view) of vertex `v` — the object compared by
    /// indistinguishability arguments.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn view(&self, v: usize) -> &NodeView {
        &self.views[v]
    }

    /// All views, in vertex order.
    pub fn views(&self) -> &[NodeView] {
        &self.views
    }

    /// Run statistics.
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// Whether every program reported done before the round limit.
    pub fn completed(&self) -> bool {
        self.all_done
    }

    /// Whether transcripts and views were recorded for this run.
    /// `false` after [`SimConfig::transcripts`]`(false)`, in which
    /// case [`views`](Self::views) is empty and the outcome cannot
    /// take part in indistinguishability comparisons.
    pub fn recorded(&self) -> bool {
        self.recorded
    }

    /// The transport failure this outcome degraded on, if any. A
    /// failed outcome has every vertex [`Decision::Undecided`], no
    /// views, default stats, and [`completed`](Self::completed) false
    /// — the same "never answers" shape a run that exhausts its round
    /// budget without deciding has, but attributable.
    pub fn transport_failure(&self) -> Option<&TransportError> {
        self.transport_failure.as_ref()
    }

    /// The degraded outcome of a run whose transport failed: `n`
    /// undecided vertices and the typed error, never a panic. Used by
    /// [`SimConfig::run`] and the batched engine when
    /// [`Transport::exchange`] reports trouble.
    pub fn transport_failed(n: usize, err: TransportError) -> Self {
        RunOutcome {
            decisions: vec![Decision::Undecided; n],
            component_labels: vec![None; n],
            spanning_edges: vec![None; n],
            transcripts: vec![
                Transcript {
                    sent: Vec::new(),
                    received: Vec::new(),
                };
                n
            ],
            views: Vec::new(),
            stats: RunStats::default(),
            all_done: false,
            recorded: false,
            transport_failure: Some(err),
        }
    }

    /// Assembles an outcome from raw parts.
    ///
    /// This is the constructor used by batched executors
    /// (`bcc-engine`) that advance many instances in lockstep and
    /// materialize one outcome per lane outside this module. The
    /// caller owns the invariants the scalar path maintains: all
    /// per-vertex vectors have equal length, and `views` is empty
    /// unless `recorded` is true.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        decisions: Vec<Decision>,
        component_labels: Vec<Option<u64>>,
        spanning_edges: Vec<Option<Vec<(u64, u64)>>>,
        transcripts: Vec<Transcript>,
        views: Vec<NodeView>,
        stats: RunStats,
        all_done: bool,
        recorded: bool,
    ) -> Self {
        RunOutcome {
            decisions,
            component_labels,
            spanning_edges,
            transcripts,
            views,
            stats,
            all_done,
            recorded,
            transport_failure: None,
        }
    }
}

/// Configuration of one synchronous `BCC(b)` execution — the single
/// entry point for running an [`Algorithm`] on an [`Instance`].
///
/// Built fluently from a model constructor, then reused for any
/// number of runs:
///
/// ```
/// use bcc_model::{Instance, SimConfig, Decision, testing};
/// use bcc_graphs::generators;
///
/// let instance = Instance::new_kt1(generators::two_cycles(3, 3)).unwrap();
/// let outcome = SimConfig::bcc1(4).run(&instance, &testing::ConstantDecision::no(), 0);
/// assert_eq!(outcome.system_decision(), Decision::No);
/// assert_eq!(outcome.stats().rounds, 0); // decides instantly
/// ```
///
/// The builder folds what used to be four entry points into one:
/// bandwidth via [`bandwidth`](Self::bandwidth), transcript recording
/// via [`transcripts`](Self::transcripts), and trace capture via
/// [`trace`](Self::trace) — no `run`/`run_traced` split. Tracing is
/// an observer: the returned outcome is identical whether the scope
/// records or is disabled, and everything recorded is a pure function
/// of `(instance, algorithm, coin_seed)`, never of wall-clock time.
///
/// Round delivery goes through a [`Transport`]: explicitly via
/// [`transport`](Self::transport), else the process-wide default
/// (`--transport`), else the in-process [`LocalTransport`] oracle.
/// All accounting stays driver-side, so the outcome, trace, and
/// metrics are byte-identical across conforming transports.
///
/// [`LocalTransport`]: crate::transport::LocalTransport
#[derive(Clone)]
pub struct SimConfig {
    max_rounds: usize,
    bandwidth: usize,
    record: bool,
    trace: TraceScope,
    metrics: MetricScope,
    transport: Option<Arc<dyn TransportFactory>>,
}

impl fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimConfig")
            .field("max_rounds", &self.max_rounds)
            .field("bandwidth", &self.bandwidth)
            .field("record", &self.record)
            .field("trace", &self.trace)
            .field("metrics", &self.metrics)
            .field("transport", &self.transport.as_ref().map(|t| t.label()))
            .finish()
    }
}

impl SimConfig {
    /// A `BCC(1)` configuration with the given round limit,
    /// transcripts on, tracing and metrics off.
    pub fn bcc1(max_rounds: usize) -> Self {
        SimConfig {
            max_rounds,
            bandwidth: 1,
            record: true,
            trace: TraceScope::disabled(),
            metrics: MetricScope::disabled(),
            transport: None,
        }
    }

    /// Sets the per-round broadcast bandwidth `b` (`BCC(b)`).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero.
    #[must_use]
    pub fn bandwidth(mut self, bandwidth: usize) -> Self {
        assert!(bandwidth >= 1, "bandwidth must be at least 1");
        self.bandwidth = bandwidth;
        self
    }

    /// Enables or disables transcript/view recording. Recording costs
    /// `Θ(rounds·n²)` heap messages — prohibitive for large
    /// performance sweeps — and is only needed by the
    /// indistinguishability machinery. With recording off,
    /// [`RunOutcome::transcript`] and [`RunOutcome::view`] return
    /// empty records.
    #[must_use]
    pub fn transcripts(mut self, record: bool) -> Self {
        self.record = record;
        self
    }

    /// Attaches a trace destination. Each run records a `sim` span
    /// wrapping one `round=r` span per executed round, with per-node
    /// `broadcast` events, a per-round `sim.bits_broadcast` counter,
    /// and one final `decision` event per vertex (point events at
    /// [`Events`](TraceLevel::Events) level; the counter from `Costs`;
    /// spans alone at `Spans`).
    #[must_use]
    pub fn trace(mut self, scope: TraceScope) -> Self {
        self.trace = scope;
        self
    }

    /// Attaches a metrics destination. Each run adds its aggregate
    /// statistics to the `sim.*` counters (`sim.runs`, `sim.rounds`,
    /// `sim.bits_broadcast`, `sim.messages_delivered`) at core level
    /// and observes per-broadcast and per-round bit histograms
    /// (`sim.broadcast_bits`, `sim.round_bits`) at full level. Like
    /// tracing, metrics are a pure observer of logical quantities.
    #[must_use]
    pub fn metrics(mut self, scope: MetricScope) -> Self {
        self.metrics = scope;
        self
    }

    /// The round limit.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// The bandwidth `b`.
    pub fn bandwidth_per_round(&self) -> usize {
        self.bandwidth
    }

    /// Whether transcripts/views are recorded.
    pub fn records_transcripts(&self) -> bool {
        self.record
    }

    /// The attached trace scope (disabled by default).
    pub fn trace_scope(&self) -> &TraceScope {
        &self.trace
    }

    /// The attached metrics scope (disabled by default).
    pub fn metrics_scope(&self) -> &MetricScope {
        &self.metrics
    }

    /// Attaches an explicit transport factory, overriding the
    /// process-wide default for runs from this config.
    #[must_use]
    pub fn transport(mut self, factory: Arc<dyn TransportFactory>) -> Self {
        self.transport = Some(factory);
        self
    }

    /// The factory runs from this config will draw transports from:
    /// the explicit [`transport`](Self::transport) override when set,
    /// else the process-wide default
    /// ([`crate::transport::default_factory`]).
    pub fn transport_factory(&self) -> Arc<dyn TransportFactory> {
        match &self.transport {
            Some(f) => Arc::clone(f),
            None => default_factory(),
        }
    }

    /// Runs `algorithm` on `instance` with the given public-coin
    /// seed, for at most [`max_rounds`](Self::max_rounds) rounds
    /// (stopping early once every vertex reports done).
    ///
    /// A transport failure degrades — never panics — into
    /// [`RunOutcome::transport_failed`]: all vertices undecided and
    /// the typed error retrievable from
    /// [`RunOutcome::transport_failure`]. Use [`try_run`](Self::try_run)
    /// to receive the error as a `Result` instead.
    pub fn run(
        &self,
        instance: &Instance,
        algorithm: &dyn Algorithm,
        coin_seed: u64,
    ) -> RunOutcome {
        match self.try_run(instance, algorithm, coin_seed) {
            Ok(outcome) => outcome,
            Err(err) => RunOutcome::transport_failed(instance.num_vertices(), err),
        }
    }

    /// Fallible form of [`run`](Self::run).
    ///
    /// # Errors
    ///
    /// Returns the first [`TransportError`] the configured transport
    /// reports (spawn failure, dead worker, protocol violation).
    /// Trace spans opened before the failure are closed before
    /// returning, so traced error paths stay balanced.
    pub fn try_run(
        &self,
        instance: &Instance,
        algorithm: &dyn Algorithm,
        coin_seed: u64,
    ) -> Result<RunOutcome, TransportError> {
        let mut transport = self.transport_factory().create();
        let result = if self.trace.level() > TraceLevel::Off {
            self.trace.with(|buf| {
                try_run_impl(
                    self,
                    transport.as_mut(),
                    instance,
                    algorithm,
                    coin_seed,
                    buf,
                )
            })
        } else {
            try_run_impl(
                self,
                transport.as_mut(),
                instance,
                algorithm,
                coin_seed,
                &mut TraceBuf::disabled(),
            )
        };
        transport.teardown();
        result
    }
}

/// Legacy trace-buffer entry point behind the deprecated
/// [`Simulator::run_traced`]: same kernel, degraded error handling.
fn run_impl(
    cfg: &SimConfig,
    instance: &Instance,
    algorithm: &dyn Algorithm,
    coin_seed: u64,
    trace: &mut TraceBuf,
) -> RunOutcome {
    let mut transport = cfg.transport_factory().create();
    let result = try_run_impl(
        cfg,
        transport.as_mut(),
        instance,
        algorithm,
        coin_seed,
        trace,
    );
    transport.teardown();
    match result {
        Ok(outcome) => outcome,
        Err(err) => RunOutcome::transport_failed(instance.num_vertices(), err),
    }
}

/// The one scalar execution path every entry point funnels into —
/// [`SimConfig::run`], the deprecated [`Simulator`] wrappers, and the
/// lockstep kernel in `bcc-engine` pin themselves against it. Round
/// delivery goes through `transport`; everything observable (spans,
/// events, `sim.*` metrics, transcripts) is recorded here on the
/// driver side, so conforming transports cannot perturb it.
fn try_run_impl(
    cfg: &SimConfig,
    transport: &mut dyn Transport,
    instance: &Instance,
    algorithm: &dyn Algorithm,
    coin_seed: u64,
    trace: &mut TraceBuf,
) -> Result<RunOutcome, TransportError> {
    let n = instance.num_vertices();
    // Open before the `sim` span: a spawn/handshake failure leaves no
    // half-open span behind.
    transport.open(&Routes::of(instance.network()))?;
    let mut programs: Vec<_> = (0..n)
        .map(|v| algorithm.spawn(instance.initial_knowledge(v, cfg.bandwidth, coin_seed)))
        .collect();
    let mut transcripts = vec![
        Transcript {
            sent: Vec::new(),
            received: Vec::new(),
        };
        n
    ];
    let mut recorder = SimRecorder::new(trace, &cfg.metrics);
    recorder.run_start(n, cfg.bandwidth, cfg.max_rounds, coin_seed);
    let mut all_done = programs.iter().all(|p| p.is_done());

    for round in 0..cfg.max_rounds {
        if all_done {
            break;
        }
        recorder.round_start(round);
        // Phase 1: everyone broadcasts.
        let broadcasts: Vec<Message> = programs
            .iter_mut()
            .map(|p| p.broadcast(round).normalized(cfg.bandwidth))
            .collect();
        for (v, m) in broadcasts.iter().enumerate() {
            recorder.broadcast(v, m);
            if cfg.record {
                transcripts[v].sent.push(m.clone());
            }
        }
        // Phase 2: the transport delivers; the canonicalized view is
        // in port-label order, which for every constructible network
        // equals the port-index order the in-process loop produced.
        let view = match transport.exchange(round, &broadcasts) {
            Ok(view) => view.canonicalized(),
            Err(err) => {
                recorder.abort(Some(round), &err);
                return Err(err);
            }
        };
        if view.num_nodes() != n {
            let err = TransportError::Protocol {
                detail: format!("round view covers {} of {n} nodes", view.num_nodes()),
                postmortem: None,
            };
            recorder.abort(Some(round), &err);
            return Err(err);
        }
        for (v, entries) in view.into_inboxes().into_iter().enumerate() {
            if entries.len() != n.saturating_sub(1) {
                let err = TransportError::Protocol {
                    detail: format!(
                        "node {v} received {} messages, expected {}",
                        entries.len(),
                        n.saturating_sub(1)
                    ),
                    postmortem: None,
                };
                recorder.abort(Some(round), &err);
                return Err(err);
            }
            let delivered = entries.len();
            if cfg.record {
                transcripts[v].received.push(entries.clone());
            }
            let inbox = Inbox::new(entries);
            programs[v].receive(round, &inbox);
            recorder.delivered(delivered);
        }
        recorder.round_end(round);
        all_done = programs.iter().all(|p| p.is_done());
    }

    if let Err(err) = transport.barrier() {
        recorder.abort(None, &err);
        return Err(err);
    }

    let views = (0..if cfg.record { n } else { 0 })
        .map(|v| {
            let ik = instance.initial_knowledge(v, cfg.bandwidth, coin_seed);
            let mut port_labels = ik.port_labels.clone();
            port_labels.sort_unstable();
            NodeView {
                id: ik.id,
                port_labels,
                input_port_labels: ik.input_port_labels.clone(),
                sent: transcripts[v].sent.clone(),
                received: transcripts[v]
                    .received
                    .iter()
                    .map(|round| {
                        let mut r = round.clone();
                        r.sort_by_key(|(l, _)| *l);
                        r
                    })
                    .collect(),
            }
        })
        .collect();

    let decisions: Vec<Decision> = programs.iter().map(|p| p.decide()).collect();
    for (v, &d) in decisions.iter().enumerate() {
        recorder.decision(v, d);
    }
    let stats = recorder.run_end(all_done);

    Ok(RunOutcome {
        decisions,
        component_labels: programs.iter().map(|p| p.component_label()).collect(),
        spanning_edges: programs.iter().map(|p| p.spanning_edges()).collect(),
        transcripts,
        views,
        stats,
        all_done,
        recorded: cfg.record,
        transport_failure: None,
    })
}

/// The legacy constructor-sprawl face of the executor, kept so
/// downstream code migrates on its own schedule. Every method is a
/// thin wrapper over [`SimConfig`]; new code should build a
/// `SimConfig` directly.
#[derive(Debug, Clone, Copy)]
pub struct Simulator {
    max_rounds: usize,
    bandwidth: usize,
    record: bool,
}

impl Simulator {
    /// A `BCC(1)` simulator with the given round limit.
    #[deprecated(note = "use `SimConfig::bcc1(max_rounds)`")]
    pub fn new(max_rounds: usize) -> Self {
        Simulator {
            max_rounds,
            bandwidth: 1,
            record: true,
        }
    }

    /// A `BCC(b)` simulator.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is zero.
    #[deprecated(note = "use `SimConfig::bcc1(max_rounds).bandwidth(b)`")]
    pub fn with_bandwidth(max_rounds: usize, bandwidth: usize) -> Self {
        assert!(bandwidth >= 1, "bandwidth must be at least 1");
        Simulator {
            max_rounds,
            bandwidth,
            record: true,
        }
    }

    /// Disables transcript/view recording.
    #[deprecated(note = "use `SimConfig::transcripts(false)`")]
    pub fn without_transcripts(mut self) -> Self {
        self.record = false;
        self
    }

    /// The bandwidth `b`.
    pub fn bandwidth(&self) -> usize {
        self.bandwidth
    }

    /// The round limit.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    fn config(&self) -> SimConfig {
        SimConfig::bcc1(self.max_rounds)
            .bandwidth(self.bandwidth)
            .transcripts(self.record)
    }

    /// Runs `algorithm` on `instance` with the given public-coin seed.
    #[deprecated(note = "use `SimConfig::run`")]
    pub fn run(
        &self,
        instance: &Instance,
        algorithm: &dyn Algorithm,
        coin_seed: u64,
    ) -> RunOutcome {
        self.config().run(instance, algorithm, coin_seed)
    }

    /// Runs `algorithm` on `instance`, recording into `trace`.
    #[deprecated(note = "use `SimConfig::trace(scope).run(...)`")]
    pub fn run_traced(
        &self,
        instance: &Instance,
        algorithm: &dyn Algorithm,
        coin_seed: u64,
        trace: &mut TraceBuf,
    ) -> RunOutcome {
        run_impl(&self.config(), instance, algorithm, coin_seed, trace)
    }
}

/// Checks whether two runs are *indistinguishable*: every vertex has
/// an identical [`NodeView`] (initial knowledge + transcript) in both.
/// Vertices are matched by ID, per the paper's convention that the
/// "same" vertex appears in both instances.
///
/// Returns `false` — never a vacuous `true` — when either run was
/// produced with [`SimConfig::transcripts`]`(false)`: an unrecorded
/// run has no views, so nothing can be attested about it.
/// Use [`try_runs_indistinguishable`] to distinguish "distinguishable"
/// from "unanswerable" as a typed error.
pub fn runs_indistinguishable(a: &RunOutcome, b: &RunOutcome) -> bool {
    try_runs_indistinguishable(a, b).unwrap_or(false)
}

/// Fallible form of [`runs_indistinguishable`].
///
/// # Errors
///
/// Returns [`ModelError::UnrecordedRun`] when either outcome was
/// produced without transcript recording — the comparison would
/// otherwise be over empty view sets and trivially succeed.
pub fn try_runs_indistinguishable(a: &RunOutcome, b: &RunOutcome) -> Result<bool, ModelError> {
    if !a.recorded || !b.recorded {
        return Err(ModelError::UnrecordedRun);
    }
    if a.views.len() != b.views.len() {
        return Ok(false);
    }
    let mut b_by_id: std::collections::BTreeMap<u64, &NodeView> =
        b.views.iter().map(|v| (v.id, v)).collect();
    Ok(a.views
        .iter()
        .all(|va| b_by_id.remove(&va.id).is_some_and(|vb| va == vb)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{ConstantDecision, EchoBit, IdBroadcast};
    use bcc_graphs::generators;

    #[test]
    fn constant_algorithms_decide_immediately() {
        let i = Instance::new_kt1(generators::cycle(4)).unwrap();
        let yes = SimConfig::bcc1(5).run(&i, &ConstantDecision::yes(), 0);
        assert_eq!(yes.system_decision(), Decision::Yes);
        assert!(yes.completed());
        assert_eq!(yes.stats().rounds, 0);
        let no = SimConfig::bcc1(5).run(&i, &ConstantDecision::no(), 0);
        assert_eq!(no.system_decision(), Decision::No);
    }

    #[test]
    fn echo_transcripts_recorded() {
        let i = Instance::new_kt1(generators::cycle(4)).unwrap();
        let out = SimConfig::bcc1(3).run(&i, &EchoBit, 0);
        assert_eq!(out.stats().rounds, 3);
        for v in 0..4 {
            let t = out.transcript(v);
            assert_eq!(t.rounds(), 3);
            assert_eq!(t.received[0].len(), 3);
        }
        // Every vertex broadcast one bit per round.
        assert_eq!(out.stats().bits_broadcast, 4 * 3);
        assert_eq!(out.stats().messages_delivered, 3 * 4 * 3);
    }

    #[test]
    fn id_broadcast_reaches_everyone() {
        // Each vertex broadcasts its id bit-serially; after ceil(log2 n)
        // rounds every vertex knows the id behind every port.
        let i = Instance::new_kt0(generators::cycle(6), 11).unwrap();
        let out = SimConfig::bcc1(10).run(&i, &IdBroadcast::new(), 0);
        assert!(out.completed());
        // 6 ids in 0..6 need 3 bits.
        assert_eq!(out.stats().rounds, 3);
    }

    #[test]
    fn identical_runs_indistinguishable() {
        let i = Instance::new_kt0(generators::cycle(5), 2).unwrap();
        let a = SimConfig::bcc1(4).run(&i, &EchoBit, 7);
        let b = SimConfig::bcc1(4).run(&i, &EchoBit, 7);
        assert!(runs_indistinguishable(&a, &b));
    }

    #[test]
    fn different_inputs_distinguishable_by_views() {
        let a = Instance::new_kt0_canonical(generators::cycle(6)).unwrap();
        let b = Instance::new_kt0_canonical(generators::two_cycles(3, 3)).unwrap();
        let ra = SimConfig::bcc1(1).run(&a, &EchoBit, 0);
        let rb = SimConfig::bcc1(1).run(&b, &EchoBit, 0);
        // Input-edge port sets differ at some vertex.
        assert!(!runs_indistinguishable(&ra, &rb));
    }

    #[test]
    fn unrecorded_runs_never_vacuously_indistinguishable() {
        let i = Instance::new_kt0(generators::cycle(5), 2).unwrap();
        let cfg = SimConfig::bcc1(4).transcripts(false);
        let a = cfg.run(&i, &EchoBit, 7);
        let b = cfg.run(&i, &EchoBit, 7);
        assert!(!a.recorded());
        assert!(!runs_indistinguishable(&a, &b));
        assert_eq!(
            try_runs_indistinguishable(&a, &b),
            Err(crate::error::ModelError::UnrecordedRun)
        );
        let recorded = SimConfig::bcc1(4).run(&i, &EchoBit, 7);
        assert!(recorded.recorded());
        assert_eq!(
            try_runs_indistinguishable(&recorded, &recorded.clone()),
            Ok(true)
        );
    }

    #[test]
    fn traced_run_matches_untraced_outcome() {
        let i = Instance::new_kt0(generators::cycle(5), 3).unwrap();
        let plain = SimConfig::bcc1(4).run(&i, &EchoBit, 1);
        let scope = TraceScope::new(TraceBuf::new(TraceLevel::Events, "test"));
        let traced = SimConfig::bcc1(4).trace(scope.clone()).run(&i, &EchoBit, 1);
        let buf = scope.take();
        // Tracing is an observer: identical outcome.
        assert_eq!(plain.decisions(), traced.decisions());
        assert_eq!(plain.stats(), traced.stats());
        assert!(runs_indistinguishable(&plain, &traced));
        // The trace has the sim span, one round span pair + n
        // broadcasts + 1 counter per round, and n decisions.
        let events = buf.into_events();
        assert!(!events.is_empty());
        assert_eq!(events[0].name, "sim");
        let rounds = plain.stats().rounds;
        let broadcasts = events.iter().filter(|e| e.name == "broadcast").count();
        assert_eq!(broadcasts, 5 * rounds);
        let decisions = events.iter().filter(|e| e.name == "decision").count();
        assert_eq!(decisions, 5);
        // Broadcast events carry the logical position in their path.
        let b0 = events.iter().find(|e| e.name == "broadcast").unwrap();
        assert_eq!(b0.path, "sim/round=0");
        // Counter totals equal the stats the report sees.
        let counted: u64 = events
            .iter()
            .filter(|e| e.name == "sim.bits_broadcast")
            .filter_map(|e| match e.field("delta") {
                Some(bcc_trace::FieldValue::UInt(d)) => Some(*d),
                _ => None,
            })
            .sum();
        assert_eq!(counted, plain.stats().bits_broadcast as u64);
    }

    #[test]
    fn metered_run_matches_unmetered_outcome() {
        use bcc_metrics::{MetricsBuf, MetricsLevel};
        let i = Instance::new_kt0(generators::cycle(5), 3).unwrap();
        let plain = SimConfig::bcc1(4).run(&i, &EchoBit, 1);
        let scope = MetricScope::new(MetricsBuf::new(MetricsLevel::Full, "test"));
        let metered = SimConfig::bcc1(4)
            .metrics(scope.clone())
            .run(&i, &EchoBit, 1);
        // Metrics are an observer: identical outcome.
        assert_eq!(plain.decisions(), metered.decisions());
        assert_eq!(plain.stats(), metered.stats());
        assert!(runs_indistinguishable(&plain, &metered));
        // The counters equal the stats the report sees.
        let (counters, _, hists) = scope.take().into_parts();
        let stats = plain.stats();
        assert_eq!(counters.get("sim.runs"), Some(&1));
        assert_eq!(counters.get("sim.rounds"), Some(&(stats.rounds as u64)));
        assert_eq!(
            counters.get("sim.bits_broadcast"),
            Some(&(stats.bits_broadcast as u64))
        );
        assert_eq!(
            counters.get("sim.messages_delivered"),
            Some(&(stats.messages_delivered as u64))
        );
        // Full level: one round_bits sample per round, summing to the
        // total bits; one broadcast_bits sample per (node, round).
        let rb = hists.get("sim.round_bits").expect("round_bits hist");
        assert_eq!(rb.count, stats.rounds as u64);
        assert_eq!(rb.sum, stats.bits_broadcast as u64);
        let bb = hists
            .get("sim.broadcast_bits")
            .expect("broadcast_bits hist");
        assert_eq!(bb.count, (5 * stats.rounds) as u64);
        // Core level drops the histograms but keeps the counters.
        let core = MetricScope::new(MetricsBuf::new(MetricsLevel::Core, "test"));
        SimConfig::bcc1(4)
            .metrics(core.clone())
            .run(&i, &EchoBit, 1);
        let (c, _, h) = core.take().into_parts();
        assert_eq!(c.get("sim.runs"), Some(&1));
        assert!(h.is_empty());
    }

    #[test]
    fn same_seed_traces_are_identical() {
        let i = Instance::new_kt0(generators::two_cycles(3, 4), 9).unwrap();
        let run = || {
            let scope = TraceScope::new(TraceBuf::new(TraceLevel::Events, "u"));
            SimConfig::bcc1(6)
                .trace(scope.clone())
                .run(&i, &EchoBit, 42);
            scope.take().into_events()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spans_level_records_rounds_without_broadcasts() {
        let i = Instance::new_kt1(generators::cycle(4)).unwrap();
        let scope = TraceScope::new(TraceBuf::new(TraceLevel::Spans, "u"));
        SimConfig::bcc1(2).trace(scope.clone()).run(&i, &EchoBit, 0);
        let events = scope.take().into_events();
        assert!(events.iter().all(|e| {
            matches!(
                e.kind,
                bcc_trace::EventKind::SpanStart | bcc_trace::EventKind::SpanEnd
            )
        }));
        assert!(events.iter().any(|e| e.name == "round=1"));
    }

    #[test]
    fn bandwidth_enforced() {
        let cfg = SimConfig::bcc1(2).bandwidth(4);
        assert_eq!(cfg.bandwidth_per_round(), 4);
        assert_eq!(cfg.max_rounds(), 2);
        assert!(cfg.records_transcripts());
    }

    #[test]
    #[should_panic(expected = "bandwidth must be at least 1")]
    fn zero_bandwidth_rejected() {
        let _ = SimConfig::bcc1(1).bandwidth(0);
    }

    #[test]
    fn explicit_local_transport_matches_default() {
        use crate::transport::LocalFactory;
        let i = Instance::new_kt0(generators::two_cycles(3, 4), 5).unwrap();
        let default = SimConfig::bcc1(6).run(&i, &EchoBit, 3);
        let explicit = SimConfig::bcc1(6)
            .transport(std::sync::Arc::new(LocalFactory))
            .run(&i, &EchoBit, 3);
        assert_eq!(default.decisions(), explicit.decisions());
        assert_eq!(default.stats(), explicit.stats());
        assert!(runs_indistinguishable(&default, &explicit));
        assert!(explicit.transport_failure().is_none());
    }

    /// A factory whose transports die on the configured round.
    struct DyingFactory {
        at_round: usize,
    }

    struct DyingTransport {
        inner: crate::transport::LocalTransport,
        at_round: usize,
    }

    impl crate::transport::Transport for DyingTransport {
        fn open(&mut self, routes: &crate::transport::Routes) -> Result<(), TransportError> {
            self.inner.open(routes)
        }

        fn exchange(
            &mut self,
            round: usize,
            outbox: &[Message],
        ) -> Result<crate::transport::RoundView, TransportError> {
            if round >= self.at_round {
                return Err(TransportError::WorkerDead {
                    rank: 0,
                    detail: "test kill".to_string(),
                    postmortem: None,
                });
            }
            self.inner.exchange(round, outbox)
        }
    }

    impl TransportFactory for DyingFactory {
        fn create(&self) -> Box<dyn crate::transport::Transport> {
            Box::new(DyingTransport {
                inner: crate::transport::LocalTransport::new(),
                at_round: self.at_round,
            })
        }

        fn label(&self) -> String {
            "dying".to_string()
        }
    }

    #[test]
    fn dead_transport_degrades_with_typed_error_and_balanced_spans() {
        let i = Instance::new_kt1(generators::cycle(4)).unwrap();
        let factory: Arc<dyn TransportFactory> = Arc::new(DyingFactory { at_round: 1 });
        let scope = TraceScope::new(TraceBuf::new(TraceLevel::Events, "t"));
        let cfg = SimConfig::bcc1(5)
            .transport(Arc::clone(&factory))
            .trace(scope.clone());
        let err = cfg.try_run(&i, &EchoBit, 0).unwrap_err();
        assert!(matches!(err, TransportError::WorkerDead { rank: 0, .. }));
        // The infallible face degrades to all-undecided, never panics.
        let out = cfg.run(&i, &EchoBit, 0);
        assert!(out.any_undecided());
        assert_eq!(out.system_decision(), Decision::No);
        assert!(!out.completed());
        assert!(!out.recorded());
        assert_eq!(out.transport_failure(), Some(&err));
        // Every span the failing runs opened was closed.
        let events = scope.take().into_events();
        let starts = events
            .iter()
            .filter(|e| matches!(e.kind, bcc_trace::EventKind::SpanStart))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e.kind, bcc_trace::EventKind::SpanEnd))
            .count();
        assert_eq!(starts, ends);
        assert!(events.iter().any(|e| e.name == "transport.error"));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_simulator_wrappers_match_sim_config() {
        let i = Instance::new_kt0(generators::cycle(5), 2).unwrap();
        let legacy = Simulator::new(4).run(&i, &EchoBit, 7);
        let modern = SimConfig::bcc1(4).run(&i, &EchoBit, 7);
        assert_eq!(legacy.decisions(), modern.decisions());
        assert_eq!(legacy.stats(), modern.stats());
        assert!(runs_indistinguishable(&legacy, &modern));
        let legacy_bare = Simulator::new(4).without_transcripts().run(&i, &EchoBit, 7);
        assert!(!legacy_bare.recorded());
        let mut buf = TraceBuf::new(TraceLevel::Events, "u");
        let traced = Simulator::with_bandwidth(4, 1).run_traced(&i, &EchoBit, 7, &mut buf);
        assert_eq!(traced.stats(), modern.stats());
        assert!(!buf.into_events().is_empty());
    }
}
