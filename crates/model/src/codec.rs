//! Bit-serialization helpers shared by `BCC(b)` algorithms.
//!
//! With bandwidth `b = 1`, sending a `w`-bit value takes `w` rounds;
//! these helpers fix the (LSB-first) bit order once so every algorithm
//! and its decoder agree.

use crate::error::ModelError;
use crate::symbol::Symbol;

/// Bits needed to encode any value in `0..n` (at least 1).
///
/// # Example
///
/// ```
/// use bcc_model::codec::bits_needed;
/// assert_eq!(bits_needed(1), 1);
/// assert_eq!(bits_needed(2), 1);
/// assert_eq!(bits_needed(6), 3);
/// assert_eq!(bits_needed(64), 6);
/// assert_eq!(bits_needed(65), 7);
/// ```
pub fn bits_needed(n: usize) -> usize {
    if n <= 2 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// Encodes `value` as `width` bits, LSB first.
///
/// # Panics
///
/// Panics if `value` does not fit in `width` bits.
pub fn u64_to_bits(value: u64, width: usize) -> Vec<bool> {
    assert!(
        width >= 64 || value < (1u64 << width),
        "value {value} does not fit in {width} bits"
    );
    (0..width).map(|i| value >> i & 1 == 1).collect()
}

/// Decodes LSB-first bits into a `u64`.
///
/// # Panics
///
/// Panics if more than 64 bits are supplied.
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "at most 64 bits");
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b)) << i)
}

/// A fixed bit payload scheduled one symbol per round — the basic
/// transmission pattern of every bit-serial `BCC(1)` algorithm.
#[derive(Debug, Clone)]
pub struct BitSchedule {
    bits: Vec<bool>,
}

impl BitSchedule {
    /// Schedules the bits of `value` (LSB first, `width` of them).
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit.
    pub fn of_value(value: u64, width: usize) -> Self {
        BitSchedule {
            bits: u64_to_bits(value, width),
        }
    }

    /// Schedules an explicit bit vector.
    pub fn of_bits(bits: Vec<bool>) -> Self {
        BitSchedule { bits }
    }

    /// Total rounds needed.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Returns `true` if there is nothing to send.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The symbol to broadcast in round `round` (silent once the
    /// payload is exhausted).
    pub fn symbol_at(&self, round: usize) -> Symbol {
        self.bits
            .get(round)
            .map_or(Symbol::Silent, |&b| Symbol::bit(b))
    }
}

/// Accumulates symbols received from one port and decodes the payload
/// once `width` bits have arrived.
#[derive(Debug, Clone)]
pub struct BitAccumulator {
    width: usize,
    bits: Vec<bool>,
}

impl BitAccumulator {
    /// An accumulator expecting `width` bits.
    pub fn new(width: usize) -> Self {
        BitAccumulator {
            width,
            bits: Vec::with_capacity(width),
        }
    }

    /// Feeds one received symbol; silent symbols beyond the payload are
    /// ignored, silent symbols inside it are an encoding error.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::CorruptPayload`] if a silent symbol
    /// arrives before the payload completes. The accumulator is left
    /// unchanged, so a caller that cannot propagate the error (a
    /// `NodeProgram::receive` body) degrades to an incomplete payload
    /// instead of a crash.
    pub fn push(&mut self, s: Symbol) -> Result<(), ModelError> {
        if self.is_complete() {
            return Ok(());
        }
        match s.as_bit() {
            Some(b) => {
                self.bits.push(b);
                Ok(())
            }
            None => Err(ModelError::CorruptPayload { width: self.width }),
        }
    }

    /// Whether all `width` bits have arrived.
    pub fn is_complete(&self) -> bool {
        self.bits.len() >= self.width
    }

    /// The decoded value, once complete.
    pub fn value(&self) -> Option<u64> {
        self.is_complete().then(|| bits_to_u64(&self.bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_values() {
        for width in 1..=16 {
            for value in [0u64, 1, 2, (1 << width) - 1] {
                if value < (1 << width) {
                    assert_eq!(bits_to_u64(&u64_to_bits(value, width)), value);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overflow_rejected() {
        u64_to_bits(8, 3);
    }

    #[test]
    fn schedule_emits_then_silent() {
        let s = BitSchedule::of_value(0b101, 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.symbol_at(0), Symbol::One);
        assert_eq!(s.symbol_at(1), Symbol::Zero);
        assert_eq!(s.symbol_at(2), Symbol::One);
        assert_eq!(s.symbol_at(3), Symbol::Silent);
        assert_eq!(s.symbol_at(100), Symbol::Silent);
    }

    #[test]
    fn accumulator_decodes() {
        let mut a = BitAccumulator::new(3);
        assert!(!a.is_complete());
        assert_eq!(a.value(), None);
        a.push(Symbol::One).unwrap();
        a.push(Symbol::Zero).unwrap();
        a.push(Symbol::One).unwrap();
        assert!(a.is_complete());
        assert_eq!(a.value(), Some(0b101));
        // Extra silence after completion is fine.
        a.push(Symbol::Silent).unwrap();
        assert_eq!(a.value(), Some(0b101));
    }

    #[test]
    fn accumulator_rejects_early_silence() {
        let mut a = BitAccumulator::new(2);
        assert_eq!(
            a.push(Symbol::Silent),
            Err(ModelError::CorruptPayload { width: 2 })
        );
        // The accumulator is unchanged and still usable.
        a.push(Symbol::One).unwrap();
        a.push(Symbol::Zero).unwrap();
        assert_eq!(a.value(), Some(0b01));
    }

    #[test]
    fn schedule_empty() {
        let s = BitSchedule::of_bits(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.symbol_at(0), Symbol::Silent);
    }
}
