//! The range-parameterized congested clique of Becker et al.
//! (COCOON 2016), which the paper's related-work section uses to
//! interpolate between its two extremes:
//!
//! - range `r = 1`: every vertex must send the *same* message on all
//!   ports — the broadcast congested clique `BCC(b)` of this paper;
//! - range `r = n − 1`: every port may carry a distinct message — the
//!   unicast congested clique `CC(b)`, where `Connectivity` is `O(1)`
//!   rounds at `b = log n` (Jurdziński–Nowicki et al.), the contrast
//!   that motivates the paper's lower bounds.
//!
//! [`RangeSimulator`] executes a [`RangeAlgorithm`]: per round each
//! vertex produces one message per port, and the simulator *enforces
//! the range* — the number of distinct messages per vertex per round
//! must not exceed `r`.

use crate::instance::Instance;
use crate::program::{Decision, InitialKnowledge};
use crate::symbol::Message;

/// A per-round outgoing assignment: `messages[p]` is sent on port `p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortMessages {
    /// One message per port, in port-index order.
    pub messages: Vec<Message>,
}

impl PortMessages {
    /// The same message on every port (always range-1 legal).
    pub fn broadcast(message: Message, num_ports: usize) -> Self {
        PortMessages {
            messages: vec![message; num_ports],
        }
    }

    /// Number of distinct messages (the *range used*).
    pub fn range_used(&self) -> usize {
        let mut distinct: Vec<&Message> = Vec::new();
        for m in &self.messages {
            if !distinct.contains(&m) {
                distinct.push(m);
            }
        }
        distinct.len()
    }
}

/// A node program in the range-`r` congested clique: like
/// [`crate::NodeProgram`] but with per-port sends.
pub trait RangeNodeProgram {
    /// The messages to send in `round`, one per port.
    fn send(&mut self, round: usize) -> PortMessages;

    /// Delivery of the round's received messages, `(port label,
    /// message)` in port-index order.
    fn receive(&mut self, round: usize, inbox: &[(u64, Message)]);

    /// The vertex's decision.
    fn decide(&self) -> Decision;

    /// Whether the vertex has finished.
    fn is_done(&self) -> bool;
}

/// A factory for range algorithms.
pub trait RangeAlgorithm {
    /// Short name for reports.
    fn name(&self) -> &str;

    /// Spawns one program.
    fn spawn(&self, init: InitialKnowledge) -> Box<dyn RangeNodeProgram>;
}

/// The outcome of a range-model run.
#[derive(Debug, Clone)]
pub struct RangeRunOutcome {
    /// Per-vertex decisions.
    pub decisions: Vec<Decision>,
    /// Rounds executed.
    pub rounds: usize,
    /// Total bits sent (non-silent symbols across all port messages).
    pub bits_sent: usize,
    /// Maximum range used by any vertex in any round.
    pub max_range_used: usize,
}

impl RangeRunOutcome {
    /// The system decision (YES iff all vertices vote YES).
    pub fn system_decision(&self) -> Decision {
        if self.decisions.iter().all(|&d| d == Decision::Yes) {
            Decision::Yes
        } else {
            Decision::No
        }
    }
}

/// The synchronous range-`r` executor.
#[derive(Debug, Clone, Copy)]
pub struct RangeSimulator {
    max_rounds: usize,
    bandwidth: usize,
    range: usize,
}

impl RangeSimulator {
    /// A `CC_r(b)` simulator: `range = 1` is `BCC(b)`,
    /// `range = n − 1` is `CC(b)`.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` or `range` is zero.
    pub fn new(max_rounds: usize, bandwidth: usize, range: usize) -> Self {
        assert!(bandwidth >= 1, "bandwidth must be at least 1");
        assert!(range >= 1, "range must be at least 1");
        RangeSimulator {
            max_rounds,
            bandwidth,
            range,
        }
    }

    /// The range parameter `r`.
    pub fn range(&self) -> usize {
        self.range
    }

    /// Runs the algorithm, enforcing bandwidth and range each round.
    ///
    /// # Panics
    ///
    /// Panics if any vertex sends more than `r` distinct messages in a
    /// round, or any message exceeds the bandwidth — both are contract
    /// violations by the algorithm.
    pub fn run(
        &self,
        instance: &Instance,
        algorithm: &dyn RangeAlgorithm,
        coin_seed: u64,
    ) -> RangeRunOutcome {
        let n = instance.num_vertices();
        let mut programs: Vec<_> = (0..n)
            .map(|v| algorithm.spawn(instance.initial_knowledge(v, self.bandwidth, coin_seed)))
            .collect();
        let mut rounds = 0;
        let mut bits_sent = 0;
        let mut max_range_used = 0;
        while rounds < self.max_rounds && !programs.iter().all(|p| p.is_done()) {
            // Collect sends: outgoing[v][p].
            let outgoing: Vec<PortMessages> = programs.iter_mut().map(|p| p.send(rounds)).collect();
            for (v, pm) in outgoing.iter().enumerate() {
                assert_eq!(
                    pm.messages.len(),
                    n - 1,
                    "vertex {v} sent on {} ports, expected {}",
                    pm.messages.len(),
                    n - 1
                );
                let used = pm.range_used();
                assert!(
                    used <= self.range,
                    "range violation at vertex {v}: {used} distinct messages with r = {}",
                    self.range
                );
                max_range_used = max_range_used.max(used);
                for m in &pm.messages {
                    assert!(
                        m.len() <= self.bandwidth,
                        "bandwidth violation at vertex {v}"
                    );
                    bits_sent += m.bits_used();
                }
            }
            // Deliver: vertex v hears, on its port towards w, the
            // message w put on w's port towards v.
            for (v, program) in programs.iter_mut().enumerate() {
                let inbox: Vec<(u64, Message)> = (0..n - 1)
                    .map(|p| {
                        let w = instance.network().peer_of(v, p);
                        let back_port = instance.network().port_of(w, v);
                        (
                            instance.network().port_label(v, p),
                            outgoing[w].messages[back_port].clone(),
                        )
                    })
                    .collect();
                program.receive(rounds, &inbox);
            }
            rounds += 1;
        }
        RangeRunOutcome {
            decisions: programs.iter().map(|p| p.decide()).collect(),
            rounds,
            bits_sent,
            max_range_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;
    use bcc_graphs::generators;

    /// Every vertex broadcasts one bit — range 1 by construction.
    struct Broadcast1;
    struct Broadcast1Node {
        n: usize,
        done: bool,
    }
    impl RangeAlgorithm for Broadcast1 {
        fn name(&self) -> &str {
            "broadcast-1"
        }
        fn spawn(&self, init: InitialKnowledge) -> Box<dyn RangeNodeProgram> {
            Box::new(Broadcast1Node {
                n: init.n,
                done: false,
            })
        }
    }
    impl RangeNodeProgram for Broadcast1Node {
        fn send(&mut self, _round: usize) -> PortMessages {
            PortMessages::broadcast(Message::single(Symbol::One), self.n - 1)
        }
        fn receive(&mut self, _round: usize, _inbox: &[(u64, Message)]) {
            self.done = true;
        }
        fn decide(&self) -> Decision {
            Decision::Yes
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    /// Sends a different bit on each port — range n−1.
    struct UnicastAll;
    struct UnicastNode {
        n: usize,
        done: bool,
    }
    impl RangeAlgorithm for UnicastAll {
        fn name(&self) -> &str {
            "unicast-all"
        }
        fn spawn(&self, init: InitialKnowledge) -> Box<dyn RangeNodeProgram> {
            Box::new(UnicastNode {
                n: init.n,
                done: false,
            })
        }
    }
    impl RangeNodeProgram for UnicastNode {
        fn send(&mut self, _round: usize) -> PortMessages {
            PortMessages {
                messages: (0..self.n - 1)
                    .map(|p| Message::from_bits(p as u64 % 2, 1).normalized(8))
                    .collect(),
            }
        }
        fn receive(&mut self, _round: usize, _inbox: &[(u64, Message)]) {
            self.done = true;
        }
        fn decide(&self) -> Decision {
            Decision::Yes
        }
        fn is_done(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn range_1_broadcast_allowed() {
        let inst = Instance::new_kt1(generators::cycle(5)).unwrap();
        let out = RangeSimulator::new(4, 1, 1).run(&inst, &Broadcast1, 0);
        assert_eq!(out.system_decision(), Decision::Yes);
        assert_eq!(out.max_range_used, 1);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.bits_sent, 5 * 4);
    }

    #[test]
    fn high_range_allowed_when_r_large() {
        let inst = Instance::new_kt1(generators::cycle(5)).unwrap();
        let out = RangeSimulator::new(4, 8, 4).run(&inst, &UnicastAll, 0);
        assert_eq!(out.max_range_used, 2); // two distinct parity messages
    }

    #[test]
    #[should_panic(expected = "range violation")]
    fn range_violation_caught() {
        let inst = Instance::new_kt1(generators::cycle(5)).unwrap();
        // r = 1 but UnicastAll sends 2 distinct messages.
        RangeSimulator::new(4, 8, 1).run(&inst, &UnicastAll, 0);
    }

    #[test]
    #[should_panic(expected = "range must be at least 1")]
    fn zero_range_rejected() {
        RangeSimulator::new(1, 1, 0);
    }
}
