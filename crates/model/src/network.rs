//! The clique communication network: IDs, ports and wiring.

use crate::error::ModelError;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The two initial-knowledge regimes of the paper (notation from
/// Awerbuch et al.): "Knowledge Till 0 hops" vs "Knowledge Till 1 hop".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KnowledgeMode {
    /// Ports are labeled `1..n−1` arbitrarily; labels carry no
    /// information about the peer.
    Kt0,
    /// The port of `u` leading to `v` is labeled `ID(v)`; all vertices
    /// know all `n` IDs.
    Kt1,
}

/// The communication network: a clique on `n` vertices with per-vertex
/// port assignments.
///
/// Every pair of distinct vertices is joined by a *network edge*; the
/// edge `{u, v}` attaches to exactly one port of `u` and one port of
/// `v`. In KT-0 the attachment is an arbitrary permutation per vertex
/// (and may be [rewired](Network::swap_peers) — the degree of freedom
/// behind port-preserving crossings); in KT-1 the port of `u` to `v`
/// is labeled `ID(v)` and the wiring is rigid.
///
/// Construction is crate-private: networks come into existence only
/// through [`Instance`](crate::Instance) constructors
/// (`new_kt1`, `new_kt0`, …), which pair a wiring with an input graph
/// and validate both. Callers inspect a network through the read
/// accessors here and hand its delivery plan to transports via
/// [`Routes::of`](crate::transport::Routes::of).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    mode: KnowledgeMode,
    ids: Vec<u64>,
    /// `port_to_peer[v][p]` = the vertex at the far end of port `p` of `v`.
    port_to_peer: Vec<Vec<usize>>,
    /// `peer_to_port[v][w]` = the port of `v` leading to `w`
    /// (`usize::MAX` on the diagonal).
    peer_to_port: Vec<Vec<usize>>,
}

impl Network {
    fn from_permutations(
        mode: KnowledgeMode,
        ids: Vec<u64>,
        port_to_peer: Vec<Vec<usize>>,
    ) -> Result<Self, ModelError> {
        let n = ids.len();
        let mut seen = std::collections::BTreeSet::new();
        for &id in &ids {
            if !seen.insert(id) {
                return Err(ModelError::DuplicateIds { id });
            }
        }
        let mut peer_to_port = vec![vec![usize::MAX; n]; n];
        for v in 0..n {
            debug_assert_eq!(port_to_peer[v].len(), n.saturating_sub(1));
            for (p, &w) in port_to_peer[v].iter().enumerate() {
                peer_to_port[v][w] = p;
            }
        }
        Ok(Network {
            mode,
            ids,
            port_to_peer,
            peer_to_port,
        })
    }

    /// A KT-1 network with the given IDs; ports of each vertex are
    /// ordered by increasing peer ID (the order is immaterial since
    /// labels are IDs, but a canonical order keeps runs reproducible).
    ///
    /// # Errors
    ///
    /// Returns an error if IDs are not distinct.
    pub(crate) fn kt1(ids: Vec<u64>) -> Result<Self, ModelError> {
        let n = ids.len();
        let port_to_peer: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                let mut peers: Vec<usize> = (0..n).filter(|&w| w != v).collect();
                peers.sort_by_key(|&w| ids[w]);
                peers
            })
            .collect();
        Network::from_permutations(KnowledgeMode::Kt1, ids, port_to_peer)
    }

    /// A KT-0 network with canonical wiring: port `p` of `v` leads to
    /// the `p`-th other vertex in index order.
    ///
    /// # Errors
    ///
    /// Returns an error if IDs are not distinct.
    pub(crate) fn kt0_canonical(ids: Vec<u64>) -> Result<Self, ModelError> {
        let n = ids.len();
        let port_to_peer: Vec<Vec<usize>> = (0..n)
            .map(|v| (0..n).filter(|&w| w != v).collect())
            .collect();
        Network::from_permutations(KnowledgeMode::Kt0, ids, port_to_peer)
    }

    /// A KT-0 network with seeded pseudo-random port permutations —
    /// the "arbitrarily numbered" ports of the paper.
    ///
    /// # Errors
    ///
    /// Returns an error if IDs are not distinct.
    pub(crate) fn kt0_seeded(ids: Vec<u64>, seed: u64) -> Result<Self, ModelError> {
        let n = ids.len();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let port_to_peer: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                let mut peers: Vec<usize> = (0..n).filter(|&w| w != v).collect();
                peers.shuffle(&mut rng);
                peers
            })
            .collect();
        Network::from_permutations(KnowledgeMode::Kt0, ids, port_to_peer)
    }

    /// The knowledge mode.
    pub fn mode(&self) -> KnowledgeMode {
        self.mode
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.ids.len()
    }

    /// The ID of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn id(&self, v: usize) -> u64 {
        self.ids[v]
    }

    /// All IDs, in vertex-index order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The vertex index with the given ID, if any.
    pub fn vertex_with_id(&self, id: u64) -> Option<usize> {
        self.ids.iter().position(|&x| x == id)
    }

    /// The vertex at the far end of port `p` of `v`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn peer_of(&self, v: usize, p: usize) -> usize {
        self.port_to_peer[v][p]
    }

    /// The port of `v` leading to `w`.
    ///
    /// # Panics
    ///
    /// Panics if `v == w` or out of range.
    pub fn port_of(&self, v: usize, w: usize) -> usize {
        let p = self.peer_to_port[v][w];
        assert_ne!(p, usize::MAX, "no port from a vertex to itself");
        p
    }

    /// The label the node sees on port `p` of `v`: `p + 1` in KT-0
    /// (ports are numbered `1..n−1`), the peer's ID in KT-1.
    pub fn port_label(&self, v: usize, p: usize) -> u64 {
        match self.mode {
            KnowledgeMode::Kt0 => (p + 1) as u64,
            KnowledgeMode::Kt1 => self.ids[self.port_to_peer[v][p]],
        }
    }

    /// The label of the port of `v` leading to `w`.
    pub fn label_of_peer(&self, v: usize, w: usize) -> u64 {
        self.port_label(v, self.port_of(v, w))
    }

    /// Swaps the ports of `v` leading to `w1` and `w2`: after the
    /// call, the port that led to `w1` leads to `w2` and vice versa.
    /// This is the primitive from which port-preserving crossings
    /// (Definition 3.3) are built.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::RewireKt1`] on KT-1 networks and
    /// [`ModelError::InvalidRewire`] if the vertices are not distinct.
    pub fn swap_peers(&mut self, v: usize, w1: usize, w2: usize) -> Result<(), ModelError> {
        if self.mode == KnowledgeMode::Kt1 {
            return Err(ModelError::RewireKt1);
        }
        if v == w1 || v == w2 || w1 == w2 {
            return Err(ModelError::InvalidRewire {
                reason: format!("vertices {v}, {w1}, {w2} must be distinct"),
            });
        }
        let p1 = self.peer_to_port[v][w1];
        let p2 = self.peer_to_port[v][w2];
        self.port_to_peer[v][p1] = w2;
        self.port_to_peer[v][p2] = w1;
        self.peer_to_port[v][w1] = p2;
        self.peer_to_port[v][w2] = p1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kt1_labels_are_peer_ids() {
        let net = Network::kt1(vec![10, 20, 30]).unwrap();
        assert_eq!(net.mode(), KnowledgeMode::Kt1);
        for v in 0..3 {
            for p in 0..2 {
                let w = net.peer_of(v, p);
                assert_eq!(net.port_label(v, p), net.id(w));
            }
        }
        assert_eq!(net.label_of_peer(0, 2), 30);
    }

    #[test]
    fn kt0_labels_are_port_numbers() {
        let net = Network::kt0_seeded(vec![0, 1, 2, 3], 5).unwrap();
        for v in 0..4 {
            let labels: Vec<u64> = (0..3).map(|p| net.port_label(v, p)).collect();
            assert_eq!(labels, vec![1, 2, 3]);
        }
    }

    #[test]
    fn wiring_is_consistent() {
        let net = Network::kt0_seeded((0..8).collect(), 42).unwrap();
        for v in 0..8 {
            let mut seen = std::collections::HashSet::new();
            for p in 0..7 {
                let w = net.peer_of(v, p);
                assert_ne!(w, v);
                assert!(seen.insert(w), "peer {w} repeated at vertex {v}");
                assert_eq!(net.port_of(v, w), p);
            }
        }
    }

    #[test]
    fn duplicate_ids_rejected() {
        assert!(matches!(
            Network::kt1(vec![1, 2, 1]),
            Err(ModelError::DuplicateIds { id: 1 })
        ));
    }

    #[test]
    fn swap_peers_rewires() {
        let mut net = Network::kt0_canonical((0..5).map(|i| i as u64).collect()).unwrap();
        let p1 = net.port_of(0, 1);
        let p2 = net.port_of(0, 2);
        net.swap_peers(0, 1, 2).unwrap();
        assert_eq!(net.port_of(0, 1), p2);
        assert_eq!(net.port_of(0, 2), p1);
        assert_eq!(net.peer_of(0, p1), 2);
        assert_eq!(net.peer_of(0, p2), 1);
        // Other vertices untouched.
        assert_eq!(
            net.port_of(3, 4),
            Network::kt0_canonical((0..5).map(|i| i as u64).collect())
                .unwrap()
                .port_of(3, 4)
        );
    }

    #[test]
    fn swap_peers_rejected_on_kt1() {
        let mut net = Network::kt1(vec![0, 1, 2]).unwrap();
        assert_eq!(net.swap_peers(0, 1, 2), Err(ModelError::RewireKt1));
    }

    #[test]
    fn swap_peers_validates() {
        let mut net = Network::kt0_canonical(vec![0, 1, 2]).unwrap();
        assert!(matches!(
            net.swap_peers(0, 0, 1),
            Err(ModelError::InvalidRewire { .. })
        ));
        assert!(matches!(
            net.swap_peers(0, 1, 1),
            Err(ModelError::InvalidRewire { .. })
        ));
    }

    #[test]
    fn vertex_with_id_lookup() {
        let net = Network::kt1(vec![5, 9, 7]).unwrap();
        assert_eq!(net.vertex_with_id(9), Some(1));
        assert_eq!(net.vertex_with_id(4), None);
    }
}
