//! An executable implementation of the `BCC(b)` model — the *b-bit
//! Broadcast Congested Clique* of Section 1.2 of *Connectivity Lower
//! Bounds in Broadcast Congested Clique* (Pai & Pemmaraju, PODC 2019).
//!
//! # The model
//!
//! A size-`n` instance consists of `n` vertices, each with a unique
//! ID, connected pairwise by *network edges* so that the communication
//! network is a clique. Each vertex has `n−1` communication ports.
//! A subset of the network edges forms the *input graph*. Computation
//! proceeds in synchronous rounds: every vertex broadcasts at most `b`
//! bits (each position may also be the silent character `⊥`), and the
//! broadcast of `u` is delivered to every other vertex `v` on the port
//! of `v` that connects to `u`.
//!
//! Two knowledge regimes differ only in the *port labels*:
//!
//! - **KT-0** ([`KnowledgeMode::Kt0`]): ports are labeled `1..n−1` in
//!   an arbitrary (seedable) manner, carrying no information about the
//!   vertex on the other side. KT-0 wirings can be *rewired* — the
//!   degree of freedom exploited by the paper's port-preserving edge
//!   crossings (Definition 3.3).
//! - **KT-1** ([`KnowledgeMode::Kt1`]): the port of `u` leading to `v`
//!   is labeled `ID(v)`, so every vertex knows the IDs of all vertices
//!   and of each neighbor across each port. KT-1 wirings are rigid:
//!   rewiring would change the labels, which is exactly why the paper
//!   needs a different lower-bound technique there.
//!
//! # Pieces
//!
//! - [`Symbol`], [`Message`]: the `{0, 1, ⊥}` broadcast alphabet;
//! - [`Network`], [`Instance`]: wiring + IDs + input graph;
//! - [`NodeProgram`], [`Algorithm`]: the object-safe interface node
//!   programs implement;
//! - [`SimConfig`]: the synchronous executor's configuration and
//!   single run entry point, producing [`RunOutcome`]s with full
//!   per-node [`Transcript`]s and [`NodeView`]s — the exact "state of
//!   a vertex" whose equality defines *indistinguishability*
//!   (Lemma 3.4);
//! - [`transport`]: the round-delivery surface ([`Transport`]) the
//!   executor routes every exchange through — in-process
//!   ([`transport::LocalTransport`]) by default, multi-process via
//!   `bcc-transport`;
//! - [`codec`]: bit-encoding helpers shared by the upper-bound
//!   algorithms.
//!
//! # Example
//!
//! ```
//! use bcc_model::{Instance, SimConfig, Decision};
//! use bcc_graphs::generators;
//!
//! // A 6-cycle as a KT-1 instance; run the always-YES strawman.
//! let instance = Instance::new_kt1(generators::cycle(6)).unwrap();
//! let algo = bcc_model::testing::ConstantDecision::yes();
//! let outcome = SimConfig::bcc1(10).run(&instance, &algo, 0);
//! assert_eq!(outcome.system_decision(), Decision::Yes);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod error;
mod instance;
mod network;
pub mod postmortem;
mod program;
pub mod range;
mod simulator;
pub mod testing;
pub mod transport;

pub use error::ModelError;
pub use instance::Instance;
pub use network::{KnowledgeMode, Network};
pub use program::{Algorithm, Decision, Inbox, InitialKnowledge, NodeProgram};
#[allow(deprecated)]
pub use simulator::Simulator;
pub use simulator::{
    runs_indistinguishable, try_runs_indistinguishable, NodeView, RunOutcome, RunStats, SimConfig,
    Transcript,
};
pub use symbol::{Message, Symbol};
pub use transport::{Transport, TransportError, TransportSpec};

/// The curated import surface for writing and running node programs:
/// `use bcc_model::prelude::*` brings in the broadcast alphabet, the
/// program traits, the instance/run types, and the transport
/// vocabulary — everything a typical algorithm or experiment module
/// touches, nothing it shouldn't (network *construction* stays behind
/// [`Instance`]).
pub mod prelude {
    pub use crate::program::{Algorithm, Decision, Inbox, InitialKnowledge, NodeProgram};
    pub use crate::simulator::{NodeView, RunOutcome, RunStats, SimConfig, Transcript};
    pub use crate::symbol::{Message, Symbol};
    pub use crate::transport::{Transport, TransportError, TransportSpec};
    pub use crate::{Instance, KnowledgeMode, ModelError};
}

mod symbol;
