//! Error types for instance construction and simulation.

use std::error::Error;
use std::fmt;

/// Errors produced when building or manipulating `BCC(b)` instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// IDs were not distinct.
    DuplicateIds {
        /// The repeated ID.
        id: u64,
    },
    /// Wrong number of IDs for the vertex count.
    IdCountMismatch {
        /// IDs supplied.
        got: usize,
        /// Vertices in the graph.
        expected: usize,
    },
    /// The input graph had more vertices than the network.
    GraphTooLarge {
        /// Input graph vertices.
        graph: usize,
        /// Network vertices.
        network: usize,
    },
    /// A rewiring was requested on a KT-1 network, whose port labels
    /// are tied to IDs and cannot move.
    RewireKt1,
    /// A rewiring request was not a valid port permutation (e.g. the
    /// four endpoints were not distinct).
    InvalidRewire {
        /// Human-readable description.
        reason: String,
    },
    /// A bit-serial payload contained a silent symbol before all of
    /// its bits arrived — an encoding bug in the sending program.
    CorruptPayload {
        /// Expected payload width in bits.
        width: usize,
    },
    /// An indistinguishability comparison was asked of a run executed
    /// with transcript recording disabled: with no views there is
    /// nothing to compare, and a vacuous "indistinguishable" would be
    /// unsound.
    UnrecordedRun,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateIds { id } => write!(f, "duplicate vertex id {id}"),
            ModelError::IdCountMismatch { got, expected } => {
                write!(f, "expected {expected} ids, got {got}")
            }
            ModelError::GraphTooLarge { graph, network } => {
                write!(
                    f,
                    "input graph on {graph} vertices exceeds network size {network}"
                )
            }
            ModelError::RewireKt1 => {
                write!(
                    f,
                    "KT-1 networks cannot be rewired: port labels are neighbor ids"
                )
            }
            ModelError::InvalidRewire { reason } => write!(f, "invalid rewiring: {reason}"),
            ModelError::CorruptPayload { width } => {
                write!(f, "silent symbol inside a {width}-bit payload")
            }
            ModelError::UnrecordedRun => {
                write!(
                    f,
                    "run was executed without transcript recording; views are unavailable \
                     for indistinguishability comparison"
                )
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ModelError::DuplicateIds { id: 7 }.to_string(),
            "duplicate vertex id 7"
        );
        assert!(ModelError::RewireKt1.to_string().contains("KT-1"));
    }
}
