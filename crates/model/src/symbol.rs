//! The `{0, 1, ⊥}` broadcast alphabet.

/// One broadcast character: a bit or the silent character `⊥`.
///
/// The paper describes a silent vertex as "sending the character ⊥"
/// (Section 3), making the per-round alphabet ternary; labels of edges
/// in the crossing argument are strings over exactly this alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Symbol {
    /// The bit 0.
    Zero,
    /// The bit 1.
    One,
    /// Silence (`⊥`).
    #[default]
    Silent,
}

impl Symbol {
    /// Converts a bit into a symbol.
    pub fn bit(b: bool) -> Symbol {
        if b {
            Symbol::One
        } else {
            Symbol::Zero
        }
    }

    /// The bit value, if not silent.
    pub fn as_bit(self) -> Option<bool> {
        match self {
            Symbol::Zero => Some(false),
            Symbol::One => Some(true),
            Symbol::Silent => None,
        }
    }

    /// A compact character for transcripts: `0`, `1` or `⊥`.
    pub fn glyph(self) -> char {
        match self {
            Symbol::Zero => '0',
            Symbol::One => '1',
            Symbol::Silent => '⊥',
        }
    }
}

impl std::fmt::Display for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.glyph())
    }
}

/// A per-round broadcast of a vertex: exactly `b` symbols (the
/// bandwidth), any of which may be silent. The all-silent message is
/// the paper's "remains silent".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Message(Vec<Symbol>);

impl Message {
    /// An all-silent message of bandwidth `b`.
    pub fn silent(b: usize) -> Message {
        Message(vec![Symbol::Silent; b])
    }

    /// A single-symbol message (the `BCC(1)` case).
    pub fn single(s: Symbol) -> Message {
        Message(vec![s])
    }

    /// A message from explicit symbols.
    pub fn from_symbols(symbols: Vec<Symbol>) -> Message {
        Message(symbols)
    }

    /// A message carrying the low `b` bits of `value` (LSB first),
    /// no silent positions.
    pub fn from_bits(value: u64, b: usize) -> Message {
        assert!(b <= 64, "at most 64 bits per message");
        Message((0..b).map(|i| Symbol::bit(value >> i & 1 == 1)).collect())
    }

    /// The symbols.
    pub fn symbols(&self) -> &[Symbol] {
        &self.0
    }

    /// Message length (must equal the bandwidth once normalized).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the message has no symbols.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns `true` if every position is silent.
    pub fn is_silent(&self) -> bool {
        self.0.iter().all(|&s| s == Symbol::Silent)
    }

    /// The single symbol of a bandwidth-1 message.
    ///
    /// # Panics
    ///
    /// Panics if the message does not have exactly one symbol.
    pub fn symbol(&self) -> Symbol {
        assert_eq!(self.0.len(), 1, "symbol() requires bandwidth 1");
        self.0[0]
    }

    /// Number of non-silent positions (the "bits actually broadcast"
    /// statistic).
    pub fn bits_used(&self) -> usize {
        self.0.iter().filter(|&&s| s != Symbol::Silent).count()
    }

    /// Pads with silence (or errors) to normalize to bandwidth `b`.
    ///
    /// # Panics
    ///
    /// Panics if the message is longer than `b` — a bandwidth
    /// violation by the node program.
    pub fn normalized(mut self, b: usize) -> Message {
        assert!(
            self.0.len() <= b,
            "bandwidth violation: message of {} symbols with b = {b}",
            self.0.len()
        );
        self.0.resize(b, Symbol::Silent);
        self
    }

    /// Decodes the message as bits LSB-first, treating silence as
    /// absence; returns `None` if any position is silent.
    pub fn to_bits(&self) -> Option<u64> {
        let mut v = 0u64;
        for (i, s) in self.0.iter().enumerate() {
            match s.as_bit() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }
}

impl std::fmt::Display for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.0 {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_roundtrip() {
        assert_eq!(Symbol::bit(true), Symbol::One);
        assert_eq!(Symbol::bit(false), Symbol::Zero);
        assert_eq!(Symbol::One.as_bit(), Some(true));
        assert_eq!(Symbol::Silent.as_bit(), None);
        assert_eq!(Symbol::default(), Symbol::Silent);
    }

    #[test]
    fn message_bits_roundtrip() {
        let m = Message::from_bits(0b1011, 6);
        assert_eq!(m.to_bits(), Some(0b1011));
        assert_eq!(m.len(), 6);
        assert_eq!(m.bits_used(), 6);
        assert!(!m.is_silent());
    }

    #[test]
    fn silent_message() {
        let m = Message::silent(3);
        assert!(m.is_silent());
        assert_eq!(m.bits_used(), 0);
        assert_eq!(m.to_bits(), None);
        assert_eq!(m.to_string(), "⊥⊥⊥");
    }

    #[test]
    fn normalization_pads() {
        let m = Message::single(Symbol::One).normalized(3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.symbols()[1], Symbol::Silent);
    }

    #[test]
    #[should_panic(expected = "bandwidth violation")]
    fn normalization_rejects_overlong() {
        Message::from_bits(0, 4).normalized(2);
    }

    #[test]
    fn display_glyphs() {
        let m = Message::from_symbols(vec![Symbol::Zero, Symbol::One, Symbol::Silent]);
        assert_eq!(m.to_string(), "01⊥");
    }

    #[test]
    fn single_symbol_access() {
        assert_eq!(Message::single(Symbol::Zero).symbol(), Symbol::Zero);
    }

    #[test]
    #[should_panic(expected = "bandwidth 1")]
    fn symbol_rejects_wide_message() {
        Message::silent(2).symbol();
    }
}
