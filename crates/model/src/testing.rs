//! Small reference algorithms used in tests, docs and as lower-bound
//! strawmen.

use crate::codec::{bits_needed, BitAccumulator, BitSchedule};
use crate::program::{Algorithm, Decision, Inbox, InitialKnowledge, NodeProgram};
use crate::symbol::Message;

/// An algorithm where every vertex immediately outputs a fixed
/// decision without communicating. The simplest possible strawman for
/// the error experiments: it is correct on exactly one side of any
/// decision problem.
#[derive(Debug, Clone, Copy)]
pub struct ConstantDecision {
    decision: Decision,
}

impl ConstantDecision {
    /// Always answer YES.
    pub fn yes() -> Self {
        ConstantDecision {
            decision: Decision::Yes,
        }
    }

    /// Always answer NO.
    pub fn no() -> Self {
        ConstantDecision {
            decision: Decision::No,
        }
    }
}

impl Algorithm for ConstantDecision {
    fn name(&self) -> &str {
        match self.decision {
            Decision::Yes => "constant-yes",
            Decision::No => "constant-no",
            Decision::Undecided => "constant-undecided",
        }
    }

    fn spawn(&self, _init: InitialKnowledge) -> Box<dyn NodeProgram> {
        Box::new(ConstantNode {
            decision: self.decision,
        })
    }
}

struct ConstantNode {
    decision: Decision,
}

impl NodeProgram for ConstantNode {
    fn broadcast(&mut self, _round: usize) -> Message {
        Message::silent(0)
    }

    fn receive(&mut self, _round: usize, _inbox: &Inbox) {}

    fn decide(&self) -> Decision {
        self.decision
    }

    fn is_done(&self) -> bool {
        true
    }
}

/// Every vertex broadcasts `1` forever and never decides: exercises
/// transcript recording and the round limit.
#[derive(Debug, Clone, Copy)]
pub struct EchoBit;

impl Algorithm for EchoBit {
    fn name(&self) -> &str {
        "echo-bit"
    }

    fn spawn(&self, _init: InitialKnowledge) -> Box<dyn NodeProgram> {
        Box::new(EchoNode)
    }
}

struct EchoNode;

impl NodeProgram for EchoNode {
    fn broadcast(&mut self, _round: usize) -> Message {
        Message::from_bits(1, 1)
    }

    fn receive(&mut self, _round: usize, _inbox: &Inbox) {}

    fn decide(&self) -> Decision {
        Decision::Undecided
    }

    fn is_done(&self) -> bool {
        false
    }
}

/// Each vertex broadcasts its ID bit-serially over `⌈log₂ n⌉` rounds
/// and records the ID behind every port — the KT-0 → KT-1 knowledge
/// upgrade the paper notes is free when `b = Ω(log n)` (Section 1.1),
/// here paid for at `b = 1` with `⌈log₂ n⌉` rounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdBroadcast;

impl IdBroadcast {
    /// Creates the algorithm.
    pub fn new() -> Self {
        IdBroadcast
    }
}

impl Algorithm for IdBroadcast {
    fn name(&self) -> &str {
        "id-broadcast"
    }

    fn spawn(&self, init: InitialKnowledge) -> Box<dyn NodeProgram> {
        let width = bits_needed(init.n);
        Box::new(IdBroadcastNode {
            schedule: BitSchedule::of_value(init.id, width),
            accumulators: init
                .port_labels
                .iter()
                .map(|&l| (l, BitAccumulator::new(width)))
                .collect(),
            width,
            round: 0,
        })
    }
}

struct IdBroadcastNode {
    schedule: BitSchedule,
    accumulators: Vec<(u64, BitAccumulator)>,
    width: usize,
    round: usize,
}

impl IdBroadcastNode {
    /// The learned port-label → peer-ID map, once complete.
    fn learned(&self) -> Option<Vec<(u64, u64)>> {
        self.accumulators
            .iter()
            .map(|(l, a)| a.value().map(|v| (*l, v)))
            .collect()
    }
}

impl NodeProgram for IdBroadcastNode {
    fn broadcast(&mut self, round: usize) -> Message {
        Message::single(self.schedule.symbol_at(round))
    }

    fn receive(&mut self, _round: usize, inbox: &Inbox) {
        for (label, acc) in &mut self.accumulators {
            if let Some(m) = inbox.by_label(*label) {
                // A corrupt payload (early silence) degrades to an
                // incomplete accumulator — this vertex stays Undecided
                // rather than crashing the whole simulation.
                let fed = acc.push(m.symbol());
                debug_assert!(fed.is_ok(), "sender broke the bit-serial encoding");
            }
        }
        self.round += 1;
    }

    fn decide(&self) -> Decision {
        if self.learned().is_some() {
            Decision::Yes
        } else {
            Decision::Undecided
        }
    }

    fn is_done(&self) -> bool {
        self.round >= self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::simulator::SimConfig;
    use bcc_graphs::generators;

    #[test]
    fn names() {
        assert_eq!(ConstantDecision::yes().name(), "constant-yes");
        assert_eq!(ConstantDecision::no().name(), "constant-no");
        assert_eq!(EchoBit.name(), "echo-bit");
        assert_eq!(IdBroadcast::new().name(), "id-broadcast");
    }

    #[test]
    fn echo_runs_to_limit() {
        let i = Instance::new_kt1(generators::cycle(3)).unwrap();
        let out = SimConfig::bcc1(7).run(&i, &EchoBit, 0);
        assert!(!out.completed());
        assert_eq!(out.stats().rounds, 7);
        assert!(out.any_undecided());
    }

    #[test]
    fn id_broadcast_learns_correct_ids() {
        // Run on a KT-0 instance and verify through the network that
        // each vertex's learned map matches the true wiring.
        let i = Instance::new_kt0(generators::cycle(8), 5).unwrap();
        let width = bits_needed(8);
        // Re-run manually so we can inspect the node programs.
        let algo = IdBroadcast::new();
        let mut programs: Vec<IdBroadcastNode> = (0..8)
            .map(|v| {
                let init = i.initial_knowledge(v, 1, 0);
                IdBroadcastNode {
                    schedule: BitSchedule::of_value(init.id, width),
                    accumulators: init
                        .port_labels
                        .iter()
                        .map(|&l| (l, BitAccumulator::new(width)))
                        .collect(),
                    width,
                    round: 0,
                }
            })
            .collect();
        let _ = algo; // factory exercised above via trait in other tests
        for round in 0..width {
            let msgs: Vec<Message> = programs.iter_mut().map(|p| p.broadcast(round)).collect();
            for (v, program) in programs.iter_mut().enumerate() {
                let entries: Vec<(u64, Message)> = (0..7)
                    .map(|p| {
                        let peer = i.network().peer_of(v, p);
                        (i.network().port_label(v, p), msgs[peer].clone())
                    })
                    .collect();
                let inbox = Inbox::new(entries);
                program.receive(round, &inbox);
            }
        }
        for (v, program) in programs.iter().enumerate() {
            let learned = program.learned().expect("complete after width rounds");
            for (label, id) in learned {
                // Find the port with this label and check the true peer.
                let p = (0..7)
                    .find(|&p| i.network().port_label(v, p) == label)
                    .unwrap();
                let peer = i.network().peer_of(v, p);
                assert_eq!(i.network().id(peer), id, "vertex {v} port label {label}");
            }
        }
    }
}
