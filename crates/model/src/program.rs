//! The node-program interface: what an algorithm is in the `BCC(b)`
//! model.

use crate::network::KnowledgeMode;
use crate::symbol::Message;

/// A vertex's YES/NO output for decision problems.
///
/// Per Section 1.2, the *system* output is YES iff **all** vertices
/// output YES; any NO (or missing) vertex output makes the system
/// answer NO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// The vertex votes YES.
    Yes,
    /// The vertex votes NO.
    No,
    /// The vertex has not decided (treated as NO by the system rule,
    /// but distinguished so harnesses can detect truncation).
    Undecided,
}

/// Everything a vertex knows before round 1 (Section 1.2): its ID,
/// `n`, the bandwidth, its port labels, which ports carry input-graph
/// edges, all IDs (KT-1 only), and the shared random string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitialKnowledge {
    /// This vertex's unique ID.
    pub id: u64,
    /// Number of vertices in the network.
    pub n: usize,
    /// Bits per broadcast (`b` of `BCC(b)`).
    pub bandwidth: usize,
    /// KT-0 or KT-1.
    pub mode: KnowledgeMode,
    /// The labels of the `n−1` ports, in port-index order. In KT-0
    /// these are `1..n−1`; in KT-1 they are the peer IDs.
    pub port_labels: Vec<u64>,
    /// Labels of the ports that carry input-graph edges, sorted.
    pub input_port_labels: Vec<u64>,
    /// All vertex IDs (sorted), available only in KT-1.
    pub all_ids: Option<Vec<u64>>,
    /// Seed of the shared (public-coin) random string; identical at
    /// every vertex, per the paper's public-coin convention.
    pub coin_seed: u64,
}

impl InitialKnowledge {
    /// The degree of this vertex in the input graph.
    pub fn input_degree(&self) -> usize {
        self.input_port_labels.len()
    }

    /// In KT-1, the IDs of the input-graph neighbors (equal to the
    /// input port labels). Returns `None` in KT-0, where neighbor IDs
    /// are unknown.
    pub fn neighbor_ids(&self) -> Option<&[u64]> {
        match self.mode {
            KnowledgeMode::Kt1 => Some(&self.input_port_labels),
            KnowledgeMode::Kt0 => None,
        }
    }
}

/// The messages a vertex receives in one round: one [`Message`] per
/// port, tagged with the port label, in port-index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inbox {
    entries: Vec<(u64, Message)>,
}

impl Inbox {
    /// Creates an inbox from `(port label, message)` pairs in
    /// port-index order.
    pub fn new(entries: Vec<(u64, Message)>) -> Self {
        Inbox { entries }
    }

    /// The `(label, message)` pairs in port-index order.
    pub fn entries(&self) -> &[(u64, Message)] {
        &self.entries
    }

    /// The message received on the port with the given label.
    pub fn by_label(&self, label: u64) -> Option<&Message> {
        self.entries
            .iter()
            .find(|(l, _)| *l == label)
            .map(|(_, m)| m)
    }

    /// Number of ports (always `n − 1`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if there are no ports (the 1-vertex network).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries sorted by port label — the canonical view used for
    /// state comparison.
    pub fn sorted_by_label(&self) -> Vec<(u64, Message)> {
        let mut v = self.entries.clone();
        v.sort_by_key(|(l, _)| *l);
        v
    }
}

/// The per-vertex program: a deterministic state machine driven by the
/// synchronous round structure. Randomized algorithms draw from the
/// public-coin seed in their [`InitialKnowledge`], which keeps each
/// program a deterministic function of (initial knowledge, received
/// transcript) — the property the indistinguishability machinery
/// (Lemma 3.4) relies on.
pub trait NodeProgram {
    /// The message to broadcast in round `round` (0-based). Called
    /// before any round-`round` message is delivered. Return a message
    /// of at most `bandwidth` symbols; it is padded with `⊥` to the
    /// bandwidth.
    fn broadcast(&mut self, round: usize) -> Message;

    /// Delivers the round's received messages (one per port).
    fn receive(&mut self, round: usize, inbox: &Inbox);

    /// The vertex's current decision (for decision problems).
    fn decide(&self) -> Decision;

    /// The vertex's component-label output (for
    /// `ConnectedComponents`); `None` if the problem is a decision
    /// problem or the label is not yet known.
    fn component_label(&self) -> Option<u64> {
        None
    }

    /// For algorithms that output a spanning structure (e.g. MST):
    /// the chosen edges as `(smaller id, larger id)` pairs, sorted.
    /// `None` for decision algorithms or before completion.
    fn spanning_edges(&self) -> Option<Vec<(u64, u64)>> {
        None
    }

    /// Whether this vertex has finished; the simulator stops when all
    /// vertices are done (or the round limit is hit).
    fn is_done(&self) -> bool;
}

/// An algorithm: a factory spawning one [`NodeProgram`] per vertex
/// from its initial knowledge.
pub trait Algorithm {
    /// A short human-readable name for reports.
    fn name(&self) -> &str;

    /// Spawns the program for one vertex.
    fn spawn(&self, init: InitialKnowledge) -> Box<dyn NodeProgram>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    #[test]
    fn inbox_lookup() {
        let inbox = Inbox::new(vec![
            (3, Message::single(Symbol::One)),
            (1, Message::single(Symbol::Zero)),
        ]);
        assert_eq!(inbox.len(), 2);
        assert!(!inbox.is_empty());
        assert_eq!(inbox.by_label(3).unwrap().symbol(), Symbol::One);
        assert!(inbox.by_label(9).is_none());
        let sorted = inbox.sorted_by_label();
        assert_eq!(sorted[0].0, 1);
        assert_eq!(sorted[1].0, 3);
    }

    #[test]
    fn initial_knowledge_helpers() {
        let ik = InitialKnowledge {
            id: 7,
            n: 5,
            bandwidth: 1,
            mode: KnowledgeMode::Kt1,
            port_labels: vec![1, 2, 3, 4],
            input_port_labels: vec![2, 4],
            all_ids: Some(vec![1, 2, 3, 4, 7]),
            coin_seed: 0,
        };
        assert_eq!(ik.input_degree(), 2);
        assert_eq!(ik.neighbor_ids(), Some(&[2u64, 4][..]));
        let kt0 = InitialKnowledge {
            mode: KnowledgeMode::Kt0,
            all_ids: None,
            ..ik
        };
        assert_eq!(kt0.neighbor_ids(), None);
    }
}
