//! Typed postmortem artifacts for transport failures.
//!
//! When a multi-process transport backend loses a worker (or trips a
//! wire-protocol violation), the driver-side flight recorder — a
//! fixed-size ring of the last wire events exchanged with each
//! worker — is frozen into a [`Postmortem`]: which backend failed,
//! the typed error detail, and every worker's health plus its ring.
//! The artifact serializes as JSONL under its own `bcc_postmortem`
//! schema key so no other parser in the workspace accepts its bytes
//! (the same isolation trick the `bcc_prof_wall` sidecar uses), and
//! `bcc-report --postmortem` renders it for humans.
//!
//! [`TransportHealth`] is the live-observation subset of the same
//! shape: per-worker health without the rings, cheap enough for
//! `bcc-serve` to embed in every `observe` snapshot.

use bcc_metrics::json::{self, JsonValue};
use std::fmt::Write as _;

/// Schema version of the postmortem JSONL artifact.
pub const POSTMORTEM_SCHEMA_VERSION: u64 = 1;

/// How many wire events the flight recorder retains per worker.
/// Old events are evicted oldest-first once a worker's ring is full.
pub const FLIGHT_RING_CAPACITY: usize = 32;

/// One wire-level event as seen from the driver side of a worker
/// link. Everything here is derived from the rendered line itself —
/// never from a clock — so rings are deterministic for a fixed
/// command interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireEvent {
    /// `"send"` (driver → worker) or `"recv"` (worker → driver).
    pub dir: String,
    /// Wire message kind (`open`, `round`, `view`, `closed`, ...).
    pub kind: String,
    /// Session id the message belonged to (0 for sessionless kinds
    /// such as `hello`, `shutdown`, `bye`).
    pub session: u64,
    /// Round number for `round`/`view` messages (0 otherwise).
    pub round: u64,
    /// Length in bytes of the rendered JSONL line.
    pub bytes: u64,
}

/// One worker's health snapshot plus (in postmortems) its flight ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerHealth {
    /// Worker rank within its group.
    pub rank: usize,
    /// Whether the worker process was still reachable when the
    /// snapshot was taken.
    pub alive: bool,
    /// How many times this rank's group has been respawned by its
    /// factory since the factory was created.
    pub respawns: u64,
    /// Number of sessions currently open on this worker.
    pub sessions: u64,
    /// The flight-recorder ring, oldest event first. Empty in live
    /// health snapshots; populated (up to [`FLIGHT_RING_CAPACITY`]
    /// events) in postmortems.
    pub ring: Vec<WireEvent>,
}

/// Live transport health: the backend label and one entry per
/// worker. Rings are omitted — this is the cheap shape `bcc-serve`
/// streams in `observe` snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransportHealth {
    /// Backend label, e.g. `"sockets:4"`.
    pub backend: String,
    /// Per-worker health, in rank order.
    pub workers: Vec<WorkerHealth>,
}

/// A frozen failure record: the backend, the error that fired, and
/// every worker's health including its flight ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Postmortem {
    /// Backend label, e.g. `"sockets:4"`.
    pub backend: String,
    /// Display rendering of the `TransportError` that triggered the
    /// dump.
    pub error: String,
    /// Per-worker health with rings, in rank order.
    pub workers: Vec<WorkerHealth>,
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a list of incidents as the JSONL postmortem artifact: a
/// header line, then per incident one `incident` line, one `worker`
/// line per worker, and one `wire` line per retained ring event. Key
/// order is fixed, so equal inputs render byte-identically.
pub fn postmortems_to_jsonl(incidents: &[Postmortem]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"bcc_postmortem\",\"schema\":{POSTMORTEM_SCHEMA_VERSION},\"incidents\":{}}}",
        incidents.len()
    );
    for (index, pm) in incidents.iter().enumerate() {
        let _ = writeln!(
            out,
            "{{\"type\":\"incident\",\"index\":{index},\"backend\":\"{}\",\"error\":\"{}\"}}",
            escape(&pm.backend),
            escape(&pm.error)
        );
        for w in &pm.workers {
            let _ = writeln!(
                out,
                "{{\"type\":\"worker\",\"incident\":{index},\"rank\":{},\"alive\":{},\
                 \"respawns\":{},\"sessions\":{},\"ring\":{}}}",
                w.rank,
                w.alive,
                w.respawns,
                w.sessions,
                w.ring.len()
            );
            for e in &w.ring {
                let _ = writeln!(
                    out,
                    "{{\"type\":\"wire\",\"incident\":{index},\"rank\":{},\"dir\":\"{}\",\
                     \"kind\":\"{}\",\"session\":{},\"round\":{},\"bytes\":{}}}",
                    w.rank,
                    escape(&e.dir),
                    escape(&e.kind),
                    e.session,
                    e.round,
                    e.bytes
                );
            }
        }
    }
    out
}

fn field_u64(obj: &JsonValue, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer '{key}'"))
}

fn field_str(obj: &JsonValue, key: &str, ctx: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: missing or non-string '{key}'"))
}

fn field_bool(obj: &JsonValue, key: &str, ctx: &str) -> Result<bool, String> {
    match obj.get(key) {
        Some(JsonValue::Bool(b)) => Ok(*b),
        _ => Err(format!("{ctx}: missing or non-bool '{key}'")),
    }
}

/// Parses a postmortem artifact previously rendered by
/// [`postmortems_to_jsonl`].
///
/// # Errors
///
/// Rejects missing/foreign headers (so profile, metrics, and wall
/// files can never be mistaken for postmortems), unknown line types,
/// out-of-range incident indices, and malformed fields — each with a
/// line number.
pub fn parse_jsonl(text: &str) -> Result<Vec<Postmortem>, String> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines.next().ok_or("empty postmortem input")?;
    let header = json::parse(header).map_err(|e| format!("line 1: {e}"))?;
    match header.get("type").and_then(JsonValue::as_str) {
        Some("bcc_postmortem") => {}
        _ => return Err("line 1: not a bcc_postmortem header".to_string()),
    }
    let schema = field_u64(&header, "schema", "line 1")?;
    if schema != POSTMORTEM_SCHEMA_VERSION {
        return Err(format!("line 1: unsupported schema {schema}"));
    }
    let expected = field_u64(&header, "incidents", "line 1")? as usize;

    let mut incidents: Vec<Postmortem> = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let obj = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ctx = format!("line {lineno}");
        match obj.get("type").and_then(JsonValue::as_str) {
            Some("incident") => {
                let index = field_u64(&obj, "index", &ctx)? as usize;
                if index != incidents.len() {
                    return Err(format!("{ctx}: incident index {index} out of order"));
                }
                incidents.push(Postmortem {
                    backend: field_str(&obj, "backend", &ctx)?,
                    error: field_str(&obj, "error", &ctx)?,
                    workers: Vec::new(),
                });
            }
            Some("worker") => {
                let incident = field_u64(&obj, "incident", &ctx)? as usize;
                let pm = incidents
                    .get_mut(incident)
                    .ok_or_else(|| format!("{ctx}: worker for unknown incident {incident}"))?;
                pm.workers.push(WorkerHealth {
                    rank: field_u64(&obj, "rank", &ctx)? as usize,
                    alive: field_bool(&obj, "alive", &ctx)?,
                    respawns: field_u64(&obj, "respawns", &ctx)?,
                    sessions: field_u64(&obj, "sessions", &ctx)?,
                    ring: Vec::new(),
                });
            }
            Some("wire") => {
                let incident = field_u64(&obj, "incident", &ctx)? as usize;
                let rank = field_u64(&obj, "rank", &ctx)? as usize;
                let pm = incidents
                    .get_mut(incident)
                    .ok_or_else(|| format!("{ctx}: wire for unknown incident {incident}"))?;
                let worker = pm
                    .workers
                    .iter_mut()
                    .find(|w| w.rank == rank)
                    .ok_or_else(|| format!("{ctx}: wire for unknown rank {rank}"))?;
                worker.ring.push(WireEvent {
                    dir: field_str(&obj, "dir", &ctx)?,
                    kind: field_str(&obj, "kind", &ctx)?,
                    session: field_u64(&obj, "session", &ctx)?,
                    round: field_u64(&obj, "round", &ctx)?,
                    bytes: field_u64(&obj, "bytes", &ctx)?,
                });
            }
            Some(other) => return Err(format!("{ctx}: unknown type '{other}'")),
            None => return Err(format!("{ctx}: missing 'type'")),
        }
    }
    if incidents.len() != expected {
        return Err(format!(
            "header promised {expected} incidents, found {}",
            incidents.len()
        ));
    }
    Ok(incidents)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Postmortem> {
        vec![Postmortem {
            backend: "sockets:2".to_string(),
            error: "worker 1 died: connection reset".to_string(),
            workers: vec![
                WorkerHealth {
                    rank: 0,
                    alive: true,
                    respawns: 0,
                    sessions: 1,
                    ring: vec![WireEvent {
                        dir: "send".to_string(),
                        kind: "round".to_string(),
                        session: 3,
                        round: 2,
                        bytes: 118,
                    }],
                },
                WorkerHealth {
                    rank: 1,
                    alive: false,
                    respawns: 1,
                    sessions: 1,
                    ring: vec![WireEvent {
                        dir: "recv".to_string(),
                        kind: "view".to_string(),
                        session: 3,
                        round: 1,
                        bytes: 204,
                    }],
                },
            ],
        }]
    }

    #[test]
    fn round_trips() {
        let incidents = sample();
        let text = postmortems_to_jsonl(&incidents);
        assert_eq!(parse_jsonl(&text).unwrap(), incidents);
    }

    #[test]
    fn empty_artifact_still_parses() {
        let text = postmortems_to_jsonl(&[]);
        assert_eq!(parse_jsonl(&text).unwrap(), vec![]);
    }

    #[test]
    fn header_line_shape_is_pinned() {
        let text = postmortems_to_jsonl(&[]);
        assert_eq!(
            text.lines().next().unwrap(),
            "{\"type\":\"bcc_postmortem\",\"schema\":1,\"incidents\":0}"
        );
    }

    #[test]
    fn foreign_headers_are_rejected() {
        for foreign in [
            "{\"type\":\"meta\",\"schema\":1,\"level\":\"core\"}",
            "{\"bcc_prof_wall\":1,\"entries\":0}",
            "{\"bcc_prof\":1}",
        ] {
            assert!(parse_jsonl(foreign).is_err(), "accepted {foreign}");
        }
    }

    #[test]
    fn unknown_line_types_are_rejected() {
        let text = format!("{}{{\"type\":\"surprise\"}}\n", postmortems_to_jsonl(&[]));
        let err = parse_jsonl(&text).unwrap_err();
        assert!(err.contains("unknown type 'surprise'"), "{err}");
    }

    #[test]
    fn incident_count_mismatch_is_rejected() {
        let text = "{\"type\":\"bcc_postmortem\",\"schema\":1,\"incidents\":2}\n";
        let err = parse_jsonl(text).unwrap_err();
        assert!(err.contains("promised 2"), "{err}");
    }

    #[test]
    fn error_detail_is_escaped() {
        let incidents = vec![Postmortem {
            backend: "sockets:1".to_string(),
            error: "line with \"quotes\"\nand newline".to_string(),
            workers: vec![],
        }];
        let text = postmortems_to_jsonl(&incidents);
        assert_eq!(text.lines().count(), 2);
        assert_eq!(parse_jsonl(&text).unwrap(), incidents);
    }
}
