//! A `BCC(b)` instance: network + input graph.

use crate::error::ModelError;
use crate::network::{KnowledgeMode, Network};
use crate::program::InitialKnowledge;
use bcc_graphs::Graph;

/// A complete problem instance: the clique [`Network`] plus the input
/// graph (a subset of the network edges).
///
/// # Example
///
/// ```
/// use bcc_model::Instance;
/// use bcc_graphs::generators;
///
/// let i = Instance::new_kt0(generators::cycle(5), 7).unwrap();
/// assert_eq!(i.num_vertices(), 5);
/// assert_eq!(i.input().num_edges(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    network: Network,
    input: Graph,
}

impl Instance {
    /// Builds an instance from an existing network and input graph.
    ///
    /// # Errors
    ///
    /// Returns an error if the input graph has more vertices than the
    /// network.
    pub fn new(network: Network, input: Graph) -> Result<Self, ModelError> {
        if input.num_vertices() != network.num_vertices() {
            return Err(ModelError::GraphTooLarge {
                graph: input.num_vertices(),
                network: network.num_vertices(),
            });
        }
        Ok(Instance { network, input })
    }

    /// A KT-1 instance with IDs `0..n`.
    ///
    /// # Errors
    ///
    /// Propagates network-construction errors.
    pub fn new_kt1(input: Graph) -> Result<Self, ModelError> {
        let ids = (0..input.num_vertices() as u64).collect();
        Instance::new(Network::kt1(ids)?, input)
    }

    /// A KT-1 instance with explicit IDs (`ids[v]` = ID of vertex `v`).
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate IDs or size mismatch.
    pub fn new_kt1_with_ids(input: Graph, ids: Vec<u64>) -> Result<Self, ModelError> {
        if ids.len() != input.num_vertices() {
            return Err(ModelError::IdCountMismatch {
                got: ids.len(),
                expected: input.num_vertices(),
            });
        }
        Instance::new(Network::kt1(ids)?, input)
    }

    /// A KT-0 instance with IDs `0..n` and seeded random port wiring.
    ///
    /// # Errors
    ///
    /// Propagates network-construction errors.
    pub fn new_kt0(input: Graph, wiring_seed: u64) -> Result<Self, ModelError> {
        let ids = (0..input.num_vertices() as u64).collect();
        Instance::new(Network::kt0_seeded(ids, wiring_seed)?, input)
    }

    /// A KT-0 instance with the canonical (identity) port wiring,
    /// convenient for exhaustive enumerations where the wiring must be
    /// fixed across all instances (Definition 3.6 compares instances
    /// over the *same* network).
    ///
    /// # Errors
    ///
    /// Propagates network-construction errors.
    pub fn new_kt0_canonical(input: Graph) -> Result<Self, ModelError> {
        let ids = (0..input.num_vertices() as u64).collect();
        Instance::new(Network::kt0_canonical(ids)?, input)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.network.num_vertices()
    }

    /// The knowledge mode.
    pub fn mode(&self) -> KnowledgeMode {
        self.network.mode()
    }

    /// The input graph.
    pub fn input(&self) -> &Graph {
        &self.input
    }

    /// The network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the network wiring (used by the crossing
    /// machinery; KT-1 networks refuse rewiring internally).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Replaces the input edge set, keeping the network.
    ///
    /// # Errors
    ///
    /// Returns an error if the new graph's vertex count differs.
    pub fn set_input(&mut self, input: Graph) -> Result<(), ModelError> {
        if input.num_vertices() != self.network.num_vertices() {
            return Err(ModelError::GraphTooLarge {
                graph: input.num_vertices(),
                network: self.network.num_vertices(),
            });
        }
        self.input = input;
        Ok(())
    }

    /// The initial knowledge of vertex `v` per Section 1.2: its ID,
    /// `n`, its port labels, which ports carry input edges, (KT-1) all
    /// IDs, and the shared random string (public-coin seed).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn initial_knowledge(
        &self,
        v: usize,
        bandwidth: usize,
        coin_seed: u64,
    ) -> InitialKnowledge {
        let n = self.num_vertices();
        let port_labels: Vec<u64> = (0..n - 1).map(|p| self.network.port_label(v, p)).collect();
        let mut input_port_labels: Vec<u64> = self
            .input
            .neighbors(v)
            .iter()
            .map(|&w| self.network.label_of_peer(v, w))
            .collect();
        input_port_labels.sort_unstable();
        let all_ids = match self.mode() {
            KnowledgeMode::Kt0 => None,
            KnowledgeMode::Kt1 => {
                let mut ids = self.network.ids().to_vec();
                ids.sort_unstable();
                Some(ids)
            }
        };
        InitialKnowledge {
            id: self.network.id(v),
            n,
            bandwidth,
            mode: self.mode(),
            port_labels,
            input_port_labels,
            all_ids,
            coin_seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graphs::generators;

    #[test]
    fn kt1_initial_knowledge() {
        let i = Instance::new_kt1(generators::cycle(5)).unwrap();
        let ik = i.initial_knowledge(0, 1, 99);
        assert_eq!(ik.id, 0);
        assert_eq!(ik.n, 5);
        assert_eq!(ik.bandwidth, 1);
        assert_eq!(ik.coin_seed, 99);
        assert_eq!(ik.mode, KnowledgeMode::Kt1);
        // Vertex 0's cycle neighbors are 1 and 4; labels are their ids.
        assert_eq!(ik.input_port_labels, vec![1, 4]);
        assert_eq!(ik.all_ids, Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(ik.port_labels, vec![1, 2, 3, 4]);
    }

    #[test]
    fn kt0_initial_knowledge_hides_ids() {
        let i = Instance::new_kt0(generators::cycle(5), 3).unwrap();
        let ik = i.initial_knowledge(2, 1, 0);
        assert_eq!(ik.mode, KnowledgeMode::Kt0);
        assert!(ik.all_ids.is_none());
        assert_eq!(ik.port_labels, vec![1, 2, 3, 4]);
        assert_eq!(ik.input_port_labels.len(), 2);
        // Input port labels are port numbers, not ids.
        for &l in &ik.input_port_labels {
            assert!((1..=4).contains(&l));
        }
    }

    #[test]
    fn size_mismatch_rejected() {
        let net = Network::kt1(vec![0, 1, 2]).unwrap();
        assert!(Instance::new(net, generators::cycle(4)).is_err());
        let mut i = Instance::new_kt1(generators::cycle(4)).unwrap();
        assert!(i.set_input(generators::cycle(5)).is_err());
        assert!(i.set_input(generators::cycle(4).complement()).is_ok());
    }

    #[test]
    fn id_count_mismatch() {
        assert!(matches!(
            Instance::new_kt1_with_ids(generators::cycle(3), vec![1, 2]),
            Err(ModelError::IdCountMismatch {
                got: 2,
                expected: 3
            })
        ));
    }

    #[test]
    fn canonical_wiring_is_deterministic() {
        let a = Instance::new_kt0_canonical(generators::cycle(6)).unwrap();
        let b = Instance::new_kt0_canonical(generators::cycle(6)).unwrap();
        assert_eq!(a, b);
    }
}
