//! The socket backend is pinned against the in-process oracle: for
//! the same instance, algorithm, and coin, a run over worker
//! subprocesses must be indistinguishable from a `LocalTransport`
//! run — same decisions, same stats, same per-vertex transcripts.

use bcc_graphs::generators;
use bcc_model::testing::{EchoBit, IdBroadcast};
use bcc_model::{runs_indistinguishable, Instance, SimConfig};
use bcc_transport::{SocketFactory, TransportFactory, WorkerCmd};
use std::path::PathBuf;
use std::sync::Arc;

fn worker_bin() -> WorkerCmd {
    WorkerCmd::Bin(PathBuf::from(env!("CARGO_BIN_EXE_bcc-transport-worker")))
}

fn assert_matches_oracle(workers: usize, n: usize, wiring: u64, coin: u64) {
    let factory: Arc<dyn TransportFactory> =
        Arc::new(SocketFactory::with_command(workers, worker_bin()));
    let inst = Instance::new_kt0(generators::cycle(n), wiring).unwrap();
    let oracle = SimConfig::bcc1(4).run(&inst, &EchoBit, coin);
    let socket = SimConfig::bcc1(4)
        .transport(Arc::clone(&factory))
        .run(&inst, &EchoBit, coin);
    assert_eq!(
        socket.transport_failure(),
        None,
        "socket run must not degrade"
    );
    assert_eq!(oracle.decisions(), socket.decisions());
    assert_eq!(oracle.stats(), socket.stats());
    assert!(runs_indistinguishable(&oracle, &socket));
    for v in 0..n {
        assert_eq!(
            oracle.transcript(v),
            socket.transcript(v),
            "transcript of vertex {v} diverged (workers={workers}, n={n})"
        );
    }
}

#[test]
fn two_worker_runs_match_local_oracle() {
    for (n, wiring, coin) in [(3, 0, 0), (4, 1, 7), (7, 42, 3), (10, 9, 1)] {
        assert_matches_oracle(2, n, wiring, coin);
    }
}

#[test]
fn four_worker_runs_match_local_oracle() {
    // n = 3 with 4 workers exercises empty node ranges.
    for (n, wiring, coin) in [(3, 5, 0), (8, 2, 11)] {
        assert_matches_oracle(4, n, wiring, coin);
    }
}

#[test]
fn sessions_multiplex_over_one_worker_group() {
    // One factory, many runs: each run is its own session on the
    // shared worker group, and later runs are unaffected by earlier
    // ones.
    let factory: Arc<dyn TransportFactory> = Arc::new(SocketFactory::with_command(2, worker_bin()));
    for seed in 0u64..6 {
        let inst = Instance::new_kt0(generators::cycle(6), seed).unwrap();
        let oracle = SimConfig::bcc1(3).run(&inst, &EchoBit, seed);
        let socket = SimConfig::bcc1(3)
            .transport(Arc::clone(&factory))
            .run(&inst, &EchoBit, seed);
        assert_eq!(socket.transport_failure(), None);
        assert!(runs_indistinguishable(&oracle, &socket));
        assert_eq!(oracle.stats(), socket.stats());
    }
}

#[test]
fn multi_round_algorithm_completes_identically() {
    let factory: Arc<dyn TransportFactory> = Arc::new(SocketFactory::with_command(3, worker_bin()));
    let inst = Instance::new_kt0(generators::cycle(9), 4).unwrap();
    let oracle = SimConfig::bcc1(100).run(&inst, &IdBroadcast::new(), 0);
    let socket = SimConfig::bcc1(100)
        .transport(factory)
        .run(&inst, &IdBroadcast::new(), 0);
    assert_eq!(socket.transport_failure(), None);
    assert!(socket.completed());
    assert_eq!(oracle.stats(), socket.stats());
    assert!(runs_indistinguishable(&oracle, &socket));
}
