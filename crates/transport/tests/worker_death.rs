//! Dead workers surface as typed `TransportError`s and degraded
//! all-Undecided outcomes — never a panic, never a hang.
//!
//! This lives in its own integration-test binary because the mid-run
//! death test sets a process-wide environment knob that spawned
//! workers inherit; keeping it out of `socket_equivalence.rs` keeps
//! that knob away from the healthy-path tests.

use bcc_graphs::generators;
use bcc_model::testing::EchoBit;
use bcc_model::{Decision, Instance, SimConfig, TransportError};
use bcc_transport::worker::EXIT_AFTER_ENV;
use bcc_transport::{SocketFactory, TransportFactory, WorkerCmd};
use std::path::PathBuf;
use std::sync::Arc;

fn worker_bin() -> WorkerCmd {
    WorkerCmd::Bin(PathBuf::from(env!("CARGO_BIN_EXE_bcc-transport-worker")))
}

#[test]
fn spawn_failure_is_a_fast_typed_error() {
    // /bin/false exits immediately without connecting; the accept
    // loop's liveness check must fail fast with a Spawn error.
    let factory: Arc<dyn TransportFactory> = Arc::new(SocketFactory::with_command(
        2,
        WorkerCmd::Bin(PathBuf::from("/bin/false")),
    ));
    let inst = Instance::new_kt1(generators::cycle(4)).unwrap();
    let out = SimConfig::bcc1(2)
        .transport(factory)
        .run(&inst, &EchoBit, 0);
    match out.transport_failure() {
        Some(TransportError::Spawn { .. }) => {}
        other => panic!("expected a Spawn error, got {other:?}"),
    }
    assert!(out.any_undecided());
    assert_eq!(out.system_decision(), Decision::No);
    assert!(!out.completed());
}

#[test]
fn mid_run_death_degrades_and_respawn_recovers() {
    let inst = Instance::new_kt1(generators::cycle(5)).unwrap();
    let oracle = SimConfig::bcc1(4).run(&inst, &EchoBit, 0);

    // Workers serve one round, then die on the next.
    std::env::set_var(EXIT_AFTER_ENV, "1");
    let factory: Arc<dyn TransportFactory> = Arc::new(SocketFactory::with_command(2, worker_bin()));
    let out = SimConfig::bcc1(4)
        .transport(Arc::clone(&factory))
        .run(&inst, &EchoBit, 0);
    std::env::remove_var(EXIT_AFTER_ENV);

    match out.transport_failure() {
        Some(TransportError::WorkerDead { .. }) => {}
        other => panic!("expected a WorkerDead error, got {other:?}"),
    }
    assert!(out.decisions().iter().all(|d| *d == Decision::Undecided));
    assert_eq!(out.system_decision(), Decision::No);

    // The knob is gone, so the factory's next create() respawns a
    // healthy group and the run matches the oracle again.
    let healed = SimConfig::bcc1(4)
        .transport(factory)
        .run(&inst, &EchoBit, 0);
    assert_eq!(healed.transport_failure(), None);
    assert_eq!(healed.stats(), oracle.stats());
    assert_eq!(healed.decisions(), oracle.decisions());
}
