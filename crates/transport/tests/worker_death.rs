//! Dead workers surface as typed `TransportError`s and degraded
//! all-Undecided outcomes — never a panic, never a hang.
//!
//! This lives in its own integration-test binary because the mid-run
//! death test sets a process-wide environment knob that spawned
//! workers inherit; keeping it out of `socket_equivalence.rs` keeps
//! that knob away from the healthy-path tests.

use bcc_graphs::generators;
use bcc_metrics::{MetricsHub, MetricsLevel};
use bcc_model::testing::EchoBit;
use bcc_model::{Decision, Instance, SimConfig, TransportError};
use bcc_trace::{Collector, TraceLevel};
use bcc_transport::worker::EXIT_AFTER_ENV;
use bcc_transport::{SocketFactory, TransportFactory, WorkerCmd};
use std::path::PathBuf;
use std::sync::Arc;

fn worker_bin() -> WorkerCmd {
    WorkerCmd::Bin(PathBuf::from(env!("CARGO_BIN_EXE_bcc-transport-worker")))
}

#[test]
fn spawn_failure_is_a_fast_typed_error() {
    // /bin/false exits immediately without connecting; the accept
    // loop's liveness check must fail fast with a Spawn error.
    let factory: Arc<dyn TransportFactory> = Arc::new(SocketFactory::with_command(
        2,
        WorkerCmd::Bin(PathBuf::from("/bin/false")),
    ));
    let inst = Instance::new_kt1(generators::cycle(4)).unwrap();
    let out = SimConfig::bcc1(2)
        .transport(factory)
        .run(&inst, &EchoBit, 0);
    match out.transport_failure() {
        Some(TransportError::Spawn { .. }) => {}
        other => panic!("expected a Spawn error, got {other:?}"),
    }
    assert!(out.any_undecided());
    assert_eq!(out.system_decision(), Decision::No);
    assert!(!out.completed());
}

#[test]
fn mid_run_death_degrades_and_respawn_recovers() {
    let inst = Instance::new_kt1(generators::cycle(5)).unwrap();
    let oracle = SimConfig::bcc1(4).run(&inst, &EchoBit, 0);

    // Workers serve one round, then die on the next.
    std::env::set_var(EXIT_AFTER_ENV, "1");
    let factory: Arc<dyn TransportFactory> = Arc::new(SocketFactory::with_command(2, worker_bin()));
    let out = SimConfig::bcc1(4)
        .transport(Arc::clone(&factory))
        .run(&inst, &EchoBit, 0);
    std::env::remove_var(EXIT_AFTER_ENV);

    match out.transport_failure() {
        Some(TransportError::WorkerDead { .. }) => {}
        other => panic!("expected a WorkerDead error, got {other:?}"),
    }
    assert!(out.decisions().iter().all(|d| *d == Decision::Undecided));
    assert_eq!(out.system_decision(), Decision::No);

    // The knob is gone, so the factory's next create() respawns a
    // healthy group and the run matches the oracle again.
    let healed = SimConfig::bcc1(4)
        .transport(factory)
        .run(&inst, &EchoBit, 0);
    assert_eq!(healed.transport_failure(), None);
    assert_eq!(healed.stats(), oracle.stats());
    assert_eq!(healed.decisions(), oracle.decisions());
}

/// Regression test for the silent-drop bug: when one worker dies, the
/// survivors' telemetry must be salvaged (their open sessions closed
/// and their buffers merged), the dead rank marked with an explicit
/// `truncated` counter, and the incident frozen into a postmortem —
/// both on the error itself and via the factory.
#[test]
fn survivor_telemetry_is_salvaged_and_dead_rank_truncated() {
    let inst = Instance::new_kt1(generators::cycle(5)).unwrap();

    // Only rank 0 dies (after serving one round); rank 1 survives.
    std::env::set_var(EXIT_AFTER_ENV, "1@0");
    let factory = Arc::new(SocketFactory::with_command(2, worker_bin()));
    let out = SimConfig::bcc1(4)
        .transport(Arc::clone(&factory) as Arc<dyn TransportFactory>)
        .run(&inst, &EchoBit, 0);
    std::env::remove_var(EXIT_AFTER_ENV);

    // The error carries the frozen flight recorder.
    let err = match out.transport_failure() {
        Some(err @ TransportError::WorkerDead { rank: 0, .. }) => err,
        other => panic!("expected rank 0 WorkerDead, got {other:?}"),
    };
    let pm = err.postmortem().expect("postmortem travels on the error");
    assert_eq!(pm.backend, "sockets:2");
    assert_eq!(pm.workers.len(), 2);
    assert!(!pm.workers[0].alive, "rank 0 died");
    assert!(pm.workers[1].alive, "rank 1 survived");
    assert!(
        !pm.workers[0].ring.is_empty(),
        "dead rank's ring holds its last wire events"
    );

    // The same incident is queryable from the factory.
    let incidents = factory.take_postmortems();
    assert_eq!(incidents.len(), 1);
    assert_eq!(&incidents[0], pm);
    assert!(factory.take_postmortems().is_empty(), "drained once");

    // Survivor telemetry was salvaged, not dropped: rank 1's closed
    // session flushes as counters and a trace unit, while rank 0's
    // lost session is marked truncated.
    let collector = Collector::new(TraceLevel::Events);
    let hub = MetricsHub::new(MetricsLevel::Core);
    factory.flush_telemetry(&collector, &hub);
    let dump = hub.finish();
    assert_eq!(dump.counter("transport.worker:0.truncated"), Some(1));
    assert_eq!(dump.counter("transport.worker:0.sessions"), None);
    assert_eq!(dump.counter("transport.worker:1.sessions"), Some(1));
    assert!(dump.counter("transport.worker:1.frames").unwrap_or(0) > 0);
    assert_eq!(dump.counter("transport.truncated"), Some(1));
    let trace = collector.finish();
    let units: std::collections::BTreeSet<&str> =
        trace.events().iter().map(|e| e.unit.as_str()).collect();
    assert!(units.contains("transport/worker:1"));
    assert!(
        !units.contains("transport/worker:0"),
        "a dead worker's unsent buffers cannot appear in the trace"
    );

    // Wall stats recorded the spawn; the wall sidecar is where
    // respawn counts surface, never the deterministic dump.
    let wall = factory.wall_stats();
    assert!(wall.iter().any(|(k, v)| k == "spawns" && *v >= 1));
}
