//! The `--transport-wall` sidecar: wall-clock-ish transport
//! quantities (spawn counts, accept-loop ticks, shutdown-time worker
//! lifetime totals) as JSONL with its own schema key.
//!
//! Mirrors the `bcc-prof` wall sidecar's isolation contract: the
//! header's `bcc_transport_wall` key makes the file mutually
//! exclusive with every deterministic artifact parser (the metrics
//! and postmortem readers reject it), so nondeterministic quantities
//! can never leak into a byte-compared dump.

use std::io::{self, Write};

/// Schema version stamped into the sidecar header.
pub const TRANSPORT_WALL_SCHEMA_VERSION: u64 = 1;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Writes the sidecar: a header line
/// `{"bcc_transport_wall":1,"entries":N}` followed by one
/// `{"stat":"<name>","value":N}` line per entry, sorted by name so
/// the file shape is stable (the *values* are wall-dependent; that is
/// the whole point of the sidecar).
pub fn write_transport_wall<W: Write>(entries: &[(String, u64)], w: &mut W) -> io::Result<()> {
    let mut sorted: Vec<&(String, u64)> = entries.iter().collect();
    sorted.sort();
    writeln!(
        w,
        "{{\"bcc_transport_wall\":{TRANSPORT_WALL_SCHEMA_VERSION},\"entries\":{}}}",
        sorted.len()
    )?;
    for (name, value) in sorted {
        writeln!(w, "{{\"stat\":\"{}\",\"value\":{value}}}", escape(name))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_shape_is_pinned_and_sorted() {
        let entries = vec![
            ("worker:0.lifetime.frames".to_string(), 12),
            ("accept_ticks".to_string(), 3),
            ("spawns".to_string(), 1),
        ];
        let mut out = Vec::new();
        write_transport_wall(&entries, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "{\"bcc_transport_wall\":1,\"entries\":3}\n\
             {\"stat\":\"accept_ticks\",\"value\":3}\n\
             {\"stat\":\"spawns\",\"value\":1}\n\
             {\"stat\":\"worker:0.lifetime.frames\",\"value\":12}\n"
        );
    }

    #[test]
    fn deterministic_artifact_parsers_reject_the_sidecar() {
        let mut out = Vec::new();
        write_transport_wall(&[("spawns".to_string(), 1)], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(bcc_model::postmortem::parse_jsonl(&text).is_err());
    }
}
