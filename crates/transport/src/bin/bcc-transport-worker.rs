//! Standalone worker binary for the socket transport. Normal hosts
//! (bcc-experiments, bcc-serve) re-exec *themselves* as workers via
//! `bcc_transport::maybe_run_worker`; this dedicated binary exists so
//! integration tests can launch workers without depending on a
//! particular host binary being built.

fn main() {
    bcc_transport::maybe_run_worker();
    eprintln!(
        "bcc-transport-worker is not meant to be run directly; it is \
         exec'd with {} <port> <rank> by a SocketFactory coordinator",
        bcc_transport::WORKER_FLAG
    );
    std::process::exit(2);
}
