//! The worker side of the multi-process backend: a blocking JSONL
//! read loop over one TCP connection to the coordinator.
//!
//! A worker is pure routing — it holds each open session's node range
//! and routes, and answers every `round` command by assembling
//! `(port_label, message)` inboxes for its nodes from the full outbox
//! it was sent. It never looks at a clock and never touches the
//! simulation state; the only records it keeps are *logical*
//! telemetry (frames routed, symbols forwarded, rounds served per
//! session) — pure functions of the commands served — which ride
//! home inside the `closed` acknowledgement and are absorbed by the
//! driver in rank order (DESIGN.md §15). Determinism of the merged
//! run stays the coordinator's job; the worker has no state that
//! could perturb it.
//!
//! EOF on the command stream is a clean shutdown (the coordinator
//! dropped the group); every malformed or unserviceable command is
//! answered with a wire-level `error` reply rather than a crash.

use crate::wire::{self, Command, Reply, SessionSpan, WorkerTelemetry};
use bcc_model::Message;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Test knob: when set to `N`, the worker serves `N` `round` commands
/// and then exits abruptly (no reply, no goodbye) on the next one —
/// simulating a mid-run crash for dead-worker tests. The form `N@R`
/// restricts the crash to rank `R`, so surviving-worker paths (buffer
/// salvage, truncation marking) are testable too.
pub const EXIT_AFTER_ENV: &str = "BCC_TRANSPORT_WORKER_EXIT_AFTER";

/// Telemetry knob: set to `0` or `off` to disable worker-side
/// trace/metrics recording entirely (the overhead-measurement
/// baseline for `BENCH_PR10.json`). Any other value — including
/// unset — leaves telemetry on.
pub const TELEMETRY_ENV: &str = "BCC_TRANSPORT_TELEMETRY";

/// The unit-class prefix of worker-origin telemetry: a worker's
/// trace events land under `transport/worker:<rank>`, so the
/// profiler files them under the `transport` unit class while the
/// rank stays visible in the unit name.
pub fn worker_unit(rank: usize) -> String {
    format!("transport/worker:{rank}")
}

struct SessionTelemetry {
    /// Instance size and owned-node count, captured at open for the
    /// session's trace summary.
    n: u64,
    nodes: u64,
    rounds: u64,
    frames: u64,
    symbols: u64,
}

struct Session {
    n: usize,
    /// `routes[i]` = `(port_label, peer)` pairs of node `lo + i`.
    routes: Vec<Vec<(u64, usize)>>,
    telemetry: Option<SessionTelemetry>,
}

/// Lifetime totals across every session the worker ever served;
/// shipped as a `telemetry` reply right before `bye`.
#[derive(Default)]
struct Lifetime {
    frames: u64,
    rounds: u64,
    sessions: u64,
    symbols: u64,
}

impl Lifetime {
    fn counters(&self) -> Vec<(String, u64)> {
        vec![
            ("frames".to_string(), self.frames),
            ("rounds".to_string(), self.rounds),
            ("sessions".to_string(), self.sessions),
            ("symbols".to_string(), self.symbols),
        ]
    }
}

/// Entry point for the worker process: `args` are the argv elements
/// after the worker flag, i.e. `[port, rank]`. Returns the process
/// exit code.
pub fn run_from_args(args: &[String]) -> i32 {
    match parse_and_serve(args) {
        Ok(()) => 0,
        Err(detail) => {
            eprintln!("bcc-transport-worker: {detail}");
            1
        }
    }
}

fn parse_and_serve(args: &[String]) -> Result<(), String> {
    let port: u16 = args
        .first()
        .ok_or("missing port argument")?
        .parse()
        .map_err(|_| "port argument is not a u16".to_string())?;
    let rank: usize = args
        .get(1)
        .ok_or("missing rank argument")?
        .parse()
        .map_err(|_| "rank argument is not an integer".to_string())?;
    serve(port, rank)
}

/// Parses the crash knob for this rank: `"N"` applies to every rank,
/// `"N@R"` only to rank `R`.
fn exit_after_for(value: &str, rank: usize) -> Option<u64> {
    match value.split_once('@') {
        None => value.parse().ok(),
        Some((rounds, target)) => {
            let target: usize = target.parse().ok()?;
            if target == rank {
                rounds.parse().ok()
            } else {
                None
            }
        }
    }
}

fn telemetry_enabled() -> bool {
    !matches!(
        std::env::var(TELEMETRY_ENV).ok().as_deref(),
        Some("0") | Some("off")
    )
}

fn serve(port: u16, rank: usize) -> Result<(), String> {
    let stream =
        TcpStream::connect(("127.0.0.1", port)).map_err(|e| format!("connect failed: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("stream clone failed: {e}"))?;
    let mut reader = BufReader::new(stream);
    send(&mut writer, &Reply::Hello { rank })?;

    let telemetry_on = telemetry_enabled();
    let mut sessions: BTreeMap<u64, Session> = BTreeMap::new();
    let mut lifetime = Lifetime::default();
    let mut rounds_left: Option<u64> = std::env::var(EXIT_AFTER_ENV)
        .ok()
        .and_then(|v| exit_after_for(&v, rank));

    loop {
        let mut line = String::new();
        let bytes = reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        if bytes == 0 {
            // Coordinator closed the connection: clean shutdown.
            return Ok(());
        }
        let reply = match wire::parse_command(line.trim_end()) {
            Ok(Command::Open {
                session,
                n,
                lo,
                hi,
                routes,
            }) => match validate_open(n, lo, hi, &routes) {
                Ok(()) => {
                    // No session ids in the recorded content: ids
                    // depend on how runs interleave on the driver,
                    // which would break byte-identity under --jobs.
                    let telemetry = telemetry_on.then(|| SessionTelemetry {
                        n: n as u64,
                        nodes: (hi - lo) as u64,
                        rounds: 0,
                        frames: 0,
                        symbols: 0,
                    });
                    lifetime.sessions += 1;
                    sessions.insert(
                        session,
                        Session {
                            n,
                            routes,
                            telemetry,
                        },
                    );
                    Reply::Ok { session }
                }
                Err(detail) => Reply::Error { detail },
            },
            Ok(Command::Round {
                session,
                round,
                outbox,
            }) => {
                if let Some(left) = rounds_left.as_mut() {
                    if *left == 0 {
                        // Simulated mid-run crash (see EXIT_AFTER_ENV).
                        return Ok(());
                    }
                    *left -= 1;
                }
                match handle_round(&mut sessions, session, round, &outbox, &mut lifetime) {
                    Ok(reply) => reply,
                    Err(detail) => Reply::Error { detail },
                }
            }
            Ok(Command::Close { session }) => {
                let telemetry = sessions
                    .remove(&session)
                    .and_then(|s| s.telemetry)
                    .map_or_else(WorkerTelemetry::default, close_telemetry);
                Reply::Closed { session, telemetry }
            }
            Ok(Command::Shutdown) => {
                // Best-effort goodbyes: the coordinator may already
                // have dropped its end by the time these are written.
                if telemetry_on {
                    let _ = send(
                        &mut writer,
                        &Reply::Telemetry {
                            rank,
                            counters: lifetime.counters(),
                        },
                    );
                }
                let _ = send(&mut writer, &Reply::Bye);
                return Ok(());
            }
            Err(detail) => Reply::Error { detail },
        };
        send(&mut writer, &reply)?;
    }
}

/// Seals a session's telemetry: one compact numeric summary. The
/// coordinator derives the session's `frames`/`rounds`/`symbols`
/// counters from it and turns it into a `session` trace span at
/// flush time, so nothing is shipped twice (the counters vec stays
/// empty on this path; the wire still carries explicit counters for
/// the lifetime `telemetry` reply).
fn close_telemetry(t: SessionTelemetry) -> WorkerTelemetry {
    WorkerTelemetry {
        counters: Vec::new(),
        span: Some(SessionSpan {
            n: t.n,
            nodes: t.nodes,
            rounds: t.rounds,
            frames: t.frames,
            symbols: t.symbols,
        }),
    }
}

fn send(writer: &mut TcpStream, reply: &Reply) -> Result<(), String> {
    let line = wire::render_reply(reply);
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("write failed: {e}"))
}

/// Shape checks at open time, so round handling can trust the routes.
fn validate_open(
    n: usize,
    lo: usize,
    hi: usize,
    routes: &[Vec<(u64, usize)>],
) -> Result<(), String> {
    if lo > hi || hi > n {
        return Err(format!("bad node range {lo}..{hi} for n={n}"));
    }
    if routes.len() != hi - lo {
        return Err(format!(
            "got {} route rows for node range {lo}..{hi}",
            routes.len()
        ));
    }
    for ports in routes {
        for &(_, peer) in ports {
            if peer >= n {
                return Err(format!("route peer {peer} out of range for n={n}"));
            }
        }
    }
    Ok(())
}

fn handle_round(
    sessions: &mut BTreeMap<u64, Session>,
    session: u64,
    round: usize,
    outbox: &[Message],
    lifetime: &mut Lifetime,
) -> Result<Reply, String> {
    let s = sessions
        .get_mut(&session)
        .ok_or_else(|| format!("round for unknown session {session}"))?;
    if outbox.len() != s.n {
        return Err(format!(
            "outbox has {} entries for an instance with {} nodes",
            outbox.len(),
            s.n
        ));
    }
    let inboxes = s
        .routes
        .iter()
        .map(|ports| {
            ports
                .iter()
                .map(|&(label, peer)| {
                    // Peers were range-checked at open.
                    let msg = outbox
                        .get(peer)
                        .cloned()
                        .ok_or_else(|| format!("route peer {peer} out of range"))?;
                    Ok((label, msg))
                })
                .collect::<Result<Vec<_>, String>>()
        })
        .collect::<Result<Vec<_>, String>>()?;
    if let Some(t) = s.telemetry.as_mut() {
        let frames: u64 = inboxes.iter().map(|e| e.len() as u64).sum();
        let symbols: u64 = inboxes
            .iter()
            .flatten()
            .map(|(_, m)| m.symbols().len() as u64)
            .sum();
        t.rounds = t.rounds.saturating_add(1);
        t.frames += frames;
        t.symbols += symbols;
        lifetime.rounds = lifetime.rounds.saturating_add(1);
        lifetime.frames += frames;
        lifetime.symbols += symbols;
    }
    Ok(Reply::View {
        session,
        round,
        inboxes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_after_knob_parses_global_and_per_rank_forms() {
        assert_eq!(exit_after_for("3", 0), Some(3));
        assert_eq!(exit_after_for("3", 7), Some(3));
        assert_eq!(exit_after_for("1@0", 0), Some(1));
        assert_eq!(exit_after_for("1@0", 1), None);
        assert_eq!(exit_after_for("garbage", 0), None);
        assert_eq!(exit_after_for("2@x", 0), None);
    }
}
