//! The worker side of the multi-process backend: a blocking JSONL
//! read loop over one TCP connection to the coordinator.
//!
//! A worker is pure routing — it holds each open session's node range
//! and routes, and answers every `round` command by assembling
//! `(port_label, message)` inboxes for its nodes from the full outbox
//! it was sent. It never looks at a clock, never touches the
//! simulation state, and never accounts for anything: determinism of
//! the merged run is the coordinator's job, and the worker has no
//! state that could perturb it.
//!
//! EOF on the command stream is a clean shutdown (the coordinator
//! dropped the group); every malformed or unserviceable command is
//! answered with a wire-level `error` reply rather than a crash.

use crate::wire::{self, Command, Reply};
use bcc_model::Message;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Test knob: when set to `N`, the worker serves `N` `round` commands
/// and then exits abruptly (no reply, no goodbye) on the next one —
/// simulating a mid-run crash for dead-worker tests.
pub const EXIT_AFTER_ENV: &str = "BCC_TRANSPORT_WORKER_EXIT_AFTER";

struct Session {
    n: usize,
    /// `routes[i]` = `(port_label, peer)` pairs of node `lo + i`.
    routes: Vec<Vec<(u64, usize)>>,
}

/// Entry point for the worker process: `args` are the argv elements
/// after the worker flag, i.e. `[port, rank]`. Returns the process
/// exit code.
pub fn run_from_args(args: &[String]) -> i32 {
    match parse_and_serve(args) {
        Ok(()) => 0,
        Err(detail) => {
            eprintln!("bcc-transport-worker: {detail}");
            1
        }
    }
}

fn parse_and_serve(args: &[String]) -> Result<(), String> {
    let port: u16 = args
        .first()
        .ok_or("missing port argument")?
        .parse()
        .map_err(|_| "port argument is not a u16".to_string())?;
    let rank: usize = args
        .get(1)
        .ok_or("missing rank argument")?
        .parse()
        .map_err(|_| "rank argument is not an integer".to_string())?;
    serve(port, rank)
}

fn serve(port: u16, rank: usize) -> Result<(), String> {
    let stream =
        TcpStream::connect(("127.0.0.1", port)).map_err(|e| format!("connect failed: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("stream clone failed: {e}"))?;
    let mut reader = BufReader::new(stream);
    send(&mut writer, &Reply::Hello { rank })?;

    let mut sessions: BTreeMap<u64, Session> = BTreeMap::new();
    let mut rounds_left: Option<u64> = std::env::var(EXIT_AFTER_ENV)
        .ok()
        .and_then(|v| v.parse().ok());

    loop {
        let mut line = String::new();
        let bytes = reader
            .read_line(&mut line)
            .map_err(|e| format!("read failed: {e}"))?;
        if bytes == 0 {
            // Coordinator closed the connection: clean shutdown.
            return Ok(());
        }
        let reply = match wire::parse_command(line.trim_end()) {
            Ok(Command::Open {
                session,
                n,
                lo,
                hi,
                routes,
            }) => match validate_open(n, lo, hi, &routes) {
                Ok(()) => {
                    sessions.insert(session, Session { n, routes });
                    Reply::Ok { session }
                }
                Err(detail) => Reply::Error { detail },
            },
            Ok(Command::Round {
                session,
                round,
                outbox,
            }) => {
                if let Some(left) = rounds_left.as_mut() {
                    if *left == 0 {
                        // Simulated mid-run crash (see EXIT_AFTER_ENV).
                        return Ok(());
                    }
                    *left -= 1;
                }
                match handle_round(&sessions, session, round, &outbox) {
                    Ok(reply) => reply,
                    Err(detail) => Reply::Error { detail },
                }
            }
            Ok(Command::Close { session }) => {
                sessions.remove(&session);
                Reply::Ok { session }
            }
            Ok(Command::Shutdown) => {
                // Best-effort goodbye: the coordinator may already
                // have dropped its end by the time this is written.
                let _ = send(&mut writer, &Reply::Bye);
                return Ok(());
            }
            Err(detail) => Reply::Error { detail },
        };
        send(&mut writer, &reply)?;
    }
}

fn send(writer: &mut TcpStream, reply: &Reply) -> Result<(), String> {
    let line = wire::render_reply(reply);
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("write failed: {e}"))
}

/// Shape checks at open time, so round handling can trust the routes.
fn validate_open(
    n: usize,
    lo: usize,
    hi: usize,
    routes: &[Vec<(u64, usize)>],
) -> Result<(), String> {
    if lo > hi || hi > n {
        return Err(format!("bad node range {lo}..{hi} for n={n}"));
    }
    if routes.len() != hi - lo {
        return Err(format!(
            "got {} route rows for node range {lo}..{hi}",
            routes.len()
        ));
    }
    for ports in routes {
        for &(_, peer) in ports {
            if peer >= n {
                return Err(format!("route peer {peer} out of range for n={n}"));
            }
        }
    }
    Ok(())
}

fn handle_round(
    sessions: &BTreeMap<u64, Session>,
    session: u64,
    round: usize,
    outbox: &[Message],
) -> Result<Reply, String> {
    let s = sessions
        .get(&session)
        .ok_or_else(|| format!("round for unknown session {session}"))?;
    if outbox.len() != s.n {
        return Err(format!(
            "outbox has {} entries for an instance with {} nodes",
            outbox.len(),
            s.n
        ));
    }
    let inboxes = s
        .routes
        .iter()
        .map(|ports| {
            ports
                .iter()
                .map(|&(label, peer)| {
                    // Peers were range-checked at open.
                    let msg = outbox
                        .get(peer)
                        .cloned()
                        .ok_or_else(|| format!("route peer {peer} out of range"))?;
                    Ok((label, msg))
                })
                .collect::<Result<Vec<_>, String>>()
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Reply::View {
        session,
        round,
        inboxes,
    })
}
