//! The JSONL wire protocol between a [`SocketTransport`] coordinator
//! and its worker subprocesses — the same hand-rolled codec
//! discipline as `crates/serve`: one JSON object per line, fixed key
//! order on the write side, tolerant typed parsing on the read side
//! (via `bcc_metrics::json`), and every malformed line surfaced as a
//! typed error, never a panic.
//!
//! Messages are the `{0, 1, ⊥}` alphabet rendered as the ASCII
//! string `'0' | '1' | '_'` per symbol. Port labels ride as JSON
//! numbers; the parser is `f64`-backed, so labels are faithful up to
//! `2^53` — far beyond the `0..n` IDs every experiment instance uses.
//!
//! [`SocketTransport`]: crate::socket::SocketTransport

use bcc_metrics::json::{self, JsonValue};
use bcc_model::{Message, Symbol};
use std::fmt::Write as _;

/// Coordinator → worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Registers one run's delivery plan under a session id. The
    /// worker receives only its own node range `lo..hi`
    /// (`routes[i]` = ports of node `lo + i`).
    Open {
        /// Session id, unique per coordinator.
        session: u64,
        /// Total vertex count of the instance.
        n: usize,
        /// First node owned by this worker.
        lo: usize,
        /// One past the last node owned by this worker.
        hi: usize,
        /// `(port_label, peer)` pairs per owned node, port order.
        routes: Vec<Vec<(u64, usize)>>,
    },
    /// Delivers one round: the full outbox, one message per vertex.
    Round {
        /// Session the round belongs to.
        session: u64,
        /// Round number (echoed back in the view).
        round: usize,
        /// `outbox[v]` = vertex `v`'s broadcast.
        outbox: Vec<Message>,
    },
    /// Ends a session.
    Close {
        /// Session to drop.
        session: u64,
    },
    /// Asks the worker to exit cleanly.
    Shutdown,
}

/// The telemetry block a worker ships back with a [`Reply::Closed`]:
/// logical counters (frames routed, symbols forwarded, rounds
/// served) plus a compact numeric session summary from which the
/// coordinator synthesizes the session's trace events at flush time.
/// Shipping five integers instead of serialized event lines keeps
/// the close path allocation-light — the ≤ 2% `BENCH_PR10.json`
/// budget is won here. Everything on this surface is a pure function
/// of the commands served; nothing wall-clock-shaped is allowed
/// (those quantities stay driver-side, in the `--transport-wall`
/// sidecar).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WorkerTelemetry {
    /// `(name, value)` counter pairs in the worker's canonical
    /// (sorted) order.
    pub counters: Vec<(String, u64)>,
    /// The session's trace summary; `None` when telemetry is
    /// disabled worker-side.
    pub span: Option<SessionSpan>,
}

/// One closed session's numeric trace summary. The coordinator
/// renders it as a `session` span (`n`/`nodes` fields on the start,
/// `rounds` on the end) holding `frames` and `symbols` counter
/// events, under the owning `transport/worker:<rank>` unit. Ordered
/// field-by-field so a rank's sessions sort canonically,
/// independent of close order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SessionSpan {
    /// Total vertex count of the instance.
    pub n: u64,
    /// Nodes owned by this worker (`hi - lo`).
    pub nodes: u64,
    /// Rounds served in the session.
    pub rounds: u64,
    /// Inbox entries assembled.
    pub frames: u64,
    /// Symbols forwarded inside those frames.
    pub symbols: u64,
}

/// Worker → coordinator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// First line after connecting: which rank this worker is.
    Hello {
        /// The worker's rank, `0..workers`.
        rank: usize,
    },
    /// `Open`/`Close` acknowledged.
    Ok {
        /// The session acknowledged.
        session: u64,
    },
    /// One round's deliveries for the worker's node range.
    View {
        /// Session echoed.
        session: u64,
        /// Round echoed.
        round: usize,
        /// `(port_label, message)` entries per owned node, in node
        /// order `lo..hi`.
        inboxes: Vec<Vec<(u64, Message)>>,
    },
    /// `Close` acknowledged, carrying the session's telemetry. This
    /// is the close-path counterpart of [`Reply::Ok`]: the session is
    /// dropped worker-side and its trace/metrics buffers ride home in
    /// the acknowledgement.
    Closed {
        /// The session closed.
        session: u64,
        /// The session's telemetry block.
        telemetry: WorkerTelemetry,
    },
    /// Lifetime counter totals, sent once right before [`Reply::Bye`]
    /// when a shutdown is acknowledged — the coordinator's last
    /// chance to account for sessions that were never closed.
    Telemetry {
        /// The sending worker's rank.
        rank: usize,
        /// `(name, value)` lifetime totals, canonical order.
        counters: Vec<(String, u64)>,
    },
    /// Shutdown acknowledged; the worker exits after sending this.
    Bye,
    /// The command could not be served.
    Error {
        /// Human-readable cause.
        detail: String,
    },
}

/// Renders a [`Message`] as its wire alphabet (`0`, `1`, `_`).
pub fn encode_message(m: &Message) -> String {
    m.symbols()
        .iter()
        .map(|s| match s {
            Symbol::Zero => '0',
            Symbol::One => '1',
            Symbol::Silent => '_',
        })
        .collect()
}

/// Parses the wire alphabet back into a [`Message`].
///
/// # Errors
///
/// Returns an error naming the first character outside `0`/`1`/`_`.
pub fn decode_message(s: &str) -> Result<Message, String> {
    let symbols: Vec<Symbol> = s
        .chars()
        .map(|c| match c {
            '0' => Ok(Symbol::Zero),
            '1' => Ok(Symbol::One),
            '_' => Ok(Symbol::Silent),
            other => Err(format!("bad message character {other:?}")),
        })
        .collect::<Result<_, String>>()?;
    Ok(Message::from_symbols(symbols))
}

/// Escapes a string for a JSON literal. Mirrors
/// `bcc_experiments::json::escape`; duplicated here because depending
/// on `bcc-experiments` would close a dependency cycle
/// (`experiments → transport → experiments`).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_routes(routes: &[Vec<(u64, usize)>]) -> String {
    let nodes: Vec<String> = routes
        .iter()
        .map(|ports| {
            let entries: Vec<String> = ports
                .iter()
                .map(|&(label, peer)| format!("[{label},{peer}]"))
                .collect();
            format!("[{}]", entries.join(","))
        })
        .collect();
    format!("[{}]", nodes.join(","))
}

/// Renders a command as one JSONL line (no trailing newline).
pub fn render_command(cmd: &Command) -> String {
    match cmd {
        Command::Open {
            session,
            n,
            lo,
            hi,
            routes,
        } => format!(
            "{{\"type\":\"open\",\"session\":{session},\"n\":{n},\"lo\":{lo},\"hi\":{hi},\"routes\":{}}}",
            render_routes(routes)
        ),
        Command::Round {
            session,
            round,
            outbox,
        } => {
            let msgs: Vec<String> = outbox
                .iter()
                .map(|m| format!("\"{}\"", encode_message(m)))
                .collect();
            format!(
                "{{\"type\":\"round\",\"session\":{session},\"round\":{round},\"outbox\":[{}]}}",
                msgs.join(",")
            )
        }
        Command::Close { session } => {
            format!("{{\"type\":\"close\",\"session\":{session}}}")
        }
        Command::Shutdown => "{\"type\":\"shutdown\"}".to_string(),
    }
}

/// Renders a reply as one JSONL line (no trailing newline).
pub fn render_reply(reply: &Reply) -> String {
    match reply {
        Reply::Hello { rank } => format!("{{\"type\":\"hello\",\"rank\":{rank}}}"),
        Reply::Ok { session } => format!("{{\"type\":\"ok\",\"session\":{session}}}"),
        Reply::View {
            session,
            round,
            inboxes,
        } => {
            let nodes: Vec<String> = inboxes
                .iter()
                .map(|entries| {
                    let items: Vec<String> = entries
                        .iter()
                        .map(|(label, m)| format!("[{label},\"{}\"]", encode_message(m)))
                        .collect();
                    format!("[{}]", items.join(","))
                })
                .collect();
            format!(
                "{{\"type\":\"view\",\"session\":{session},\"round\":{round},\"inboxes\":[{}]}}",
                nodes.join(",")
            )
        }
        Reply::Closed { session, telemetry } => {
            // The span is a fixed-position array, not a keyed object:
            // the close path runs once per session, and five bare
            // numbers parse with no per-key string allocations.
            let span = telemetry.span.as_ref().map_or_else(String::new, |s| {
                format!(
                    ",\"span\":[{},{},{},{},{}]",
                    s.n, s.nodes, s.rounds, s.frames, s.symbols
                )
            });
            // The counters key is omitted when empty (the common
            // case: the span carries the numbers), keeping the
            // close-path line short.
            let counters = if telemetry.counters.is_empty() {
                String::new()
            } else {
                format!(",\"counters\":{}", render_counters(&telemetry.counters))
            };
            format!("{{\"type\":\"closed\",\"session\":{session}{counters}{span}}}")
        }
        Reply::Telemetry { rank, counters } => format!(
            "{{\"type\":\"telemetry\",\"rank\":{rank},\"counters\":{}}}",
            render_counters(counters)
        ),
        Reply::Bye => "{\"type\":\"bye\"}".to_string(),
        Reply::Error { detail } => {
            format!("{{\"type\":\"error\",\"detail\":\"{}\"}}", escape(detail))
        }
    }
}

fn render_counters(counters: &[(String, u64)]) -> String {
    let entries: Vec<String> = counters
        .iter()
        .map(|(name, value)| format!("[\"{}\",{value}]", escape(name)))
        .collect();
    format!("[{}]", entries.join(","))
}

fn parse_counters(v: &JsonValue, key: &str) -> Result<Vec<(String, u64)>, String> {
    field_arr(v, key)?
        .iter()
        .map(|entry| {
            let pair = entry.as_arr().ok_or("counter entry is not an array")?;
            if pair.len() != 2 {
                return Err(format!("counter entry has {} elements", pair.len()));
            }
            let name = pair[0].as_str().ok_or("counter name is not a string")?;
            let value = pair[1]
                .as_u64()
                .ok_or("counter value is not a non-negative integer")?;
            Ok((name.to_string(), value))
        })
        .collect()
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn field_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} is not a non-negative integer"))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    usize::try_from(field_u64(v, key)?).map_err(|_| format!("field {key:?} out of range"))
}

fn field_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn field_arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], String> {
    field(v, key)?
        .as_arr()
        .ok_or_else(|| format!("field {key:?} is not an array"))
}

fn parse_label_pair(v: &JsonValue) -> Result<(u64, &JsonValue), String> {
    let pair = v.as_arr().ok_or("route/inbox entry is not an array")?;
    if pair.len() != 2 {
        return Err(format!("entry has {} elements, expected 2", pair.len()));
    }
    let label = pair[0]
        .as_u64()
        .ok_or("entry label is not a non-negative integer")?;
    Ok((label, &pair[1]))
}

/// Parses one command line.
///
/// # Errors
///
/// Returns a description of the first syntactic or shape problem.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let v = json::parse(line)?;
    match field_str(&v, "type")? {
        "open" => {
            let routes = field_arr(&v, "routes")?
                .iter()
                .map(|node| {
                    node.as_arr()
                        .ok_or_else(|| "route row is not an array".to_string())?
                        .iter()
                        .map(|entry| {
                            let (label, peer) = parse_label_pair(entry)?;
                            let peer = peer
                                .as_u64()
                                .and_then(|p| usize::try_from(p).ok())
                                .ok_or("route peer is not an index")?;
                            Ok((label, peer))
                        })
                        .collect::<Result<Vec<_>, String>>()
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Command::Open {
                session: field_u64(&v, "session")?,
                n: field_usize(&v, "n")?,
                lo: field_usize(&v, "lo")?,
                hi: field_usize(&v, "hi")?,
                routes,
            })
        }
        "round" => {
            let outbox = field_arr(&v, "outbox")?
                .iter()
                .map(|m| decode_message(m.as_str().ok_or("outbox entry is not a string")?))
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Command::Round {
                session: field_u64(&v, "session")?,
                round: field_usize(&v, "round")?,
                outbox,
            })
        }
        "close" => Ok(Command::Close {
            session: field_u64(&v, "session")?,
        }),
        "shutdown" => Ok(Command::Shutdown),
        other => Err(format!("unknown command type {other:?}")),
    }
}

/// Parses one reply line.
///
/// # Errors
///
/// Returns a description of the first syntactic or shape problem.
pub fn parse_reply(line: &str) -> Result<Reply, String> {
    let v = json::parse(line)?;
    match field_str(&v, "type")? {
        "hello" => Ok(Reply::Hello {
            rank: field_usize(&v, "rank")?,
        }),
        "ok" => Ok(Reply::Ok {
            session: field_u64(&v, "session")?,
        }),
        "view" => {
            let inboxes = field_arr(&v, "inboxes")?
                .iter()
                .map(|node| {
                    node.as_arr()
                        .ok_or_else(|| "inbox row is not an array".to_string())?
                        .iter()
                        .map(|entry| {
                            let (label, msg) = parse_label_pair(entry)?;
                            let msg = decode_message(
                                msg.as_str().ok_or("inbox message is not a string")?,
                            )?;
                            Ok((label, msg))
                        })
                        .collect::<Result<Vec<_>, String>>()
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Reply::View {
                session: field_u64(&v, "session")?,
                round: field_usize(&v, "round")?,
                inboxes,
            })
        }
        "closed" => {
            let span = match v.get("span") {
                None => None,
                Some(s) => {
                    let nums = s.as_arr().ok_or("span is not an array")?;
                    let at = |i: usize| -> Result<u64, String> {
                        nums.get(i)
                            .and_then(JsonValue::as_u64)
                            .ok_or_else(|| format!("span element {i} is not a u64"))
                    };
                    if nums.len() != 5 {
                        return Err(format!("span has {} elements", nums.len()));
                    }
                    Some(SessionSpan {
                        n: at(0)?,
                        nodes: at(1)?,
                        rounds: at(2)?,
                        frames: at(3)?,
                        symbols: at(4)?,
                    })
                }
            };
            let counters = if v.get("counters").is_some() {
                parse_counters(&v, "counters")?
            } else {
                Vec::new()
            };
            Ok(Reply::Closed {
                session: field_u64(&v, "session")?,
                telemetry: WorkerTelemetry { counters, span },
            })
        }
        "telemetry" => Ok(Reply::Telemetry {
            rank: field_usize(&v, "rank")?,
            counters: parse_counters(&v, "counters")?,
        }),
        "bye" => Ok(Reply::Bye),
        "error" => Ok(Reply::Error {
            detail: field_str(&v, "detail")?.to_string(),
        }),
        other => Err(format!("unknown reply type {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: &str) -> Message {
        decode_message(s).unwrap()
    }

    #[test]
    fn message_codec_round_trips() {
        for text in ["", "0", "1", "_", "01_10", "___"] {
            assert_eq!(encode_message(&m(text)), text);
        }
        assert!(decode_message("01x").is_err());
    }

    #[test]
    fn commands_round_trip() {
        let cmds = [
            Command::Open {
                session: 7,
                n: 5,
                lo: 2,
                hi: 5,
                routes: vec![vec![(1, 0), (2, 3)], vec![(9, 4)], vec![]],
            },
            Command::Round {
                session: 7,
                round: 3,
                outbox: vec![m("0"), m("1_"), m("")],
            },
            Command::Close { session: 7 },
            Command::Shutdown,
        ];
        for cmd in cmds {
            let line = render_command(&cmd);
            assert_eq!(parse_command(&line), Ok(cmd), "line: {line}");
        }
    }

    #[test]
    fn replies_round_trip() {
        let replies = [
            Reply::Hello { rank: 3 },
            Reply::Ok { session: 9 },
            Reply::View {
                session: 9,
                round: 0,
                inboxes: vec![vec![(1, m("0")), (4, m("_"))], vec![]],
            },
            Reply::Closed {
                session: 9,
                telemetry: WorkerTelemetry {
                    counters: vec![("frames".to_string(), 12), ("rounds".to_string(), 3)],
                    span: Some(SessionSpan {
                        n: 5,
                        nodes: 2,
                        rounds: 3,
                        frames: 12,
                        symbols: 24,
                    }),
                },
            },
            Reply::Closed {
                session: 2,
                telemetry: WorkerTelemetry::default(),
            },
            Reply::Telemetry {
                rank: 1,
                counters: vec![("sessions".to_string(), 4)],
            },
            Reply::Bye,
            Reply::Error {
                detail: "bad \"stuff\"\nhappened".to_string(),
            },
        ];
        for reply in replies {
            let line = render_reply(&reply);
            assert!(!line.contains('\n'), "line breaks break JSONL: {line}");
            assert_eq!(parse_reply(&line), Ok(reply), "line: {line}");
        }
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        assert!(parse_command("not json").is_err());
        assert!(parse_command("{\"type\":\"warp\"}").is_err());
        assert!(parse_command("{\"type\":\"round\",\"session\":1}").is_err());
        assert!(
            parse_reply("{\"type\":\"view\",\"session\":1,\"round\":0,\"inboxes\":[[[1,2]]]}")
                .is_err()
        );
    }
}
