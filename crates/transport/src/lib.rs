//! # bcc-transport — multi-process round delivery for BCC(b) runs
//!
//! The `bcc_model` simulator and the batched engine route every
//! round's message delivery through the
//! [`Transport`] trait. This crate provides the multi-process
//! backend: [`SocketFactory`] spawns worker subprocesses that each
//! own a contiguous range of nodes and serve deliveries over
//! loopback TCP, speaking the JSONL protocol in [`wire`].
//!
//! ## Determinism contract
//!
//! A socket run must be **byte-identical** to an in-process
//! [`LocalTransport`](bcc_model::transport::LocalTransport) run for
//! the same seed — same reports, same merged traces, same metrics
//! dumps. That holds by construction:
//!
//! 1. workers only route messages; all accounting (bit counts, span
//!    trees, counters) stays in the driver process,
//! 2. replies are merged in rank order and node ranges are
//!    contiguous ascending, so the merged [`RoundView`] is in node
//!    order regardless of scheduling, and
//! 3. nothing derived from a clock or a PID ever crosses the wire.
//!
//! ## Worker processes
//!
//! Workers are launched by re-exec'ing the current binary with
//! [`WORKER_FLAG`] as `argv[1]`. Any binary that wants to act as a
//! socket-transport host must call [`maybe_run_worker`] first thing
//! in `main`:
//!
//! ```no_run
//! bcc_transport::maybe_run_worker();
//! // ... normal CLI ...
//! ```
//!
//! A worker that dies mid-run surfaces as a typed
//! [`TransportError::WorkerDead`] on the driver side — never a panic
//! — and the run degrades to an all-`Undecided` outcome exactly like
//! any other transport failure.
//!
//! ## Cross-process telemetry
//!
//! Workers additionally keep *logical* telemetry (frames routed,
//! symbols forwarded, rounds served per session) and ship it home
//! inside the `closed` acknowledgement. The factory accumulates these
//! buffers per rank and replays them — rank-ordered, canonically
//! sorted — into the run's shared `Collector`/`MetricsHub` when the
//! driver calls [`TransportFactory::flush_telemetry`], yielding the
//! deterministic `transport.*` counter family and
//! `transport/worker:<rank>` trace units (DESIGN.md §15). Wall-ish
//! quantities go to [`TransportFactory::wall_stats`] for the
//! `--transport-wall` sidecar only. Each worker link also keeps a
//! flight-recorder ring of recent wire events; on a worker death the
//! rings are frozen into a
//! [`Postmortem`](bcc_model::postmortem::Postmortem) that travels on
//! the error and via [`TransportFactory::take_postmortems`].

pub mod socket;
pub mod wall;
pub mod wire;
pub mod worker;

pub use bcc_model::transport::{
    LocalFactory, LocalTransport, RoundView, Routes, Transport, TransportError, TransportFactory,
    TransportSpec,
};
pub use socket::{SocketFactory, SocketTransport, WorkerCmd, WorkerGroup};
pub use worker::{worker_unit, EXIT_AFTER_ENV, TELEMETRY_ENV};

use std::sync::Arc;

/// The argv[1] magic that turns any participating binary into a
/// transport worker (see [`maybe_run_worker`]).
pub const WORKER_FLAG: &str = "--bcc-transport-worker";

/// Builds the factory for a parsed `--transport` spec: `local` maps
/// to the in-process oracle, `sockets:N` to a self-exec'ing
/// [`SocketFactory`] with `N` workers.
pub fn factory_for(spec: TransportSpec) -> Arc<dyn TransportFactory> {
    match spec {
        TransportSpec::Local => Arc::new(LocalFactory),
        TransportSpec::Sockets(workers) => Arc::new(SocketFactory::self_exec(workers)),
    }
}

/// Installs `spec` as the process-wide default transport, used by
/// every [`SimConfig`](bcc_model::SimConfig) that has no explicit
/// factory.
pub fn install(spec: TransportSpec) {
    bcc_model::transport::set_default_factory(factory_for(spec));
}

/// Worker-mode dispatch: if the process was launched with
/// [`WORKER_FLAG`] as its first argument, runs the worker loop and
/// **exits the process** with its status code. Otherwise returns
/// immediately. Call this first thing in `main` of any binary that
/// hosts `--transport sockets:N`.
pub fn maybe_run_worker() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some(WORKER_FLAG) {
        let code = worker::run_from_args(&args[2..]);
        std::process::exit(code);
    }
}
