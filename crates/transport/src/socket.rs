//! The coordinator side of the multi-process backend: spawns worker
//! subprocesses, hands each a contiguous node range, and drives one
//! JSONL request/reply exchange per round over loopback TCP.
//!
//! Determinism obligations (DESIGN.md §14) are met by construction:
//! the coordinator sends the round to every worker and then reads the
//! replies **in rank order**, so the merged [`RoundView`] is the
//! rank-0 slice followed by rank-1's, etc. — exactly node order,
//! independent of which worker answered first. No wall-clock value
//! ever crosses the wire; all accounting stays in the driver.
//!
//! Any worker failure — spawn error, mid-run death, malformed reply —
//! becomes a typed [`TransportError`], never a panic, and marks the
//! whole group dead so later sessions fail fast.

use crate::wire::{self, Command, Reply};
use bcc_model::transport::{RoundView, Routes, Transport, TransportError, TransportFactory};
use bcc_model::Message;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Stdio};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// How long a blocking read on a worker link may stall before the
/// worker is declared dead. Generous: a healthy worker answers a
/// round in microseconds.
const READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Accept-loop patience: `ACCEPT_TICKS × ACCEPT_TICK` bounds how long
/// spawn waits for all workers to connect.
const ACCEPT_TICK: Duration = Duration::from_millis(5);
const ACCEPT_TICKS: u32 = 2000;

/// How a worker subprocess is launched.
#[derive(Debug, Clone)]
pub enum WorkerCmd {
    /// Re-exec the current executable with
    /// [`WORKER_FLAG`](crate::WORKER_FLAG) as `argv[1]` — the default
    /// for binaries that call
    /// [`maybe_run_worker`](crate::maybe_run_worker) first thing in
    /// `main`.
    SelfExec,
    /// Launch the given binary (which must also dispatch on the
    /// worker flag). Used by integration tests to point at the
    /// dedicated `bcc-transport-worker` binary.
    Bin(PathBuf),
}

fn spawn_err(detail: String) -> TransportError {
    TransportError::Spawn { detail }
}

/// Computes rank `r`'s node range `lo..hi` out of `n` nodes split
/// over `w` workers: contiguous, ascending, covering `0..n` exactly
/// (empty ranges when `w > n`).
pub fn node_range(n: usize, w: usize, r: usize) -> (usize, usize) {
    if w == 0 {
        return (0, 0);
    }
    (r * n / w, (r + 1) * n / w)
}

struct Link {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

struct GroupInner {
    /// One link per worker, index = rank.
    links: Vec<Link>,
    children: Vec<Child>,
    next_session: u64,
    /// Set on first failure; every later call returns it.
    dead: Option<TransportError>,
}

impl GroupInner {
    fn fail(&mut self, err: TransportError) -> TransportError {
        self.dead = Some(err.clone());
        err
    }

    fn send_line(&mut self, rank: usize, line: &str) -> Result<(), TransportError> {
        let result = match self.links.get_mut(rank) {
            Some(link) => link
                .writer
                .write_all(line.as_bytes())
                .and_then(|()| link.writer.write_all(b"\n"))
                .and_then(|()| link.writer.flush()),
            None => {
                return Err(self.fail(TransportError::Protocol {
                    detail: format!("no link for worker rank {rank}"),
                }))
            }
        };
        result.map_err(|e| {
            self.fail(TransportError::WorkerDead {
                rank,
                detail: format!("write failed: {e}"),
            })
        })
    }

    fn read_reply(&mut self, rank: usize) -> Result<Reply, TransportError> {
        let read = match self.links.get_mut(rank) {
            Some(link) => {
                let mut line = String::new();
                link.reader.read_line(&mut line).map(|bytes| (bytes, line))
            }
            None => {
                return Err(self.fail(TransportError::Protocol {
                    detail: format!("no link for worker rank {rank}"),
                }))
            }
        };
        match read {
            Ok((0, _)) => Err(self.fail(TransportError::WorkerDead {
                rank,
                detail: "connection closed".to_string(),
            })),
            Ok((_, line)) => match wire::parse_reply(line.trim_end()) {
                Ok(reply) => Ok(reply),
                Err(detail) => Err(self.fail(TransportError::Protocol {
                    detail: format!("bad reply from worker {rank}: {detail}"),
                })),
            },
            Err(e) => Err(self.fail(TransportError::WorkerDead {
                rank,
                detail: format!("read failed: {e}"),
            })),
        }
    }
}

impl Drop for GroupInner {
    fn drop(&mut self) {
        // Best-effort graceful shutdown, then reap unconditionally.
        let line = wire::render_command(&Command::Shutdown);
        for link in &mut self.links {
            let _ = link
                .writer
                .write_all(line.as_bytes())
                .and_then(|()| link.writer.write_all(b"\n"))
                .and_then(|()| link.writer.flush());
        }
        self.links.clear();
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// A pool of connected worker subprocesses, shared by every
/// [`SocketTransport`] the owning [`SocketFactory`] creates. Runs are
/// multiplexed over it as independent sessions.
pub struct WorkerGroup {
    workers: usize,
    inner: Mutex<GroupInner>,
}

fn kill_all(children: &mut Vec<Child>) {
    for child in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
    children.clear();
}

impl WorkerGroup {
    fn spawn(workers: usize, cmd: &WorkerCmd) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| spawn_err(format!("bind failed: {e}")))?;
        let port = listener
            .local_addr()
            .map_err(|e| spawn_err(format!("local_addr failed: {e}")))?
            .port();
        listener
            .set_nonblocking(true)
            .map_err(|e| spawn_err(format!("set_nonblocking failed: {e}")))?;

        let mut children: Vec<Child> = Vec::with_capacity(workers);
        for rank in 0..workers {
            let exe = match cmd {
                WorkerCmd::SelfExec => std::env::current_exe().map_err(|e| {
                    kill_all(&mut children);
                    spawn_err(format!("current_exe failed: {e}"))
                })?,
                WorkerCmd::Bin(path) => path.clone(),
            };
            match std::process::Command::new(&exe)
                .arg(crate::WORKER_FLAG)
                .arg(port.to_string())
                .arg(rank.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()
            {
                Ok(child) => children.push(child),
                Err(e) => {
                    kill_all(&mut children);
                    return Err(spawn_err(format!(
                        "failed to exec worker {rank} ({}): {e}",
                        exe.display()
                    )));
                }
            }
        }

        // Nonblocking accept loop with a liveness check, so a worker
        // that dies before connecting (wrong binary, crash on start)
        // fails fast with a typed error instead of hanging.
        let mut pending: Vec<TcpStream> = Vec::with_capacity(workers);
        let mut ticks = 0u32;
        while pending.len() < workers {
            match listener.accept() {
                Ok((stream, _)) => pending.push(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    for (rank, child) in children.iter_mut().enumerate() {
                        if let Ok(Some(status)) = child.try_wait() {
                            kill_all(&mut children);
                            return Err(spawn_err(format!(
                                "worker {rank} exited before connecting: {status}"
                            )));
                        }
                    }
                    if ticks >= ACCEPT_TICKS {
                        kill_all(&mut children);
                        return Err(spawn_err(
                            "timed out waiting for workers to connect".to_string(),
                        ));
                    }
                    ticks += 1;
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(e) => {
                    kill_all(&mut children);
                    return Err(spawn_err(format!("accept failed: {e}")));
                }
            }
        }

        // Handshake: each worker announces its rank; links are stored
        // rank-indexed so reply order is always rank order.
        let mut slots: Vec<Option<Link>> = (0..workers).map(|_| None).collect();
        for stream in pending {
            let link = (|| -> Result<(usize, Link), String> {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| format!("set_nonblocking failed: {e}"))?;
                stream
                    .set_read_timeout(Some(READ_TIMEOUT))
                    .map_err(|e| format!("set_read_timeout failed: {e}"))?;
                let _ = stream.set_nodelay(true);
                let writer = stream
                    .try_clone()
                    .map_err(|e| format!("try_clone failed: {e}"))?;
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                reader
                    .read_line(&mut line)
                    .map_err(|e| format!("handshake read failed: {e}"))?;
                match wire::parse_reply(line.trim_end()) {
                    Ok(Reply::Hello { rank }) if rank < workers => {
                        Ok((rank, Link { reader, writer }))
                    }
                    Ok(Reply::Hello { rank }) => {
                        Err(format!("hello with out-of-range rank {rank}"))
                    }
                    Ok(other) => Err(format!("expected hello, got {other:?}")),
                    Err(e) => Err(format!("bad hello: {e}")),
                }
            })();
            match link {
                Ok((rank, link)) => {
                    if slots[rank].is_some() {
                        kill_all(&mut children);
                        return Err(spawn_err(format!("duplicate hello for rank {rank}")));
                    }
                    slots[rank] = Some(link);
                }
                Err(detail) => {
                    kill_all(&mut children);
                    return Err(spawn_err(detail));
                }
            }
        }
        let mut links = Vec::with_capacity(workers);
        for (rank, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(link) => links.push(link),
                None => {
                    kill_all(&mut children);
                    return Err(spawn_err(format!("no hello from rank {rank}")));
                }
            }
        }

        Ok(WorkerGroup {
            workers,
            inner: Mutex::new(GroupInner {
                links,
                children,
                next_session: 1,
                dead: None,
            }),
        })
    }

    fn locked(&self) -> MutexGuard<'_, GroupInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn is_dead(&self) -> bool {
        self.locked().dead.is_some()
    }

    fn check_live(inner: &GroupInner) -> Result<(), TransportError> {
        match &inner.dead {
            Some(err) => Err(err.clone()),
            None => Ok(()),
        }
    }

    fn open_session(&self, routes: &Routes) -> Result<u64, TransportError> {
        let mut inner = self.locked();
        Self::check_live(&inner)?;
        let session = inner.next_session;
        inner.next_session += 1;
        let n = routes.num_nodes();
        for rank in 0..self.workers {
            let (lo, hi) = node_range(n, self.workers, rank);
            let cmd = Command::Open {
                session,
                n,
                lo,
                hi,
                routes: (lo..hi).map(|v| routes.ports(v).to_vec()).collect(),
            };
            let line = wire::render_command(&cmd);
            inner.send_line(rank, &line)?;
        }
        for rank in 0..self.workers {
            match inner.read_reply(rank)? {
                Reply::Ok { session: s } if s == session => {}
                Reply::Error { detail } => {
                    return Err(inner.fail(TransportError::Protocol { detail }))
                }
                other => {
                    return Err(inner.fail(TransportError::Protocol {
                        detail: format!("unexpected reply to open from worker {rank}: {other:?}"),
                    }))
                }
            }
        }
        Ok(session)
    }

    fn exchange(
        &self,
        session: u64,
        round: usize,
        outbox: &[Message],
    ) -> Result<RoundView, TransportError> {
        let mut inner = self.locked();
        Self::check_live(&inner)?;
        let line = wire::render_command(&Command::Round {
            session,
            round,
            outbox: outbox.to_vec(),
        });
        for rank in 0..self.workers {
            inner.send_line(rank, &line)?;
        }
        // Rank-order reads make the merge deterministic: slices are
        // contiguous ascending node ranges, so concatenation in rank
        // order is node order.
        let mut inboxes: Vec<Vec<(u64, Message)>> = Vec::with_capacity(outbox.len());
        for rank in 0..self.workers {
            match inner.read_reply(rank)? {
                Reply::View {
                    session: s,
                    round: r,
                    inboxes: part,
                } if s == session && r == round => inboxes.extend(part),
                Reply::Error { detail } => {
                    return Err(inner.fail(TransportError::Protocol { detail }))
                }
                other => {
                    return Err(inner.fail(TransportError::Protocol {
                        detail: format!("unexpected reply to round from worker {rank}: {other:?}"),
                    }))
                }
            }
        }
        Ok(RoundView::new(inboxes))
    }

    fn close_session(&self, session: u64) -> Result<(), TransportError> {
        let mut inner = self.locked();
        Self::check_live(&inner)?;
        let line = wire::render_command(&Command::Close { session });
        for rank in 0..self.workers {
            inner.send_line(rank, &line)?;
        }
        for rank in 0..self.workers {
            match inner.read_reply(rank)? {
                Reply::Ok { session: s } if s == session => {}
                Reply::Error { detail } => {
                    return Err(inner.fail(TransportError::Protocol { detail }))
                }
                other => {
                    return Err(inner.fail(TransportError::Protocol {
                        detail: format!("unexpected reply to close from worker {rank}: {other:?}"),
                    }))
                }
            }
        }
        Ok(())
    }
}

/// A [`Transport`] whose `open` already failed at worker-spawn time;
/// it reports the spawn error on first use so failures surface
/// through the same typed path as mid-run deaths.
struct FailedTransport(TransportError);

impl Transport for FailedTransport {
    fn open(&mut self, _routes: &Routes) -> Result<(), TransportError> {
        Err(self.0.clone())
    }

    fn exchange(
        &mut self,
        _round: usize,
        _outbox: &[Message],
    ) -> Result<RoundView, TransportError> {
        Err(self.0.clone())
    }
}

/// One run's view of the shared [`WorkerGroup`]: a session that is
/// opened with the run's routes and closed at the barrier.
pub struct SocketTransport {
    group: Arc<WorkerGroup>,
    session: Option<u64>,
}

impl Transport for SocketTransport {
    fn open(&mut self, routes: &Routes) -> Result<(), TransportError> {
        if self.session.is_some() {
            return Err(TransportError::Protocol {
                detail: "transport opened twice".to_string(),
            });
        }
        self.session = Some(self.group.open_session(routes)?);
        Ok(())
    }

    fn exchange(&mut self, round: usize, outbox: &[Message]) -> Result<RoundView, TransportError> {
        let session = self.session.ok_or_else(|| TransportError::Protocol {
            detail: "exchange before open".to_string(),
        })?;
        self.group.exchange(session, round, outbox)
    }

    fn barrier(&mut self) -> Result<(), TransportError> {
        match self.session.take() {
            Some(session) => self.group.close_session(session),
            None => Ok(()),
        }
    }

    fn teardown(&mut self) {
        if let Some(session) = self.session.take() {
            let _ = self.group.close_session(session);
        }
    }
}

enum GroupSlot {
    Unspawned,
    Live(Arc<WorkerGroup>),
    Failed(TransportError),
}

/// [`TransportFactory`] for the multi-process backend. Workers are
/// spawned lazily on the first `create` and shared by every transport
/// the factory hands out; runs multiplex over the group as sessions.
///
/// A group whose workers died is respawned on the next `create` (the
/// failure was transient); a group that never spawned (bad binary) is
/// cached as failed so repeated runs fail fast instead of re-exec'ing
/// a broken command.
pub struct SocketFactory {
    workers: usize,
    cmd: WorkerCmd,
    group: Mutex<GroupSlot>,
}

impl SocketFactory {
    /// A factory that re-execs the current binary as its workers. The
    /// binary must call [`maybe_run_worker`](crate::maybe_run_worker)
    /// before any other work.
    pub fn self_exec(workers: usize) -> Self {
        Self::with_command(workers, WorkerCmd::SelfExec)
    }

    /// A factory with an explicit worker launch command.
    pub fn with_command(workers: usize, cmd: WorkerCmd) -> Self {
        SocketFactory {
            workers: workers.max(1),
            cmd,
            group: Mutex::new(GroupSlot::Unspawned),
        }
    }

    fn group(&self) -> Result<Arc<WorkerGroup>, TransportError> {
        let mut slot = self.group.lock().unwrap_or_else(|e| e.into_inner());
        if let GroupSlot::Live(group) = &*slot {
            if !group.is_dead() {
                return Ok(Arc::clone(group));
            }
        }
        if let GroupSlot::Failed(err) = &*slot {
            return Err(err.clone());
        }
        match WorkerGroup::spawn(self.workers, &self.cmd) {
            Ok(group) => {
                let group = Arc::new(group);
                *slot = GroupSlot::Live(Arc::clone(&group));
                Ok(group)
            }
            Err(err) => {
                *slot = GroupSlot::Failed(err.clone());
                Err(err)
            }
        }
    }
}

impl TransportFactory for SocketFactory {
    fn create(&self) -> Box<dyn Transport> {
        match self.group() {
            Ok(group) => Box::new(SocketTransport {
                group,
                session: None,
            }),
            Err(err) => Box::new(FailedTransport(err)),
        }
    }

    fn label(&self) -> String {
        format!("sockets:{}", self.workers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ranges_partition() {
        for n in 0..12 {
            for w in 1..6 {
                let mut covered = 0;
                for r in 0..w {
                    let (lo, hi) = node_range(n, w, r);
                    assert!(lo <= hi && hi <= n);
                    assert_eq!(lo, covered, "ranges must be contiguous");
                    covered = hi;
                }
                assert_eq!(covered, n, "ranges must cover 0..{n}");
            }
        }
    }

    #[test]
    fn failed_transport_reports_spawn_error() {
        let err = TransportError::Spawn {
            detail: "nope".to_string(),
        };
        let mut t = FailedTransport(err.clone());
        assert_eq!(t.open(&Routes::from_ports(vec![])), Err(err.clone()));
        assert_eq!(t.exchange(0, &[]), Err(err));
    }
}
