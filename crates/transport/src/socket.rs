//! The coordinator side of the multi-process backend: spawns worker
//! subprocesses, hands each a contiguous node range, and drives one
//! JSONL request/reply exchange per round over loopback TCP.
//!
//! Determinism obligations (DESIGN.md §14) are met by construction:
//! the coordinator sends the round to every worker and then reads the
//! replies **in rank order**, so the merged [`RoundView`] is the
//! rank-0 slice followed by rank-1's, etc. — exactly node order,
//! independent of which worker answered first. No wall-clock value
//! ever crosses the wire; all accounting stays in the driver.
//!
//! Cross-process telemetry (DESIGN.md §15) rides the same wire:
//! workers ship a compact numeric session summary home inside the
//! `closed` acknowledgement, the factory accumulates the summaries
//! per rank in a [`TelemetryStore`], and one `flush_telemetry` call
//! per run set derives counters and synthesizes trace events from
//! them — rank order, session spans canonically sorted — into the
//! shared `Collector`/`MetricsHub` as the `transport.*` counter
//! family under `worker:<rank>` units. Wall-clock-ish
//! quantities (accept ticks, spawn counts, shutdown-time lifetime
//! totals) never touch those sinks; they surface only through
//! [`TransportFactory::wall_stats`] for the `--transport-wall`
//! sidecar.
//!
//! Any worker failure — spawn error, mid-run death, malformed reply —
//! becomes a typed [`TransportError`], never a panic, and marks the
//! whole group dead so later sessions fail fast. On the way down the
//! coordinator salvages what it can: surviving workers are asked to
//! close every open session so their telemetry is merged rather than
//! dropped, the dead rank's missing contribution is marked with an
//! explicit `truncated` counter, and the per-link flight-recorder
//! rings (last [`FLIGHT_RING_CAPACITY`] wire events each) are frozen
//! into a [`Postmortem`] that travels on the error itself.

use crate::wire::{self, Command, Reply, SessionSpan, WorkerTelemetry};
use bcc_model::postmortem::{
    Postmortem, TransportHealth, WireEvent, WorkerHealth, FLIGHT_RING_CAPACITY,
};
use bcc_model::transport::{RoundView, Routes, Transport, TransportError, TransportFactory};
use bcc_model::Message;
use bcc_trace::{field, Collector, Event, EventKind, FieldValue};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Stdio};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// How long a blocking read on a worker link may stall before the
/// worker is declared dead. Generous: a healthy worker answers a
/// round in microseconds.
const READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Read patience during best-effort teardown: long enough for a
/// healthy worker's goodbye, short enough that a hung worker cannot
/// stall `Drop` noticeably.
const SHUTDOWN_READ_TIMEOUT: Duration = Duration::from_secs(1);

/// Accept-loop patience: `ACCEPT_TICKS × ACCEPT_TICK` bounds how long
/// spawn waits for all workers to connect.
const ACCEPT_TICK: Duration = Duration::from_millis(5);
const ACCEPT_TICKS: u32 = 2000;

/// How many stale replies the salvage path will skip per link while
/// hunting the `closed` acknowledgement it asked for (pending round
/// views queue ahead of it on a surviving worker's stream).
const SALVAGE_SKIP_LIMIT: usize = 64;

/// How a worker subprocess is launched.
#[derive(Debug, Clone)]
pub enum WorkerCmd {
    /// Re-exec the current executable with
    /// [`WORKER_FLAG`](crate::WORKER_FLAG) as `argv[1]` — the default
    /// for binaries that call
    /// [`maybe_run_worker`](crate::maybe_run_worker) first thing in
    /// `main`.
    SelfExec,
    /// Launch the given binary (which must also dispatch on the
    /// worker flag). Used by integration tests to point at the
    /// dedicated `bcc-transport-worker` binary.
    Bin(PathBuf),
}

fn spawn_err(detail: String) -> TransportError {
    TransportError::Spawn { detail }
}

/// Computes rank `r`'s node range `lo..hi` out of `n` nodes split
/// over `w` workers: contiguous, ascending, covering `0..n` exactly
/// (empty ranges when `w > n`).
pub fn node_range(n: usize, w: usize, r: usize) -> (usize, usize) {
    if w == 0 {
        return (0, 0);
    }
    (r * n / w, (r + 1) * n / w)
}

/// Ring metadata of one wire line, derived from message content only.
struct WireMeta {
    kind: &'static str,
    session: u64,
    round: u64,
}

impl WireMeta {
    fn of_command(cmd: &Command) -> WireMeta {
        match cmd {
            Command::Open { session, .. } => WireMeta {
                kind: "open",
                session: *session,
                round: 0,
            },
            Command::Round { session, round, .. } => WireMeta {
                kind: "round",
                session: *session,
                round: *round as u64,
            },
            Command::Close { session } => WireMeta {
                kind: "close",
                session: *session,
                round: 0,
            },
            Command::Shutdown => WireMeta {
                kind: "shutdown",
                session: 0,
                round: 0,
            },
        }
    }

    fn of_reply(reply: &Reply) -> WireMeta {
        match reply {
            Reply::Hello { .. } => WireMeta {
                kind: "hello",
                session: 0,
                round: 0,
            },
            Reply::Ok { session } => WireMeta {
                kind: "ok",
                session: *session,
                round: 0,
            },
            Reply::View { session, round, .. } => WireMeta {
                kind: "view",
                session: *session,
                round: *round as u64,
            },
            Reply::Closed { session, .. } => WireMeta {
                kind: "closed",
                session: *session,
                round: 0,
            },
            Reply::Telemetry { .. } => WireMeta {
                kind: "telemetry",
                session: 0,
                round: 0,
            },
            Reply::Bye => WireMeta {
                kind: "bye",
                session: 0,
                round: 0,
            },
            Reply::Error { .. } => WireMeta {
                kind: "error",
                session: 0,
                round: 0,
            },
        }
    }
}

/// Everything one rank has shipped home since the last flush.
///
/// The routed-traffic sums are plain fields, not map entries:
/// `record_closed` runs once per session close while the store's
/// mutex is held, so the hot path must not allocate (string-keyed
/// accumulation measurably showed up in `BENCH_PR10.json`).
#[derive(Default)]
struct RankTelemetry {
    /// Summed span-derived per-session counters.
    frames: u64,
    rounds: u64,
    symbols: u64,
    /// Explicitly shipped counters (a closed block that carries its
    /// own counter list overrides span derivation; nothing on the
    /// current wire does, so this stays empty and unallocated).
    extra: BTreeMap<String, u64>,
    /// Sessions closed with a telemetry block.
    sessions: u64,
    /// One numeric summary per closed session, in arrival order;
    /// canonically sorted at flush so the merged trace is
    /// independent of session interleaving.
    spans: Vec<SessionSpan>,
    /// Open sessions whose telemetry was lost to a worker death.
    truncated: u64,
}

impl RankTelemetry {
    /// The rank's counter list in canonical (name-sorted) order,
    /// ready to absorb into a `MetricsHub`.
    fn counters(&self) -> Vec<(String, u64)> {
        let mut counters = self.extra.clone();
        for (name, value) in [
            ("frames", self.frames),
            ("rounds", self.rounds),
            ("symbols", self.symbols),
        ] {
            if value > 0 {
                *counters.entry(name.to_string()).or_insert(0) += value;
            }
        }
        if self.sessions > 0 {
            counters.insert("sessions".to_string(), self.sessions);
        }
        if self.truncated > 0 {
            counters.insert("truncated".to_string(), self.truncated);
        }
        counters.into_iter().collect()
    }
}

#[derive(Default)]
struct TelemetryState {
    ranks: BTreeMap<usize, RankTelemetry>,
    incidents: Vec<Postmortem>,
    /// Wall-clock-ish counters for the `--transport-wall` sidecar.
    wall: BTreeMap<String, u64>,
}

/// The factory-owned accumulator for everything workers report:
/// deterministic telemetry (drained by `flush_telemetry`), frozen
/// postmortems (drained by `take_postmortems`), and wall-ish stats.
/// Shared with every [`WorkerGroup`] the factory spawns, so
/// accumulations survive a respawn.
pub(crate) struct TelemetryStore {
    inner: Mutex<TelemetryState>,
}

impl TelemetryStore {
    fn new() -> Arc<TelemetryStore> {
        Arc::new(TelemetryStore {
            inner: Mutex::new(TelemetryState::default()),
        })
    }

    fn state(&self) -> MutexGuard<'_, TelemetryState> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wall_add(&self, key: &str, delta: u64) {
        let mut state = self.state();
        *state.wall.entry(key.to_string()).or_insert(0) += delta;
    }

    fn wall_get(&self, key: &str) -> u64 {
        self.state().wall.get(key).copied().unwrap_or(0)
    }

    /// Records one closed session's telemetry block for `rank`.
    /// Empty blocks (telemetry disabled worker-side) are dropped so a
    /// disabled run's dumps stay indistinguishable from local runs.
    fn record_closed(&self, rank: usize, telemetry: WorkerTelemetry) {
        if telemetry.counters.is_empty() && telemetry.span.is_none() {
            return;
        }
        let mut state = self.state();
        let entry = state.ranks.entry(rank).or_default();
        if telemetry.counters.is_empty() {
            // Normal path: the span doubles as the session's counters
            // so the wire ships each number exactly once, and the
            // accumulation is three integer adds — no allocation
            // while the store lock is held.
            if let Some(span) = &telemetry.span {
                entry.frames += span.frames;
                entry.rounds = entry.rounds.saturating_add(span.rounds);
                entry.symbols += span.symbols;
            }
        } else {
            // Explicit counters take precedence over span-derived
            // ones, so a block carrying both is never double-counted.
            for (name, value) in telemetry.counters {
                *entry.extra.entry(name).or_insert(0) += value;
            }
        }
        entry.sessions += 1;
        if let Some(span) = telemetry.span {
            entry.spans.push(span);
        }
    }

    fn add_truncated(&self, rank: usize, count: u64) {
        if count == 0 {
            return;
        }
        let mut state = self.state();
        state.ranks.entry(rank).or_default().truncated += count;
    }

    fn record_lifetime(&self, rank: usize, counters: &[(String, u64)]) {
        let mut state = self.state();
        for (name, value) in counters {
            let key = format!("worker:{rank}.lifetime.{name}");
            let slot = state.wall.entry(key).or_insert(0);
            *slot = (*slot).max(*value);
        }
    }

    fn record_incident(&self, pm: Postmortem) {
        self.state().incidents.push(pm);
    }

    fn take_incidents(&self) -> Vec<Postmortem> {
        self.state().incidents.split_off(0)
    }

    fn wall_stats(&self) -> Vec<(String, u64)> {
        self.state()
            .wall
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    /// Drains the per-rank accumulations into the run's shared sinks:
    /// group totals under unit `transport`, then each rank in
    /// ascending order under `transport/worker:<rank>`, its session
    /// trace blocks canonically sorted and wrapped in a
    /// `worker:<rank>` span so profiler frames file under the
    /// `transport` unit class. The store is drained first (one short
    /// lock) and only then absorbed, keeping the lock order
    /// factory-side locks → sinks.
    fn drain_into(&self, collector: &Collector, hub: &bcc_metrics::MetricsHub) {
        let drained: Vec<(usize, RankTelemetry)> = {
            let mut state = self.state();
            let ranks = std::mem::take(&mut state.ranks);
            ranks.into_iter().collect()
        };
        if drained.is_empty() {
            return;
        }
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for (_, t) in &drained {
            for (name, value) in t.counters() {
                *totals.entry(name).or_insert(0) += value;
            }
        }
        let totals: Vec<(String, u64)> = totals.into_iter().collect();
        hub.absorb_foreign("transport", "transport.", &totals);
        for (rank, t) in drained {
            let counters = t.counters();
            let unit = format!("transport/worker:{rank}");
            hub.absorb_foreign(&unit, &format!("transport.worker:{rank}."), &counters);
            if !collector.enabled() {
                continue;
            }
            let mut spans = t.spans;
            spans.sort();
            if spans.is_empty() {
                continue;
            }
            let wrapper = format!("worker:{rank}");
            let mut events: Vec<Event> = Vec::with_capacity(4 * spans.len() + 2);
            events.push(synthetic_event(EventKind::SpanStart, &wrapper, Vec::new()));
            for s in spans {
                events.push(synthetic_event(
                    EventKind::SpanStart,
                    "session",
                    vec![field("n", s.n), field("nodes", s.nodes)],
                ));
                events.push(synthetic_event(
                    EventKind::Counter,
                    "frames",
                    vec![field("delta", s.frames)],
                ));
                events.push(synthetic_event(
                    EventKind::Counter,
                    "symbols",
                    vec![field("delta", s.symbols)],
                ));
                events.push(synthetic_event(
                    EventKind::SpanEnd,
                    "session",
                    vec![field("rounds", s.rounds)],
                ));
            }
            events.push(synthetic_event(EventKind::SpanEnd, &wrapper, Vec::new()));
            collector.absorb_foreign(unit, events);
        }
    }
}

/// An event synthesized from worker-shipped session summaries; unit,
/// sequence, and path are rewritten by `absorb_foreign`.
fn synthetic_event(kind: EventKind, name: &str, fields: Vec<(String, FieldValue)>) -> Event {
    Event {
        unit: String::new(),
        seq: 0,
        path: String::new(),
        kind,
        name: name.to_string(),
        fields,
    }
}

fn attach_postmortem(err: TransportError, pm: &Postmortem) -> TransportError {
    match err {
        TransportError::WorkerDead { rank, detail, .. } => TransportError::WorkerDead {
            rank,
            detail,
            postmortem: Some(Box::new(pm.clone())),
        },
        TransportError::Protocol { detail, .. } => TransportError::Protocol {
            detail,
            postmortem: Some(Box::new(pm.clone())),
        },
        other => other,
    }
}

struct Link {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Flight recorder: the last [`FLIGHT_RING_CAPACITY`] wire events
    /// on this link, oldest first.
    ring: VecDeque<WireEvent>,
}

impl Link {
    fn record_wire(&mut self, dir: &str, meta: &WireMeta, bytes: usize) {
        if self.ring.len() == FLIGHT_RING_CAPACITY {
            self.ring.pop_front();
        }
        self.ring.push_back(WireEvent {
            dir: dir.to_string(),
            kind: meta.kind.to_string(),
            session: meta.session,
            round: meta.round,
            bytes: bytes as u64,
        });
    }
}

enum RawError {
    Dead(String),
    Protocol(String),
}

struct GroupInner {
    /// One link per worker, index = rank.
    links: Vec<Link>,
    children: Vec<Child>,
    next_session: u64,
    /// Sessions opened and not yet closed — the salvage worklist.
    open_sessions: BTreeSet<u64>,
    /// Per-rank liveness as far as the coordinator knows.
    alive: Vec<bool>,
    /// Factory label (`sockets:N`), echoed into postmortems.
    backend: String,
    telemetry: Arc<TelemetryStore>,
    /// Set on first failure; every later call returns it.
    dead: Option<TransportError>,
}

impl GroupInner {
    /// Poisons the group: salvages surviving workers' telemetry for
    /// every open session, freezes the flight rings into a
    /// [`Postmortem`], attaches it to the error, and records the
    /// incident on the factory store.
    fn fail(&mut self, err: TransportError) -> TransportError {
        if let Some(existing) = &self.dead {
            return existing.clone();
        }
        if let TransportError::WorkerDead { rank, .. } = &err {
            if let Some(alive) = self.alive.get_mut(*rank) {
                *alive = false;
            }
        }
        let open_before_salvage = self.open_sessions.len() as u64;
        self.salvage();
        let pm = self.build_postmortem(&err.to_string(), open_before_salvage);
        let err = attach_postmortem(err, &pm);
        self.telemetry.record_incident(pm);
        self.dead = Some(err.clone());
        err
    }

    /// Best-effort recovery after a failure: every rank still
    /// believed alive is asked to close each open session, and the
    /// telemetry blocks that come back are merged as usual. Ranks
    /// that cannot deliver (the dead one, or peers that died with it)
    /// get their open sessions counted as `truncated` instead of
    /// silently dropped.
    fn salvage(&mut self) {
        let sessions: Vec<u64> = self.open_sessions.iter().copied().collect();
        if sessions.is_empty() {
            return;
        }
        for rank in 0..self.links.len() {
            if !self.alive[rank] {
                self.telemetry.add_truncated(rank, sessions.len() as u64);
                continue;
            }
            let mut recovered = 0u64;
            for &session in &sessions {
                let cmd = Command::Close { session };
                let line = wire::render_command(&cmd);
                if self
                    .send_raw(rank, &line, &WireMeta::of_command(&cmd))
                    .is_err()
                {
                    self.alive[rank] = false;
                    break;
                }
            }
            if self.alive[rank] {
                for &session in &sessions {
                    match self.salvage_read_closed(rank, session) {
                        Some(telemetry) => {
                            self.telemetry.record_closed(rank, telemetry);
                            recovered += 1;
                        }
                        None => {
                            self.alive[rank] = false;
                            break;
                        }
                    }
                }
            }
            self.telemetry
                .add_truncated(rank, sessions.len() as u64 - recovered);
        }
        self.open_sessions.clear();
    }

    /// Reads replies off `rank`'s link until the `closed`
    /// acknowledgement for `session` arrives, skipping whatever was
    /// already queued ahead of it (pending round views, error
    /// replies). `None` when the link dies or the skip budget runs
    /// out.
    fn salvage_read_closed(&mut self, rank: usize, session: u64) -> Option<WorkerTelemetry> {
        for _ in 0..SALVAGE_SKIP_LIMIT {
            match self.read_raw(rank) {
                Ok(Reply::Closed {
                    session: s,
                    telemetry,
                }) if s == session => return Some(telemetry),
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
        None
    }

    fn build_postmortem(&self, error: &str, open_sessions: u64) -> Postmortem {
        let respawns = self.telemetry.wall_get("spawns").saturating_sub(1);
        Postmortem {
            backend: self.backend.clone(),
            error: error.to_string(),
            workers: self
                .links
                .iter()
                .enumerate()
                .map(|(rank, link)| WorkerHealth {
                    rank,
                    alive: self.alive.get(rank).copied().unwrap_or(false),
                    respawns,
                    sessions: open_sessions,
                    ring: link.ring.iter().cloned().collect(),
                })
                .collect(),
        }
    }

    fn health(&self, backend: &str) -> TransportHealth {
        let respawns = self.telemetry.wall_get("spawns").saturating_sub(1);
        let sessions = self.open_sessions.len() as u64;
        TransportHealth {
            backend: backend.to_string(),
            workers: self
                .links
                .iter()
                .enumerate()
                .map(|(rank, _)| WorkerHealth {
                    rank,
                    alive: self.alive.get(rank).copied().unwrap_or(false),
                    respawns,
                    sessions,
                    ring: Vec::new(),
                })
                .collect(),
        }
    }

    fn send_raw(&mut self, rank: usize, line: &str, meta: &WireMeta) -> Result<(), RawError> {
        let link = self
            .links
            .get_mut(rank)
            .ok_or_else(|| RawError::Protocol(format!("no link for worker rank {rank}")))?;
        link.record_wire("send", meta, line.len());
        link.writer
            .write_all(line.as_bytes())
            .and_then(|()| link.writer.write_all(b"\n"))
            .and_then(|()| link.writer.flush())
            .map_err(|e| RawError::Dead(format!("write failed: {e}")))
    }

    fn read_raw(&mut self, rank: usize) -> Result<Reply, RawError> {
        let link = self
            .links
            .get_mut(rank)
            .ok_or_else(|| RawError::Protocol(format!("no link for worker rank {rank}")))?;
        let mut line = String::new();
        match link.reader.read_line(&mut line) {
            Ok(0) => Err(RawError::Dead("connection closed".to_string())),
            Ok(_) => {
                let line = line.trim_end();
                match wire::parse_reply(line) {
                    Ok(reply) => {
                        link.record_wire("recv", &WireMeta::of_reply(&reply), line.len());
                        Ok(reply)
                    }
                    Err(detail) => Err(RawError::Protocol(format!(
                        "bad reply from worker {rank}: {detail}"
                    ))),
                }
            }
            Err(e) => Err(RawError::Dead(format!("read failed: {e}"))),
        }
    }

    fn send_line(
        &mut self,
        rank: usize,
        line: &str,
        meta: &WireMeta,
    ) -> Result<(), TransportError> {
        self.send_raw(rank, line, meta).map_err(|e| {
            let err = match e {
                RawError::Dead(detail) => TransportError::WorkerDead {
                    rank,
                    detail,
                    postmortem: None,
                },
                RawError::Protocol(detail) => TransportError::Protocol {
                    detail,
                    postmortem: None,
                },
            };
            self.fail(err)
        })
    }

    fn read_reply(&mut self, rank: usize) -> Result<Reply, TransportError> {
        self.read_raw(rank).map_err(|e| {
            let err = match e {
                RawError::Dead(detail) => TransportError::WorkerDead {
                    rank,
                    detail,
                    postmortem: None,
                },
                RawError::Protocol(detail) => TransportError::Protocol {
                    detail,
                    postmortem: None,
                },
            };
            self.fail(err)
        })
    }
}

impl Drop for GroupInner {
    fn drop(&mut self) {
        // Best-effort graceful shutdown: ask every worker to exit,
        // read its lifetime-totals goodbye (into the wall-stats
        // sidecar — shutdown timing is not deterministic), then reap
        // unconditionally.
        let line = wire::render_command(&Command::Shutdown);
        for link in &mut self.links {
            let _ = link
                .writer
                .write_all(line.as_bytes())
                .and_then(|()| link.writer.write_all(b"\n"))
                .and_then(|()| link.writer.flush());
            let _ = link
                .reader
                .get_ref()
                .set_read_timeout(Some(SHUTDOWN_READ_TIMEOUT));
        }
        for rank in 0..self.links.len() {
            if !self.alive.get(rank).copied().unwrap_or(false) {
                continue;
            }
            // At most two goodbye lines: `telemetry`, then `bye`.
            for _ in 0..2 {
                match self.read_raw(rank) {
                    Ok(Reply::Telemetry { rank: r, counters }) if r == rank => {
                        self.telemetry.record_lifetime(rank, &counters);
                    }
                    Ok(Reply::Bye) => break,
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
        }
        self.links.clear();
        for child in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

/// A pool of connected worker subprocesses, shared by every
/// [`SocketTransport`] the owning [`SocketFactory`] creates. Runs are
/// multiplexed over it as independent sessions.
pub struct WorkerGroup {
    workers: usize,
    inner: Mutex<GroupInner>,
}

fn kill_all(children: &mut Vec<Child>) {
    for child in children.iter_mut() {
        let _ = child.kill();
        let _ = child.wait();
    }
    children.clear();
}

impl WorkerGroup {
    fn spawn(
        workers: usize,
        cmd: &WorkerCmd,
        backend: String,
        telemetry: Arc<TelemetryStore>,
    ) -> Result<Self, TransportError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))
            .map_err(|e| spawn_err(format!("bind failed: {e}")))?;
        let port = listener
            .local_addr()
            .map_err(|e| spawn_err(format!("local_addr failed: {e}")))?
            .port();
        listener
            .set_nonblocking(true)
            .map_err(|e| spawn_err(format!("set_nonblocking failed: {e}")))?;

        let mut children: Vec<Child> = Vec::with_capacity(workers);
        for rank in 0..workers {
            let exe = match cmd {
                WorkerCmd::SelfExec => std::env::current_exe().map_err(|e| {
                    kill_all(&mut children);
                    spawn_err(format!("current_exe failed: {e}"))
                })?,
                WorkerCmd::Bin(path) => path.clone(),
            };
            match std::process::Command::new(&exe)
                .arg(crate::WORKER_FLAG)
                .arg(port.to_string())
                .arg(rank.to_string())
                .stdin(Stdio::null())
                .stdout(Stdio::null())
                .spawn()
            {
                Ok(child) => children.push(child),
                Err(e) => {
                    kill_all(&mut children);
                    return Err(spawn_err(format!(
                        "failed to exec worker {rank} ({}): {e}",
                        exe.display()
                    )));
                }
            }
        }

        // Nonblocking accept loop with a liveness check, so a worker
        // that dies before connecting (wrong binary, crash on start)
        // fails fast with a typed error instead of hanging.
        let mut pending: Vec<TcpStream> = Vec::with_capacity(workers);
        let mut ticks = 0u32;
        while pending.len() < workers {
            match listener.accept() {
                Ok((stream, _)) => pending.push(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    for (rank, child) in children.iter_mut().enumerate() {
                        if let Ok(Some(status)) = child.try_wait() {
                            kill_all(&mut children);
                            return Err(spawn_err(format!(
                                "worker {rank} exited before connecting: {status}"
                            )));
                        }
                    }
                    if ticks >= ACCEPT_TICKS {
                        kill_all(&mut children);
                        return Err(spawn_err(
                            "timed out waiting for workers to connect".to_string(),
                        ));
                    }
                    ticks += 1;
                    std::thread::sleep(ACCEPT_TICK);
                }
                Err(e) => {
                    kill_all(&mut children);
                    return Err(spawn_err(format!("accept failed: {e}")));
                }
            }
        }

        // Handshake: each worker announces its rank; links are stored
        // rank-indexed so reply order is always rank order.
        let mut slots: Vec<Option<Link>> = (0..workers).map(|_| None).collect();
        for stream in pending {
            let link = (|| -> Result<(usize, Link), String> {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| format!("set_nonblocking failed: {e}"))?;
                stream
                    .set_read_timeout(Some(READ_TIMEOUT))
                    .map_err(|e| format!("set_read_timeout failed: {e}"))?;
                let _ = stream.set_nodelay(true);
                let writer = stream
                    .try_clone()
                    .map_err(|e| format!("try_clone failed: {e}"))?;
                let mut reader = BufReader::new(stream);
                let mut line = String::new();
                reader
                    .read_line(&mut line)
                    .map_err(|e| format!("handshake read failed: {e}"))?;
                let line = line.trim_end();
                match wire::parse_reply(line) {
                    Ok(Reply::Hello { rank }) if rank < workers => {
                        let mut link = Link {
                            reader,
                            writer,
                            ring: VecDeque::new(),
                        };
                        link.record_wire(
                            "recv",
                            &WireMeta {
                                kind: "hello",
                                session: 0,
                                round: 0,
                            },
                            line.len(),
                        );
                        Ok((rank, link))
                    }
                    Ok(Reply::Hello { rank }) => {
                        Err(format!("hello with out-of-range rank {rank}"))
                    }
                    Ok(other) => Err(format!("expected hello, got {other:?}")),
                    Err(e) => Err(format!("bad hello: {e}")),
                }
            })();
            match link {
                Ok((rank, link)) => {
                    if slots[rank].is_some() {
                        kill_all(&mut children);
                        return Err(spawn_err(format!("duplicate hello for rank {rank}")));
                    }
                    slots[rank] = Some(link);
                }
                Err(detail) => {
                    kill_all(&mut children);
                    return Err(spawn_err(detail));
                }
            }
        }
        let mut links = Vec::with_capacity(workers);
        for (rank, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(link) => links.push(link),
                None => {
                    kill_all(&mut children);
                    return Err(spawn_err(format!("no hello from rank {rank}")));
                }
            }
        }

        telemetry.wall_add("spawns", 1);
        telemetry.wall_add("accept_ticks", u64::from(ticks));

        Ok(WorkerGroup {
            workers,
            inner: Mutex::new(GroupInner {
                links,
                children,
                next_session: 1,
                open_sessions: BTreeSet::new(),
                alive: vec![true; workers],
                backend,
                telemetry,
                dead: None,
            }),
        })
    }

    fn locked(&self) -> MutexGuard<'_, GroupInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn is_dead(&self) -> bool {
        self.locked().dead.is_some()
    }

    fn check_live(inner: &GroupInner) -> Result<(), TransportError> {
        match &inner.dead {
            Some(err) => Err(err.clone()),
            None => Ok(()),
        }
    }

    fn open_session(&self, routes: &Routes) -> Result<u64, TransportError> {
        let mut inner = self.locked();
        Self::check_live(&inner)?;
        let session = inner.next_session;
        inner.next_session += 1;
        let n = routes.num_nodes();
        for rank in 0..self.workers {
            let (lo, hi) = node_range(n, self.workers, rank);
            let cmd = Command::Open {
                session,
                n,
                lo,
                hi,
                routes: (lo..hi).map(|v| routes.ports(v).to_vec()).collect(),
            };
            let line = wire::render_command(&cmd);
            inner.send_line(rank, &line, &WireMeta::of_command(&cmd))?;
        }
        for rank in 0..self.workers {
            match inner.read_reply(rank)? {
                Reply::Ok { session: s } if s == session => {}
                Reply::Error { detail } => {
                    return Err(inner.fail(TransportError::Protocol {
                        detail,
                        postmortem: None,
                    }))
                }
                other => {
                    return Err(inner.fail(TransportError::Protocol {
                        detail: format!("unexpected reply to open from worker {rank}: {other:?}"),
                        postmortem: None,
                    }))
                }
            }
        }
        inner.open_sessions.insert(session);
        Ok(session)
    }

    fn exchange(
        &self,
        session: u64,
        round: usize,
        outbox: &[Message],
    ) -> Result<RoundView, TransportError> {
        let mut inner = self.locked();
        Self::check_live(&inner)?;
        let cmd = Command::Round {
            session,
            round,
            outbox: outbox.to_vec(),
        };
        let line = wire::render_command(&cmd);
        let meta = WireMeta::of_command(&cmd);
        for rank in 0..self.workers {
            inner.send_line(rank, &line, &meta)?;
        }
        // Rank-order reads make the merge deterministic: slices are
        // contiguous ascending node ranges, so concatenation in rank
        // order is node order.
        let mut inboxes: Vec<Vec<(u64, Message)>> = Vec::with_capacity(outbox.len());
        for rank in 0..self.workers {
            match inner.read_reply(rank)? {
                Reply::View {
                    session: s,
                    round: r,
                    inboxes: part,
                } if s == session && r == round => inboxes.extend(part),
                Reply::Error { detail } => {
                    return Err(inner.fail(TransportError::Protocol {
                        detail,
                        postmortem: None,
                    }))
                }
                other => {
                    return Err(inner.fail(TransportError::Protocol {
                        detail: format!("unexpected reply to round from worker {rank}: {other:?}"),
                        postmortem: None,
                    }))
                }
            }
        }
        Ok(RoundView::new(inboxes))
    }

    fn close_session(&self, session: u64) -> Result<(), TransportError> {
        let mut inner = self.locked();
        Self::check_live(&inner)?;
        let cmd = Command::Close { session };
        let line = wire::render_command(&cmd);
        let meta = WireMeta::of_command(&cmd);
        for rank in 0..self.workers {
            inner.send_line(rank, &line, &meta)?;
        }
        for rank in 0..self.workers {
            match inner.read_reply(rank)? {
                Reply::Closed {
                    session: s,
                    telemetry,
                } if s == session => {
                    inner.telemetry.record_closed(rank, telemetry);
                }
                Reply::Error { detail } => {
                    return Err(inner.fail(TransportError::Protocol {
                        detail,
                        postmortem: None,
                    }))
                }
                other => {
                    return Err(inner.fail(TransportError::Protocol {
                        detail: format!("unexpected reply to close from worker {rank}: {other:?}"),
                        postmortem: None,
                    }))
                }
            }
        }
        inner.open_sessions.remove(&session);
        Ok(())
    }
}

/// A [`Transport`] whose `open` already failed at worker-spawn time;
/// it reports the spawn error on first use so failures surface
/// through the same typed path as mid-run deaths.
struct FailedTransport(TransportError);

impl Transport for FailedTransport {
    fn open(&mut self, _routes: &Routes) -> Result<(), TransportError> {
        Err(self.0.clone())
    }

    fn exchange(
        &mut self,
        _round: usize,
        _outbox: &[Message],
    ) -> Result<RoundView, TransportError> {
        Err(self.0.clone())
    }
}

/// One run's view of the shared [`WorkerGroup`]: a session that is
/// opened with the run's routes and closed at the barrier.
pub struct SocketTransport {
    group: Arc<WorkerGroup>,
    session: Option<u64>,
}

impl Transport for SocketTransport {
    fn open(&mut self, routes: &Routes) -> Result<(), TransportError> {
        if self.session.is_some() {
            return Err(TransportError::Protocol {
                detail: "transport opened twice".to_string(),
                postmortem: None,
            });
        }
        self.session = Some(self.group.open_session(routes)?);
        Ok(())
    }

    fn exchange(&mut self, round: usize, outbox: &[Message]) -> Result<RoundView, TransportError> {
        let session = self.session.ok_or_else(|| TransportError::Protocol {
            detail: "exchange before open".to_string(),
            postmortem: None,
        })?;
        self.group.exchange(session, round, outbox)
    }

    fn barrier(&mut self) -> Result<(), TransportError> {
        match self.session.take() {
            Some(session) => self.group.close_session(session),
            None => Ok(()),
        }
    }

    fn teardown(&mut self) {
        if let Some(session) = self.session.take() {
            let _ = self.group.close_session(session);
        }
    }
}

enum GroupSlot {
    Unspawned,
    Live(Arc<WorkerGroup>),
    Failed(TransportError),
}

/// [`TransportFactory`] for the multi-process backend. Workers are
/// spawned lazily on the first `create` and shared by every transport
/// the factory hands out; runs multiplex over the group as sessions.
///
/// A group whose workers died is respawned on the next `create` (the
/// failure was transient); a group that never spawned (bad binary) is
/// cached as failed so repeated runs fail fast instead of re-exec'ing
/// a broken command. The factory's [`TelemetryStore`] outlives both:
/// telemetry, postmortems, and wall stats accumulate across respawns
/// until drained through the [`TransportFactory`] observability
/// hooks.
pub struct SocketFactory {
    workers: usize,
    cmd: WorkerCmd,
    group: Mutex<GroupSlot>,
    telemetry: Arc<TelemetryStore>,
}

impl SocketFactory {
    /// A factory that re-execs the current binary as its workers. The
    /// binary must call [`maybe_run_worker`](crate::maybe_run_worker)
    /// before any other work.
    pub fn self_exec(workers: usize) -> Self {
        Self::with_command(workers, WorkerCmd::SelfExec)
    }

    /// A factory with an explicit worker launch command.
    pub fn with_command(workers: usize, cmd: WorkerCmd) -> Self {
        SocketFactory {
            workers: workers.max(1),
            cmd,
            group: Mutex::new(GroupSlot::Unspawned),
            telemetry: TelemetryStore::new(),
        }
    }

    fn group(&self) -> Result<Arc<WorkerGroup>, TransportError> {
        let mut slot = self.group.lock().unwrap_or_else(|e| e.into_inner());
        if let GroupSlot::Live(group) = &*slot {
            if !group.is_dead() {
                return Ok(Arc::clone(group));
            }
        }
        if let GroupSlot::Failed(err) = &*slot {
            return Err(err.clone());
        }
        match WorkerGroup::spawn(
            self.workers,
            &self.cmd,
            self.label(),
            Arc::clone(&self.telemetry),
        ) {
            Ok(group) => {
                let group = Arc::new(group);
                *slot = GroupSlot::Live(Arc::clone(&group));
                Ok(group)
            }
            Err(err) => {
                *slot = GroupSlot::Failed(err.clone());
                Err(err)
            }
        }
    }
}

impl TransportFactory for SocketFactory {
    fn create(&self) -> Box<dyn Transport> {
        match self.group() {
            Ok(group) => Box::new(SocketTransport {
                group,
                session: None,
            }),
            Err(err) => Box::new(FailedTransport(err)),
        }
    }

    fn label(&self) -> String {
        format!("sockets:{}", self.workers)
    }

    fn flush_telemetry(&self, collector: &Collector, hub: &bcc_metrics::MetricsHub) {
        self.telemetry.drain_into(collector, hub);
    }

    fn health(&self) -> Option<TransportHealth> {
        let backend = self.label();
        let slot = self.group.lock().unwrap_or_else(|e| e.into_inner());
        let health = match &*slot {
            GroupSlot::Live(group) => group.locked().health(&backend),
            GroupSlot::Unspawned | GroupSlot::Failed(_) => TransportHealth {
                backend,
                workers: Vec::new(),
            },
        };
        Some(health)
    }

    fn take_postmortems(&self) -> Vec<Postmortem> {
        self.telemetry.take_incidents()
    }

    fn wall_stats(&self) -> Vec<(String, u64)> {
        self.telemetry.wall_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ranges_partition() {
        for n in 0..12 {
            for w in 1..6 {
                let mut covered = 0;
                for r in 0..w {
                    let (lo, hi) = node_range(n, w, r);
                    assert!(lo <= hi && hi <= n);
                    assert_eq!(lo, covered, "ranges must be contiguous");
                    covered = hi;
                }
                assert_eq!(covered, n, "ranges must cover 0..{n}");
            }
        }
    }

    #[test]
    fn failed_transport_reports_spawn_error() {
        let err = TransportError::Spawn {
            detail: "nope".to_string(),
        };
        let mut t = FailedTransport(err.clone());
        assert_eq!(t.open(&Routes::from_ports(vec![])), Err(err.clone()));
        assert_eq!(t.exchange(0, &[]), Err(err));
    }

    #[test]
    fn flight_ring_evicts_oldest() {
        let stream = || {
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let addr = listener.local_addr().unwrap();
            let client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            (client, server)
        };
        let (client, server) = stream();
        let mut link = Link {
            reader: BufReader::new(server),
            writer: client,
            ring: VecDeque::new(),
        };
        for i in 0..(FLIGHT_RING_CAPACITY + 3) {
            link.record_wire(
                "send",
                &WireMeta {
                    kind: "round",
                    session: 1,
                    round: i as u64,
                },
                10,
            );
        }
        assert_eq!(link.ring.len(), FLIGHT_RING_CAPACITY);
        assert_eq!(link.ring.front().unwrap().round, 3);
        assert_eq!(
            link.ring.back().unwrap().round,
            (FLIGHT_RING_CAPACITY + 2) as u64
        );
    }

    #[test]
    fn telemetry_store_flush_is_rank_ordered_and_one_shot() {
        use bcc_metrics::{MetricsHub, MetricsLevel};
        use bcc_trace::TraceLevel;
        let store = TelemetryStore::new();
        let span = |rounds: u64, frames: u64| SessionSpan {
            n: 4,
            nodes: 2,
            rounds,
            frames,
            symbols: frames,
        };
        // Rank 1 recorded before rank 0; flush must still emit rank
        // order. Rank 0's two sessions arrive out of canonical order;
        // flush sorts the spans.
        store.record_closed(
            1,
            WorkerTelemetry {
                counters: Vec::new(),
                span: Some(span(2, 7)),
            },
        );
        store.record_closed(
            0,
            WorkerTelemetry {
                counters: Vec::new(),
                span: Some(span(9, 5)),
            },
        );
        store.record_closed(
            0,
            WorkerTelemetry {
                counters: Vec::new(),
                span: Some(span(1, 3)),
            },
        );
        store.add_truncated(1, 1);
        let collector = Collector::new(TraceLevel::Events);
        let hub = MetricsHub::new(MetricsLevel::Core);
        store.drain_into(&collector, &hub);
        // Second flush drains nothing.
        store.drain_into(&collector, &hub);
        let dump = hub.finish();
        assert_eq!(dump.counter("transport.frames"), Some(15));
        assert_eq!(dump.counter("transport.rounds"), Some(12));
        assert_eq!(dump.counter("transport.sessions"), Some(3));
        assert_eq!(dump.counter("transport.truncated"), Some(1));
        assert_eq!(dump.counter("transport.worker:0.frames"), Some(8));
        assert_eq!(dump.counter("transport.worker:0.sessions"), Some(2));
        assert_eq!(dump.counter("transport.worker:0.truncated"), None);
        assert_eq!(dump.counter("transport.worker:1.frames"), Some(7));
        assert_eq!(dump.counter("transport.worker:1.truncated"), Some(1));
        // The trace holds one wrapped unit per rank, sessions sorted
        // canonically (rank 0's rounds=1 session before rounds=9).
        let trace = collector.finish();
        let w0: Vec<(EventKind, String)> = trace
            .events()
            .iter()
            .filter(|e| e.unit == "transport/worker:0")
            .map(|e| (e.kind, e.name.clone()))
            .collect();
        assert_eq!(w0.len(), 10, "wrapper pair + 2 sessions x 4 events");
        assert_eq!(w0[0], (EventKind::SpanStart, "worker:0".to_string()));
        assert_eq!(w0[1], (EventKind::SpanStart, "session".to_string()));
        assert_eq!(w0[2], (EventKind::Counter, "frames".to_string()));
        assert_eq!(w0[9], (EventKind::SpanEnd, "worker:0".to_string()));
        let first_end = trace
            .events()
            .iter()
            .find(|e| {
                e.unit == "transport/worker:0"
                    && e.kind == EventKind::SpanEnd
                    && e.name == "session"
            })
            .unwrap();
        assert_eq!(
            first_end.field("rounds"),
            Some(&FieldValue::UInt(1)),
            "canonical sort puts the rounds=1 session first"
        );
    }

    #[test]
    fn empty_worker_telemetry_is_not_recorded() {
        let store = TelemetryStore::new();
        store.record_closed(0, WorkerTelemetry::default());
        use bcc_metrics::{MetricsHub, MetricsLevel};
        use bcc_trace::TraceLevel;
        let collector = Collector::new(TraceLevel::Events);
        let hub = MetricsHub::new(MetricsLevel::Core);
        store.drain_into(&collector, &hub);
        assert!(hub.finish().is_empty());
        assert!(collector.finish().is_empty());
    }
}
