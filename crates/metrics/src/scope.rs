//! A shared, clonable handle to a [`MetricsBuf`].
//!
//! [`MetricsBuf`] is deliberately single-owner (recording is a plain
//! map update), but configuration objects — a simulator config, a
//! protocol-driver options struct, a job context — want to *carry* a
//! metrics destination by value and hand it to library code. This is
//! the same bridge `bcc_trace::TraceScope` provides for trace
//! buffers: an `Arc<Mutex<_>>` wrapper whose every method is a cheap
//! no-op branch on a cached level when metrics are off.

use crate::buf::MetricsBuf;
use crate::level::MetricsLevel;
use std::sync::{Arc, Mutex, PoisonError};

/// A clonable handle to one [`MetricsBuf`].
///
/// The mutex serializes the (rare) case of two clones recording
/// concurrently; when metrics are off every method is a branch on a
/// cached level — no lock, no allocation — so instrumented code needs
/// no `if`s.
#[derive(Debug, Clone)]
pub struct MetricScope {
    level: MetricsLevel,
    buf: Arc<Mutex<MetricsBuf>>,
}

impl MetricScope {
    /// Wraps a buffer for sharing.
    pub fn new(buf: MetricsBuf) -> Self {
        MetricScope {
            level: buf.level(),
            buf: Arc::new(Mutex::new(buf)),
        }
    }

    /// A scope that records nothing (detached contexts, unmeasured
    /// runs). This is the `Default`.
    pub fn disabled() -> Self {
        MetricScope::new(MetricsBuf::disabled())
    }

    /// The recording level the wrapped buffer was created with.
    pub fn level(&self) -> MetricsLevel {
        self.level
    }

    /// True when core counters/gauges/histograms are kept.
    pub fn core_enabled(&self) -> bool {
        self.level >= MetricsLevel::Core
    }

    /// True when per-observation detail is kept.
    pub fn full_enabled(&self) -> bool {
        self.level >= MetricsLevel::Full
    }

    /// Runs `f` with exclusive access to the underlying buffer — the
    /// bridge into library APIs that record several metrics at once.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricsBuf) -> R) -> R {
        let mut buf = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut buf)
    }

    /// Adds `delta` to the counter `name` (no-op when off).
    pub fn counter(&self, name: &str, delta: u64) {
        if self.core_enabled() {
            self.with(|b| b.counter(name, delta));
        }
    }

    /// Folds one gauge observation into `name` (no-op when off).
    pub fn gauge(&self, name: &str, value: u64) {
        if self.core_enabled() {
            self.with(|b| b.gauge(name, value));
        }
    }

    /// Records one histogram sample under `name` (no-op when off).
    pub fn observe(&self, name: &str, value: u64) {
        if self.core_enabled() {
            self.with(|b| b.observe(name, value));
        }
    }

    /// [`counter`](Self::counter), kept only at [`MetricsLevel::Full`].
    pub fn full_counter(&self, name: &str, delta: u64) {
        if self.full_enabled() {
            self.with(|b| b.counter(name, delta));
        }
    }

    /// [`gauge`](Self::gauge), kept only at [`MetricsLevel::Full`].
    pub fn full_gauge(&self, name: &str, value: u64) {
        if self.full_enabled() {
            self.with(|b| b.gauge(name, value));
        }
    }

    /// [`observe`](Self::observe), kept only at [`MetricsLevel::Full`].
    pub fn full_observe(&self, name: &str, value: u64) {
        if self.full_enabled() {
            self.with(|b| b.observe(name, value));
        }
    }

    /// Takes the buffer back out, leaving a disabled one behind. A
    /// hub calls this once to absorb the records; a closure that
    /// (incorrectly) kept a clone alive past its owner records into
    /// the discarded replacement, never corrupting the dump.
    pub fn take(&self) -> MetricsBuf {
        let mut buf = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::replace(&mut *buf, MetricsBuf::disabled())
    }
}

impl Default for MetricScope {
    fn default() -> Self {
        MetricScope::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_scope_records_nothing() {
        let scope = MetricScope::disabled();
        assert!(!scope.core_enabled());
        assert!(!scope.full_enabled());
        scope.counter("c", 1);
        scope.gauge("g", 2);
        scope.observe("h", 3);
        assert!(scope.take().is_empty());
    }

    #[test]
    fn clones_share_one_buffer() {
        let scope = MetricScope::new(MetricsBuf::new(MetricsLevel::Core, "u"));
        let clone = scope.clone();
        scope.counter("c", 1);
        clone.counter("c", 2);
        let (counters, _, _) = scope.take().into_parts();
        assert_eq!(counters.get("c"), Some(&3));
        // The clone now points at the discarded replacement.
        clone.counter("late", 1);
        assert!(scope.take().is_empty());
    }

    #[test]
    fn full_methods_gate_on_level() {
        let core = MetricScope::new(MetricsBuf::new(MetricsLevel::Core, "u"));
        core.full_counter("fc", 1);
        core.full_gauge("fg", 1);
        core.full_observe("fh", 1);
        assert!(core.take().is_empty());
        let full = MetricScope::new(MetricsBuf::new(MetricsLevel::Full, "u"));
        full.full_counter("fc", 1);
        full.full_observe("fh", 2);
        assert_eq!(full.take().len(), 2);
    }
}
