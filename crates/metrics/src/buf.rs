//! The per-unit recording buffer: plain map updates, no locks, no
//! clocks.

use crate::hist::HistogramSnapshot;
use crate::level::MetricsLevel;
use std::collections::BTreeMap;

/// Order-insensitive aggregate of a gauge series.
///
/// A deterministic merge cannot keep "last written value" — which
/// buffer is last depends on thread scheduling — so a gauge is
/// summarized by the commutative aggregates `count`/`min`/`max`/`sum`
/// instead. That is exactly the information a report needs (range and
/// mean of lane occupancy, queue depth, …) and none it cannot have.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeStat {
    /// Number of observations.
    pub count: u64,
    /// Smallest observed value (`u64::MAX` while empty).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
}

impl Default for GaugeStat {
    fn default() -> Self {
        GaugeStat {
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }
}

impl GaugeStat {
    /// An empty aggregate.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn observe(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum = self.sum.saturating_add(value);
    }

    /// Folds another aggregate in. Commutative and associative, so
    /// merged results are independent of buffer arrival order.
    pub fn merge_from(&mut self, other: &GaugeStat) {
        if other.count == 0 {
            return;
        }
        self.count = self.count.saturating_add(other.count);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A per-unit metrics buffer. One buffer belongs to exactly one
/// logical unit (a job, the suite) and is written from exactly one
/// thread at a time, so recording is a plain `BTreeMap` update — the
/// only lock in the whole pipeline is the one `MetricsHub::absorb`
/// takes per *buffer*.
///
/// Metric names are dotted paths (`sim.bits_broadcast`,
/// `cache.lookups`); the maps are `BTreeMap` so iteration — and hence
/// every rendered byte — is ordered by name, never by insertion or
/// hashing.
#[derive(Debug, Clone)]
pub struct MetricsBuf {
    level: MetricsLevel,
    unit: String,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeStat>,
    hists: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsBuf {
    /// A buffer for `unit` recording at `level`.
    pub fn new(level: MetricsLevel, unit: impl Into<String>) -> Self {
        MetricsBuf {
            level,
            unit: unit.into(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    /// A buffer that records nothing (the default for unmeasured
    /// runs).
    pub fn disabled() -> Self {
        MetricsBuf::new(MetricsLevel::Off, "")
    }

    /// The recording level.
    pub fn level(&self) -> MetricsLevel {
        self.level
    }

    /// The owning unit.
    pub fn unit(&self) -> &str {
        &self.unit
    }

    /// True when core counters/gauges/histograms are kept.
    pub fn core_enabled(&self) -> bool {
        self.level >= MetricsLevel::Core
    }

    /// True when per-observation detail is kept.
    pub fn full_enabled(&self) -> bool {
        self.level >= MetricsLevel::Full
    }

    /// Adds `delta` to the counter `name`.
    pub fn counter(&mut self, name: &str, delta: u64) {
        if self.core_enabled() {
            let c = self.counters.entry(name.to_string()).or_insert(0);
            *c = c.saturating_add(delta);
        }
    }

    /// Folds one gauge observation into `name`.
    pub fn gauge(&mut self, name: &str, value: u64) {
        if self.core_enabled() {
            self.gauges
                .entry(name.to_string())
                .or_default()
                .observe(value);
        }
    }

    /// Records one histogram sample under `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        if self.core_enabled() {
            self.hists
                .entry(name.to_string())
                .or_default()
                .observe(value);
        }
    }

    /// [`counter`](Self::counter), kept only at [`MetricsLevel::Full`].
    pub fn full_counter(&mut self, name: &str, delta: u64) {
        if self.full_enabled() {
            self.counter(name, delta);
        }
    }

    /// [`gauge`](Self::gauge), kept only at [`MetricsLevel::Full`].
    pub fn full_gauge(&mut self, name: &str, value: u64) {
        if self.full_enabled() {
            self.gauge(name, value);
        }
    }

    /// [`observe`](Self::observe), kept only at [`MetricsLevel::Full`].
    pub fn full_observe(&mut self, name: &str, value: u64) {
        if self.full_enabled() {
            self.observe(name, value);
        }
    }

    /// Number of distinct metrics held.
    pub fn len(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.hists.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Consumes the buffer into its three metric maps.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        BTreeMap<String, u64>,
        BTreeMap<String, GaugeStat>,
        BTreeMap<String, HistogramSnapshot>,
    ) {
        (self.counters, self.gauges, self.hists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buf_records_nothing() {
        let mut b = MetricsBuf::disabled();
        b.counter("c", 2);
        b.gauge("g", 3);
        b.observe("h", 4);
        b.full_counter("fc", 1);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn core_keeps_core_drops_full() {
        let mut b = MetricsBuf::new(MetricsLevel::Core, "u");
        b.counter("c", 2);
        b.counter("c", 3);
        b.gauge("g", 7);
        b.observe("h", 9);
        b.full_counter("fc", 1);
        b.full_gauge("fg", 1);
        b.full_observe("fh", 1);
        let (c, g, h) = b.into_parts();
        assert_eq!(c.get("c"), Some(&5));
        assert_eq!(g.get("g").map(|s| s.max), Some(7));
        assert_eq!(h.get("h").map(|s| s.count), Some(1));
        assert!(!c.contains_key("fc") && !g.contains_key("fg") && !h.contains_key("fh"));
    }

    #[test]
    fn full_keeps_everything() {
        let mut b = MetricsBuf::new(MetricsLevel::Full, "u");
        b.full_counter("fc", 1);
        b.full_observe("fh", 2);
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn gauge_stat_aggregates() {
        let mut g = GaugeStat::empty();
        for v in [4u64, 1, 9] {
            g.observe(v);
        }
        assert_eq!((g.count, g.min, g.max, g.sum), (3, 1, 9, 14));
        let mut other = GaugeStat::empty();
        other.observe(0);
        let mut ab = g;
        ab.merge_from(&other);
        let mut ba = other;
        ba.merge_from(&g);
        assert_eq!(ab, ba);
        assert_eq!((ab.count, ab.min, ab.max, ab.sum), (4, 0, 9, 14));
        // Merging an empty aggregate leaves the sentinel min alone.
        let mut with_empty = g;
        with_empty.merge_from(&GaugeStat::empty());
        assert_eq!(with_empty, g);
    }

    #[test]
    fn counters_saturate() {
        let mut b = MetricsBuf::new(MetricsLevel::Core, "u");
        b.counter("c", u64::MAX);
        b.counter("c", 5);
        let (c, _, _) = b.into_parts();
        assert_eq!(c.get("c"), Some(&u64::MAX));
    }
}
