//! The deterministic hub: per-unit buffers in, one merged dump out.

use crate::buf::{GaugeStat, MetricsBuf};
use crate::hist::HistogramSnapshot;
use crate::json::{self, JsonValue};
use crate::level::MetricsLevel;
use crate::sink::{render_lines, MetricsJsonlSink, MetricsSummarySink};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Collects [`MetricsBuf`]s from any number of threads and merges
/// them into one deterministic [`MetricsDump`].
///
/// The merge is a fold of commutative aggregates keyed by metric
/// name — counters add, gauges fold their `count`/`min`/`max`/`sum`,
/// histograms add bucket-wise — so the result is a pure function of
/// the *set* of absorbed buffers, never of thread interleaving:
/// `--jobs 1` and `--jobs 8` produce byte-identical dumps.
///
/// Cloning shares the underlying store (`Arc`), so a hub can be
/// handed to a pool and finished by the caller.
#[derive(Debug, Clone)]
pub struct MetricsHub {
    level: MetricsLevel,
    store: Arc<Mutex<Vec<MetricsBuf>>>,
}

impl MetricsHub {
    /// A hub recording at `level`.
    pub fn new(level: MetricsLevel) -> Self {
        MetricsHub {
            level,
            store: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A hub that records nothing.
    pub fn disabled() -> Self {
        MetricsHub::new(MetricsLevel::Off)
    }

    /// The recording level handed to new buffers.
    pub fn level(&self) -> MetricsLevel {
        self.level
    }

    /// True when this hub keeps any records at all.
    pub fn enabled(&self) -> bool {
        self.level != MetricsLevel::Off
    }

    /// A fresh buffer for the logical unit `unit`, recording at the
    /// hub's level.
    pub fn buf(&self, unit: impl Into<String>) -> MetricsBuf {
        MetricsBuf::new(self.level, unit)
    }

    /// Absorbs a finished buffer: one short lock per buffer, never
    /// per metric. Empty buffers are dropped without locking.
    pub fn absorb(&self, buf: MetricsBuf) {
        if buf.is_empty() {
            return;
        }
        self.store
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(buf);
    }

    /// Absorbs counters recorded by a *foreign* buffer — one that
    /// lived in another process and crossed a wire — namespacing
    /// every name under `prefix` (e.g. `transport.worker:1.`) so
    /// cross-process contributions can never collide with, or be
    /// mistaken for, driver-side metrics. A no-op when the hub is
    /// disabled or `counters` is empty.
    pub fn absorb_foreign(
        &self,
        unit: impl Into<String>,
        prefix: &str,
        counters: &[(String, u64)],
    ) {
        if !self.enabled() || counters.is_empty() {
            return;
        }
        let mut buf = self.buf(unit);
        for (name, delta) in counters {
            buf.counter(&format!("{prefix}{name}"), *delta);
        }
        self.absorb(buf);
    }

    /// Merges everything absorbed so far into a [`MetricsDump`],
    /// draining the store.
    pub fn finish(&self) -> MetricsDump {
        let bufs = self
            .store
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .split_off(0);
        let mut dump = MetricsDump::empty(self.level);
        for buf in bufs {
            dump.units += 1;
            let (counters, gauges, hists) = buf.into_parts();
            for (name, delta) in counters {
                let c = dump.counters.entry(name).or_insert(0);
                *c = c.saturating_add(delta);
            }
            for (name, g) in gauges {
                dump.gauges.entry(name).or_default().merge_from(&g);
            }
            for (name, h) in hists {
                dump.hists.entry(name).or_default().merge_from(&h);
            }
        }
        dump
    }
}

/// The merged result of a measured run: every metric, aggregated over
/// all units, keyed and ordered by name.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsDump {
    level: MetricsLevel,
    units: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeStat>,
    hists: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsDump {
    /// An empty dump at `level`.
    pub fn empty(level: MetricsLevel) -> Self {
        MetricsDump {
            level,
            units: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    /// The level the dump was recorded at.
    pub fn level(&self) -> MetricsLevel {
        self.level
    }

    /// Number of (non-empty) unit buffers merged in.
    pub fn units(&self) -> u64 {
        self.units
    }

    /// The merged counters, ordered by name.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// The merged gauge aggregates, ordered by name.
    pub fn gauges(&self) -> &BTreeMap<String, GaugeStat> {
        &self.gauges
    }

    /// The merged histograms, ordered by name.
    pub fn hists(&self) -> &BTreeMap<String, HistogramSnapshot> {
        &self.hists
    }

    /// The value of counter `name`, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// True when no metric was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Writes the dump as JSONL: one meta line, then one line per
    /// metric, ordered by kind then name. This is the facade over the
    /// rendering internals (lint rule O2); equal dumps render
    /// byte-identically.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_jsonl(&self, w: &mut dyn std::io::Write) -> std::io::Result<()> {
        let mut sink = MetricsJsonlSink::new(w);
        for line in render_lines(self) {
            sink.write_metric(&line)?;
        }
        sink.finish()
    }

    /// The JSONL rendering as one in-memory string.
    pub fn to_jsonl_string(&self) -> String {
        let mut lines = render_lines(self);
        lines.push(String::new()); // trailing newline
        lines.join("\n")
    }

    /// The compact human-readable summary.
    pub fn summary(&self) -> String {
        MetricsSummarySink::render(self)
    }

    /// Parses a dump back from its JSONL rendering. Derived fields
    /// (means, percentiles) are recomputed from the merged aggregates,
    /// so `parse_jsonl(d.to_jsonl_string()) == d` for every dump `d`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse_jsonl(text: &str) -> Result<MetricsDump, String> {
        let mut dump = MetricsDump::empty(MetricsLevel::Off);
        let mut saw_meta = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let kind = v
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("line {}: missing \"type\"", lineno + 1))?;
            let field = |key: &str| -> Result<u64, String> {
                v.get(key)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("line {}: missing \"{key}\"", lineno + 1))
            };
            let name = || -> Result<String, String> {
                v.get("name")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("line {}: missing \"name\"", lineno + 1))
            };
            match kind {
                "meta" => {
                    let level_name = v
                        .get("level")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| format!("line {}: missing \"level\"", lineno + 1))?;
                    dump.level = MetricsLevel::from_name(level_name)
                        .ok_or_else(|| format!("line {}: bad level '{level_name}'", lineno + 1))?;
                    dump.units = field("units")?;
                    saw_meta = true;
                }
                "counter" => {
                    dump.counters.insert(name()?, field("value")?);
                }
                "gauge" => {
                    dump.gauges.insert(
                        name()?,
                        GaugeStat {
                            count: field("count")?,
                            min: field("min")?,
                            max: field("max")?,
                            sum: field("sum")?,
                        },
                    );
                }
                "hist" => {
                    let mut h = HistogramSnapshot::empty();
                    h.count = field("count")?;
                    h.sum = field("sum")?;
                    h.max = field("max")?;
                    let buckets = v
                        .get("buckets")
                        .and_then(JsonValue::as_arr)
                        .ok_or_else(|| format!("line {}: missing \"buckets\"", lineno + 1))?;
                    for pair in buckets {
                        let p = pair
                            .as_arr()
                            .filter(|p| p.len() == 2)
                            .ok_or_else(|| format!("line {}: bad bucket pair", lineno + 1))?;
                        let (i, c) = (p[0].as_u64(), p[1].as_u64());
                        match (i, c) {
                            (Some(i), Some(c)) if (i as usize) < h.buckets.len() => {
                                h.buckets[i as usize] = c;
                            }
                            _ => return Err(format!("line {}: bad bucket pair", lineno + 1)),
                        }
                    }
                    dump.hists.insert(name()?, h);
                }
                other => return Err(format!("line {}: unknown type '{other}'", lineno + 1)),
            }
        }
        if !saw_meta {
            return Err("dump has no meta line".to_string());
        }
        Ok(dump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_hub(level: MetricsLevel) -> MetricsHub {
        let hub = MetricsHub::new(level);
        let mut a = hub.buf("job-a");
        a.counter("sim.bits", 10);
        a.gauge("engine.occupancy", 4);
        a.observe("sim.round_bits", 3);
        let mut b = hub.buf("job-b");
        b.counter("sim.bits", 5);
        b.gauge("engine.occupancy", 9);
        b.observe("sim.round_bits", 100);
        hub.absorb(a);
        hub.absorb(b);
        hub
    }

    #[test]
    fn merge_is_deterministic_regardless_of_absorb_order() {
        let ab = sample_hub(MetricsLevel::Core).finish();
        // Same records, reversed absorb order.
        let hub = MetricsHub::new(MetricsLevel::Core);
        let mut a = hub.buf("job-a");
        a.counter("sim.bits", 10);
        a.gauge("engine.occupancy", 4);
        a.observe("sim.round_bits", 3);
        let mut b = hub.buf("job-b");
        b.counter("sim.bits", 5);
        b.gauge("engine.occupancy", 9);
        b.observe("sim.round_bits", 100);
        hub.absorb(b);
        hub.absorb(a);
        let ba = hub.finish();
        assert_eq!(ab, ba);
        assert_eq!(ab.to_jsonl_string(), ba.to_jsonl_string());
        assert_eq!(ab.counter("sim.bits"), Some(15));
        assert_eq!(ab.units(), 2);
    }

    #[test]
    fn disabled_hub_stays_empty() {
        let hub = MetricsHub::disabled();
        assert!(!hub.enabled());
        let mut b = hub.buf("u");
        b.counter("c", 1);
        hub.absorb(b);
        let dump = hub.finish();
        assert!(dump.is_empty());
        assert_eq!(dump.units(), 0);
    }

    #[test]
    fn clones_share_the_store() {
        let hub = MetricsHub::new(MetricsLevel::Core);
        let clone = hub.clone();
        let mut b = clone.buf("u");
        b.counter("c", 1);
        clone.absorb(b);
        assert_eq!(hub.finish().counter("c"), Some(1));
    }

    #[test]
    fn absorb_foreign_prefixes_and_counts_as_a_unit() {
        let hub = MetricsHub::new(MetricsLevel::Core);
        hub.absorb_foreign(
            "worker:1",
            "transport.worker:1.",
            &[("frames".to_string(), 12), ("rounds".to_string(), 3)],
        );
        let dump = hub.finish();
        assert_eq!(dump.units(), 1);
        assert_eq!(dump.counter("transport.worker:1.frames"), Some(12));
        assert_eq!(dump.counter("transport.worker:1.rounds"), Some(3));
        assert_eq!(dump.counter("frames"), None);
    }

    #[test]
    fn absorb_foreign_is_noop_when_disabled_or_empty() {
        let off = MetricsHub::disabled();
        off.absorb_foreign("worker:0", "transport.", &[("frames".to_string(), 1)]);
        assert!(off.finish().is_empty());
        let on = MetricsHub::new(MetricsLevel::Core);
        on.absorb_foreign("worker:0", "transport.", &[]);
        assert_eq!(on.finish().units(), 0);
    }

    #[test]
    fn jsonl_round_trips() {
        let dump = sample_hub(MetricsLevel::Full).finish();
        let text = dump.to_jsonl_string();
        let parsed = MetricsDump::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, dump);
        assert_eq!(parsed.to_jsonl_string(), text);
    }

    #[test]
    fn jsonl_shape_is_pinned() {
        let hub = MetricsHub::new(MetricsLevel::Core);
        let mut b = hub.buf("u");
        b.counter("cache.lookups", 7);
        hub.absorb(b);
        let text = hub.finish().to_jsonl_string();
        assert_eq!(
            text,
            "{\"type\":\"meta\",\"schema\":1,\"level\":\"core\",\"units\":1,\"counters\":1,\"gauges\":0,\"hists\":0}\n\
             {\"type\":\"counter\",\"name\":\"cache.lookups\",\"value\":7}\n"
        );
    }

    #[test]
    fn parse_rejects_malformed_dumps() {
        assert!(MetricsDump::parse_jsonl("").is_err()); // no meta
        assert!(MetricsDump::parse_jsonl("{\"type\":\"what\"}").is_err());
        assert!(MetricsDump::parse_jsonl("{\"type\":\"counter\",\"name\":\"x\"}").is_err());
        let bad_bucket = "{\"type\":\"meta\",\"schema\":1,\"level\":\"core\",\"units\":1,\"counters\":0,\"gauges\":0,\"hists\":1}\n\
                          {\"type\":\"hist\",\"name\":\"h\",\"count\":1,\"mean\":1.0,\"p50_le\":1,\"p90_le\":1,\"p99_le\":1,\"max\":1,\"sum\":1,\"buckets\":[[999,1]]}";
        assert!(MetricsDump::parse_jsonl(bad_bucket).is_err());
    }

    #[test]
    fn summary_renders_counts() {
        let s = sample_hub(MetricsLevel::Core).finish().summary();
        assert!(s.contains("sim.bits"), "summary was: {s}");
        assert!(s.contains("15"), "summary was: {s}");
        assert!(s.contains("engine.occupancy"), "summary was: {s}");
    }
}
