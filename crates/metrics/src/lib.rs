//! `bcc-metrics`: deterministic workload metrics for the bcclique
//! workspace.
//!
//! The theorems this repository reproduces are statements about
//! *resources* — bits broadcast per round in `BCC(1)`, rounds to
//! solve `TwoCycle`/`Connectivity`, communication in the two-party
//! reductions. This crate makes those resources first-class outputs:
//! counters, gauges, and histograms over **logical quantities only**,
//! recorded into per-unit buffers and merged deterministically, so a
//! metrics dump is a pure function of the suite seed — byte-identical
//! across `--jobs 1` and `--jobs 8` and across same-seed reruns.
//!
//! # Pieces
//!
//! - [`MetricsLevel`]: `off` / `core` / `full`, mirroring
//!   `bcc_trace::TraceLevel`.
//! - [`MetricsBuf`]: a plain per-unit buffer. Recording is a
//!   `BTreeMap` update; a disabled buffer skips it entirely.
//! - [`MetricsHub`]: absorbs buffers under one short lock each and
//!   merges them with **commutative aggregates** — counters add,
//!   gauges fold `count`/`min`/`max`/`sum`, histograms add
//!   bucket-wise — so thread interleaving can never change a dump.
//! - [`MetricsDump`]: the merged result; renders to a stable JSONL
//!   codec (and parses back) through the facade that lint rule O2
//!   guards, plus a compact text summary.
//! - [`MetricScope`]: the clonable handle configuration objects carry
//!   (simulator configs, driver options, job contexts).
//! - [`Histogram`] / [`HistogramSnapshot`]: the shared fixed-bucket
//!   log₂ histogram. The atomic recorder serves the runner's
//!   wall-clock profiling; the snapshot doubles as the in-buffer
//!   histogram here.
//! - [`json`]: a minimal JSON parser for reading dumps and the
//!   committed `BENCH_*.json` series back (used by `bcc-report`).
//!
//! # The invariant
//!
//! Metrics **on vs. off must never change experiment reports**, and
//! the dump must stay a pure function of the workload: only logical
//! quantities are recorded here. Wall-clock profiling (latencies,
//! jobs/sec) stays behind `crates/runner` and `crates/bench` — lint
//! rule D2 — and is never merged into a deterministic dump.
//!
//! # Example
//!
//! ```
//! use bcc_metrics::{MetricsHub, MetricsLevel};
//!
//! let hub = MetricsHub::new(MetricsLevel::Core);
//! let mut buf = hub.buf("e1/n=27");
//! buf.counter("sim.bits_broadcast", 27);
//! buf.observe("sim.round_bits", 9);
//! hub.absorb(buf);
//! let dump = hub.finish();
//! assert_eq!(dump.counter("sim.bits_broadcast"), Some(27));
//! let text = dump.to_jsonl_string();
//! assert_eq!(bcc_metrics::MetricsDump::parse_jsonl(&text).unwrap(), dump);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buf;
mod hist;
mod hub;
pub mod json;
mod level;
mod scope;
pub mod sink;

pub use buf::{GaugeStat, MetricsBuf};
pub use hist::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use hub::{MetricsDump, MetricsHub};
pub use level::MetricsLevel;
pub use scope::MetricScope;
