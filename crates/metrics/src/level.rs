//! How much a run measures.

/// The recording level of a metrics pipeline.
///
/// Mirrors `bcc_trace::TraceLevel`: `Off` turns every recording call
/// into a cheap early return, `Core` keeps the headline logical
/// totals (bits, rounds, jobs, cache lookups), and `Full` adds the
/// per-observation histograms (bits per broadcast, bits per round,
/// lane occupancy per batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum MetricsLevel {
    /// Record nothing.
    #[default]
    Off,
    /// Record the headline counters and gauges only.
    Core,
    /// Record everything, including per-observation histograms.
    Full,
}

impl MetricsLevel {
    /// Parses a CLI-style level name.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "off" => Some(MetricsLevel::Off),
            "core" => Some(MetricsLevel::Core),
            "full" => Some(MetricsLevel::Full),
            _ => None,
        }
    }

    /// The CLI-style name.
    pub fn name(&self) -> &'static str {
        match self {
            MetricsLevel::Off => "off",
            MetricsLevel::Core => "core",
            MetricsLevel::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(MetricsLevel::Off < MetricsLevel::Core);
        assert!(MetricsLevel::Core < MetricsLevel::Full);
        for l in [MetricsLevel::Off, MetricsLevel::Core, MetricsLevel::Full] {
            assert_eq!(MetricsLevel::from_name(l.name()), Some(l));
        }
        assert_eq!(MetricsLevel::from_name("verbose"), None);
        assert_eq!(MetricsLevel::default(), MetricsLevel::Off);
    }
}
