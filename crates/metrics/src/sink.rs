//! Rendering internals: from a merged dump to bytes.
//!
//! Everything here is the *private back half* of the facade on
//! [`MetricsDump`](crate::MetricsDump). Code outside `crates/metrics`
//! must not name these types or call [`MetricsJsonlSink::write_metric`]
//! directly (lint rule O2, the metrics mirror of O1): the facade is
//! the only blessed route from recorded metrics to rendered bytes, so
//! every dump in the tree goes through the same deterministic merge
//! and the same stable line format.

use crate::hub::MetricsDump;
use std::io::Write;

/// Escapes a metric name for embedding in a JSON string literal.
/// Names are dotted ASCII identifiers by convention; escaping anyway
/// keeps a stray quote from corrupting a dump.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders every line of a dump, in the fixed order the codec pins:
/// one meta line, then counters, gauges, and histograms, each sorted
/// by metric name (the maps are `BTreeMap`s, so iteration is sorted).
pub(crate) fn render_lines(dump: &MetricsDump) -> Vec<String> {
    let mut lines =
        Vec::with_capacity(1 + dump.counters().len() + dump.gauges().len() + dump.hists().len());
    lines.push(format!(
        "{{\"type\":\"meta\",\"schema\":1,\"level\":\"{}\",\"units\":{},\"counters\":{},\"gauges\":{},\"hists\":{}}}",
        dump.level().name(),
        dump.units(),
        dump.counters().len(),
        dump.gauges().len(),
        dump.hists().len(),
    ));
    for (name, value) in dump.counters() {
        lines.push(format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            escape(name)
        ));
    }
    for (name, g) in dump.gauges() {
        lines.push(format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"count\":{},\"min\":{},\"max\":{},\"sum\":{}}}",
            escape(name),
            g.count,
            // An empty gauge never renders (observe precedes insert),
            // so `min` is always a real observation here.
            g.min,
            g.max,
            g.sum,
        ));
    }
    for (name, h) in dump.hists() {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("[{i},{c}]"))
            .collect();
        lines.push(format!(
            "{{\"type\":\"hist\",\"name\":\"{}\",{},\"sum\":{},\"buckets\":[{}]}}",
            escape(name),
            h.fields_json(""),
            h.sum,
            buckets.join(","),
        ));
    }
    lines
}

/// Writes pre-rendered dump lines to a byte stream, one per line.
pub struct MetricsJsonlSink<'w> {
    w: &'w mut dyn Write,
}

impl<'w> MetricsJsonlSink<'w> {
    /// A sink writing to `w`.
    pub fn new(w: &'w mut dyn Write) -> Self {
        MetricsJsonlSink { w }
    }

    /// Writes one metric line.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn write_metric(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.w, "{line}")
    }

    /// Flushes the underlying stream.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn finish(&mut self) -> std::io::Result<()> {
        self.w.flush()
    }
}

/// Renders the compact human-readable summary of a dump.
pub struct MetricsSummarySink;

impl MetricsSummarySink {
    /// The full summary text.
    pub fn render(dump: &MetricsDump) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "-- metrics ({}) --  units {}\n",
            dump.level().name(),
            dump.units()
        ));
        for (name, value) in dump.counters() {
            out.push_str(&format!("counter {name:<32} {value}\n"));
        }
        for (name, g) in dump.gauges() {
            out.push_str(&format!(
                "gauge   {name:<32} n={} min={} max={} mean={:.1}\n",
                g.count,
                g.min,
                g.max,
                g.mean()
            ));
        }
        for (name, h) in dump.hists() {
            out.push_str(&format!(
                "hist    {name:<32} n={} mean={:.1} p50<={} p99<={} max={}\n",
                h.count,
                h.mean(),
                h.quantile_upper(0.50),
                h.quantile_upper(0.99),
                h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a.b"), "a.b");
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
