//! A minimal JSON value model and recursive-descent parser.
//!
//! The workspace renders all of its JSON by hand (fixed key order,
//! `{:?}`-formatted floats) and needs to *read* only small,
//! well-formed documents: metrics dump lines and the committed
//! `BENCH_*.json` series. This parser covers exactly the JSON
//! grammar — objects, arrays, strings with escapes, numbers, bools,
//! null — with no extensions, and reports errors by byte offset.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is preserved as written.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member `key` of an object (None for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

/// Parses one complete JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a message naming the byte offset of the first violation.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", byte as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("expected a value at byte {pos}")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogates (used only for astral-plane text,
                        // which the workspace never emits) decode to
                        // the replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let start = *pos;
                let len = utf8_len(c);
                let chunk = bytes
                    .get(start..start + len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or_else(|| format!("invalid UTF-8 at byte {start}"))?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && (bytes[*pos].is_ascii_digit() || matches!(bytes[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| "bad number".to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" -3.5 ").unwrap(), JsonValue::Num(-3.5));
        assert_eq!(parse("\"a\\nb\"").unwrap(), JsonValue::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2,{"b":"x","c":null}],"d":4.5e1}"#).unwrap();
        assert_eq!(v.get("d").and_then(JsonValue::as_f64), Some(45.0));
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(JsonValue::as_str), Some("x"));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"\\x\""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_utf8_pass_through() {
        assert_eq!(
            parse("\"\\u0041µ\"").unwrap(),
            JsonValue::Str("Aµ".to_string())
        );
    }
}
