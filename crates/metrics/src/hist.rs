//! The shared fixed-bucket log₂ histogram: a concurrent atomic
//! recorder (used by the runner's wall-clock profiling) and a plain
//! snapshot (used both as the runner's point-in-time copy and as the
//! in-buffer histogram of the deterministic metrics pipeline).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of power-of-two buckets; bucket `i` covers `[2^i, 2^{i+1})`
/// (bucket 0 additionally includes 0). At microsecond resolution the
/// top bucket starts at ~9.1 hours; at bit resolution it holds any
/// transcript the simulator can produce — effectively unbounded
/// either way.
pub const NUM_BUCKETS: usize = 45;

fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (value.ilog2() as usize).min(NUM_BUCKETS - 1)
    }
}

/// A concurrent fixed-bucket log₂ histogram.
///
/// All operations are lock-free single atomics; `observe` never loses
/// or double-counts a sample regardless of contention (each sample is
/// exactly one `fetch_add` on exactly one bucket plus the aggregates).
/// The unit of a sample is whatever the owner records — the runner
/// feeds microseconds, the metrics buffers feed logical quantities.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one latency sample at microsecond resolution.
    pub fn record(&self, latency: Duration) {
        self.observe(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy (exact once recording has quiesced).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable (or single-owner) histogram: the snapshot of a
/// [`Histogram`], and also the in-buffer histogram of the metrics
/// pipeline — `observe` on a `&mut self` is a plain array increment,
/// and `merge_from` is commutative and associative, so merging any
/// permutation of buffers yields identical bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts.
    pub buckets: [u64; NUM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty histogram.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Records one sample (single-owner path; no atomics).
    pub fn observe(&mut self, value: u64) {
        let b = bucket_index(value);
        self.buckets[b] = self.buckets[b].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Adds every sample of `other` into `self`. Commutative, so the
    /// merged result is independent of buffer arrival order.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper edge of the bucket containing the `q`-quantile
    /// (`0.0 < q <= 1.0`); 0 when empty. Bucketed, so an upper bound
    /// within 2× of the true quantile.
    ///
    /// The edge is clamped to the recorded maximum: a bucket's upper
    /// edge can overshoot every sample in it (a lone sample of 5 lands
    /// in `[4, 8)`, edge 8), which would render nonsense like
    /// `p50<= 8  max 5` whenever only one bucket is populated. `max`
    /// is itself an upper bound on every sample, so the clamp only
    /// ever tightens the estimate.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return (1u64 << (i + 1)).min(self.max);
            }
        }
        self.max
    }

    /// The shared JSON body — `"count":…,"mean<sfx>":…,"p50_le<sfx>":…,
    /// "p90_le<sfx>":…,"p99_le<sfx>":…,"max<sfx>":…` — without braces,
    /// so callers can embed it in a larger record. `suffix` names the
    /// unit (the runner passes `"_us"`, the metrics dump passes `""`);
    /// key order is fixed and all values are plain JSON numbers.
    pub fn fields_json(&self, suffix: &str) -> String {
        let mean = self.mean();
        // `{:?}` keeps a trailing `.0` on integral floats so the value
        // stays a JSON number; mean of finite sums is always finite.
        let mean_json = if mean.is_finite() {
            format!("{mean:?}")
        } else {
            "null".to_string()
        };
        format!(
            "\"count\":{},\"mean{suffix}\":{},\"p50_le{suffix}\":{},\"p90_le{suffix}\":{},\"p99_le{suffix}\":{},\"max{suffix}\":{}",
            self.count,
            mean_json,
            self.quantile_upper(0.50),
            self.quantile_upper(0.90),
            self.quantile_upper(0.99),
            self.max,
        )
    }

    /// [`fields_json`](Self::fields_json) wrapped in braces: one
    /// stable JSON object per histogram.
    pub fn to_json(&self, suffix: &str) -> String {
        format!("{{{}}}", self.fields_json(suffix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn atomic_and_plain_paths_agree() {
        let atomic = Histogram::new();
        let mut plain = HistogramSnapshot::empty();
        for v in [0u64, 1, 5, 5, 1000, 1 << 40] {
            atomic.observe(v);
            plain.observe(v);
        }
        assert_eq!(atomic.snapshot(), plain);
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for us in [1u64, 2, 4, 8, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 101_015);
        assert_eq!(s.max, 100_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert!(s.quantile_upper(1.0) >= 100_000);
        assert!(s.quantile_upper(0.5) <= 16);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        // Satellite pin: an empty histogram reports 0 for the mean,
        // every percentile, and the max — never NaN, never a bucket
        // edge.
        let s = HistogramSnapshot::empty();
        assert_eq!(s.mean(), 0.0);
        for q in [0.001, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile_upper(q), 0, "q={q}");
        }
        assert_eq!(s.max, 0);
        assert_eq!(
            s.to_json("_us"),
            "{\"count\":0,\"mean_us\":0.0,\"p50_le_us\":0,\"p90_le_us\":0,\"p99_le_us\":0,\"max_us\":0}"
        );
    }

    #[test]
    fn single_bucket_quantiles_clamp_to_max() {
        // Satellite pin: one populated bucket — every percentile is
        // that bucket, whose raw edge (8) overshoots the only samples
        // (5); the clamp reports 5 everywhere.
        let mut s = HistogramSnapshot::empty();
        s.observe(5);
        s.observe(5);
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile_upper(q), 5, "q={q}");
        }
    }

    #[test]
    fn quantiles_stay_upper_bounds_and_monotone() {
        let mut s = HistogramSnapshot::empty();
        for v in [3u64, 5, 6, 120] {
            s.observe(v);
        }
        let (p50, p90, p100) = (
            s.quantile_upper(0.5),
            s.quantile_upper(0.9),
            s.quantile_upper(1.0),
        );
        assert!(p50 >= 5, "p50={p50}"); // true median is 5
        assert!(p50 <= p90 && p90 <= p100);
        assert_eq!(p100, 120); // clamped to max, not bucket edge 128
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = HistogramSnapshot::empty();
        let mut b = HistogramSnapshot::empty();
        for v in [1u64, 7, 300] {
            a.observe(v);
        }
        for v in [0u64, 7, 1 << 20] {
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 6);
        assert_eq!(ab.max, 1 << 20);
    }
}
