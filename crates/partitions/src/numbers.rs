//! Bell numbers, Stirling numbers and double factorials.
//!
//! The counting facts the paper leans on: the number of set partitions
//! of `[n]` is the Bell number `B_n = 2^{Θ(n log n)}` (so
//! `H(P_A) = log₂ B_n = Θ(n log n)` in Theorem 4.5), and the number of
//! all-blocks-size-2 partitions of `[n]` is
//! `r = n!/(2^{n/2}·(n/2)!) = (n−1)!!` (Lemma 4.1).

/// The Bell number `B_n`, exactly, for `n ≤ 39`.
///
/// Computed via the Bell triangle (Aitken's array).
///
/// # Panics
///
/// Panics if the value would overflow `u128` (first at `n = 40`).
///
/// # Example
///
/// ```
/// assert_eq!(bcc_partitions::numbers::bell_number(5), 52);
/// ```
pub fn bell_number(n: usize) -> u128 {
    *bell_numbers_upto(n).last().expect("nonempty for any n")
}

/// All Bell numbers `B_0 … B_n`.
///
/// # Panics
///
/// Panics on `u128` overflow (first at `n = 40`).
pub fn bell_numbers_upto(n: usize) -> Vec<u128> {
    let mut out = Vec::with_capacity(n + 1);
    out.push(1u128); // B_0
    let mut row: Vec<u128> = vec![1];
    for _ in 1..=n {
        let mut next = Vec::with_capacity(row.len() + 1);
        next.push(*row.last().expect("row nonempty"));
        for &x in &row {
            let prev = *next.last().expect("nonempty");
            next.push(prev.checked_add(x).expect("Bell number overflows u128"));
        }
        out.push(next[0]);
        row = next;
    }
    out.truncate(n + 1);
    out
}

/// `log₂ B_n` as `f64`, for any `n` (no overflow; uses the recurrence
/// in log space with compensated summation over the Bell triangle is
/// unnecessary — we use exact u128 when possible and Dobinski-style
/// bounding otherwise).
///
/// For `n ≤ 39` this is exact (from the integer value); for larger `n`
/// it uses the Berend–Tassa upper bound form `B_n < (0.792·n/ln(n+1))^n`
/// averaged with the trivial lower bound `B_n ≥ (n/e)^n / e^{...}` via
/// the known asymptotic `log B_n = n·log n − n·log log n − n·log e + o(n)`;
/// accuracy is sufficient for plotting Θ(n log n) series.
pub fn log2_bell(n: usize) -> f64 {
    if n <= 39 {
        let b = bell_number(n);
        // log2 of a u128 via conversion through f64 (exact enough: B_39
        // has ~128 bits, f64 has 53-bit mantissa → relative error ~1e-16).
        return (b as f64).log2();
    }
    let nf = n as f64;
    // Asymptotic expansion of ln B_n (de Bruijn):
    // ln B_n ≈ n(ln n − ln ln n − 1 + ln ln n/ln n + 1/ln n).
    let ln_n = nf.ln();
    let ln_ln = ln_n.ln();
    let ln_b = nf * (ln_n - ln_ln - 1.0 + ln_ln / ln_n + 1.0 / ln_n);
    ln_b / std::f64::consts::LN_2
}

/// Stirling number of the second kind `S(n, k)`: partitions of `[n]`
/// into exactly `k` blocks.
///
/// # Panics
///
/// Panics on `u128` overflow.
pub fn stirling2(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    if n == 0 {
        return 1; // S(0, 0) = 1
    }
    if k == 0 {
        return 0;
    }
    // DP over rows: S(n, k) = k·S(n−1, k) + S(n−1, k−1).
    let mut row = vec![0u128; k + 1];
    row[0] = 1; // S(0, 0)
    for _ in 1..=n {
        let mut next = vec![0u128; k + 1];
        for j in 1..=k {
            let term = (j as u128)
                .checked_mul(row[j])
                .and_then(|t| t.checked_add(row[j - 1]))
                .expect("Stirling number overflows u128");
            next[j] = term;
        }
        row = next;
    }
    row[k]
}

/// The double factorial `(n−1)!! = 1·3·5·…·(n−1)` for even `n`: the
/// number of perfect-matching partitions of `[n]`, i.e. the dimension
/// `r` of the matrix `E_n` in Lemma 4.1.
///
/// # Panics
///
/// Panics if `n` is odd or on overflow.
pub fn num_matching_partitions(n: usize) -> u128 {
    assert!(n.is_multiple_of(2), "matching partitions need even n");
    let mut acc: u128 = 1;
    let mut k: u128 = 1;
    while k < n as u128 {
        acc = acc.checked_mul(k).expect("double factorial overflows u128");
        k += 2;
    }
    acc
}

/// `n!` as `u128`.
///
/// # Panics
///
/// Panics on overflow (first at `n = 35`).
pub fn factorial(n: usize) -> u128 {
    (1..=n as u128)
        .try_fold(1u128, u128::checked_mul)
        .expect("factorial overflows u128")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_sequence() {
        // OEIS A000110.
        let expect: [u128; 11] = [1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975];
        for (n, &e) in expect.iter().enumerate() {
            assert_eq!(bell_number(n), e, "B_{n}");
        }
        assert_eq!(bell_numbers_upto(10), expect.to_vec());
    }

    #[test]
    fn bell_equals_stirling_sum() {
        for n in 0..=12 {
            let sum: u128 = (0..=n).map(|k| stirling2(n, k)).sum();
            assert_eq!(sum, bell_number(n), "n={n}");
        }
    }

    #[test]
    fn stirling_values() {
        // OEIS A008277 rows.
        assert_eq!(stirling2(4, 2), 7);
        assert_eq!(stirling2(5, 3), 25);
        assert_eq!(stirling2(6, 1), 1);
        assert_eq!(stirling2(6, 6), 1);
        assert_eq!(stirling2(3, 5), 0);
        assert_eq!(stirling2(0, 0), 1);
        assert_eq!(stirling2(5, 0), 0);
    }

    #[test]
    fn matching_partition_counts() {
        assert_eq!(num_matching_partitions(2), 1);
        assert_eq!(num_matching_partitions(4), 3);
        assert_eq!(num_matching_partitions(6), 15);
        assert_eq!(num_matching_partitions(8), 105);
        assert_eq!(num_matching_partitions(10), 945);
        assert_eq!(num_matching_partitions(12), 10395);
        // Cross-check the paper's closed form n!/(2^{n/2}·(n/2)!).
        for n in (2..=16).step_by(2) {
            let formula = factorial(n) / (1u128 << (n / 2)) / factorial(n / 2);
            assert_eq!(num_matching_partitions(n), formula, "n={n}");
        }
    }

    #[test]
    fn log2_bell_exact_region() {
        assert!((log2_bell(5) - (52f64).log2()).abs() < 1e-12);
        assert_eq!(log2_bell(0), 0.0);
    }

    #[test]
    fn log2_bell_growth_is_n_log_n() {
        // The Θ(n log n) shape: log2_bell(n) / (n·log2 n) should be
        // bounded and slowly varying.
        for &n in &[50usize, 100, 500, 1000] {
            let ratio = log2_bell(n) / (n as f64 * (n as f64).log2());
            assert!(ratio > 0.3 && ratio < 1.0, "n={n} ratio={ratio}");
        }
    }

    #[test]
    fn log2_bell_continuous_at_switchover() {
        // n = 39 (exact) vs n = 40 (asymptotic) should be close.
        let a = log2_bell(39);
        let b = log2_bell(40);
        assert!(b > a && b - a < 10.0, "a={a} b={b}");
    }

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), 1);
        assert_eq!(factorial(5), 120);
        assert_eq!(factorial(10), 3628800);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn matching_partitions_odd_panics() {
        num_matching_partitions(5);
    }
}
