//! The communication matrices `M_n` (Partition) and `E_n`
//! (TwoPartition).
//!
//! `M_n` is the `B_n × B_n` 0/1 matrix with `M_n(i, j) = 1` iff
//! `P_i ∨ P_j = 1` (Section 2 of the paper). Theorem 2.3
//! (Dowling–Wilson) states `rank(M_n) = B_n`; together with the
//! log-rank bound (Lemma 1.28 of Kushilevitz–Nisan) this yields the
//! Ω(n log n) deterministic communication lower bound of Corollary 2.4.
//!
//! `E_n` is the principal submatrix of `M_n` indexed by the
//! perfect-matching partitions; Lemma 4.1 shows it also has full rank
//! `(n−1)!!`, giving Corollary 4.2.

use crate::enumerate::{all_partitions, matching_partitions};
use crate::partition::SetPartition;
use bcc_linalg::{Gf2Matrix, GfP, Matrix};

/// The matrix `M_n` together with its row/column index: the `i`-th
/// row and column correspond to `index[i]`.
#[derive(Debug, Clone)]
pub struct JoinMatrix {
    /// The 0/1 matrix over GF(2⁶¹−1).
    pub matrix: Matrix,
    /// Partition corresponding to each row/column.
    pub index: Vec<SetPartition>,
}

impl JoinMatrix {
    /// The dimension (`B_n` for `M_n`, `(n−1)!!` for `E_n`).
    pub fn dim(&self) -> usize {
        self.index.len()
    }

    /// The same matrix over GF(2) (for the fast cross-check).
    pub fn to_gf2(&self) -> Gf2Matrix {
        let d = self.dim();
        Gf2Matrix::from_fn(d, d, |i, j| !self.matrix.get(i, j).is_zero())
    }
}

fn join_matrix_from(parts: Vec<SetPartition>) -> JoinMatrix {
    let d = parts.len();
    let mut matrix = Matrix::zeros(d, d);
    for i in 0..d {
        for j in i..d {
            let v = if parts[i].join(&parts[j]).is_trivial() {
                GfP::ONE
            } else {
                GfP::ZERO
            };
            matrix.set(i, j, v);
            matrix.set(j, i, v);
        }
    }
    JoinMatrix {
        matrix,
        index: parts,
    }
}

/// Builds `M_n`: rows/columns indexed by **all** partitions of `[n]`,
/// entry 1 iff the join is trivial.
///
/// Dimension is `B_n`, so this is practical for `n ≤ 7`
/// (`B_7 = 877`); `n = 8` (`B_8 = 4140`) is reachable in release
/// builds.
pub fn partition_join_matrix(n: usize) -> JoinMatrix {
    join_matrix_from(all_partitions(n).collect())
}

/// Builds `E_n`: rows/columns indexed by the perfect-matching
/// partitions only (the `TwoPartition` instance space). Dimension is
/// `(n−1)!!`, practical for `n ≤ 10` (`9!! = 945`).
///
/// # Panics
///
/// Panics if `n` is odd.
pub fn two_partition_matrix(n: usize) -> JoinMatrix {
    join_matrix_from(matching_partitions(n).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numbers::{bell_number, num_matching_partitions};

    #[test]
    fn m_n_dimensions() {
        for n in 1..=5 {
            let m = partition_join_matrix(n);
            assert_eq!(m.dim() as u128, bell_number(n), "n={n}");
            assert_eq!(m.matrix.num_rows(), m.dim());
        }
    }

    #[test]
    fn m_n_is_symmetric_with_ones_against_trivial() {
        let m = partition_join_matrix(4);
        let d = m.dim();
        let trivial_idx = m
            .index
            .iter()
            .position(SetPartition::is_trivial)
            .expect("trivial partition present");
        for i in 0..d {
            for j in 0..d {
                assert_eq!(m.matrix.get(i, j), m.matrix.get(j, i));
            }
            // Join with trivial partition is always trivial.
            assert_eq!(m.matrix.get(i, trivial_idx), GfP::ONE);
        }
        // Finest ∨ finest = finest ≠ trivial (n > 1).
        let finest_idx = m
            .index
            .iter()
            .position(SetPartition::is_finest)
            .expect("finest partition present");
        assert_eq!(m.matrix.get(finest_idx, finest_idx), GfP::ZERO);
    }

    /// Theorem 2.3 (Dowling–Wilson): rank(M_n) = B_n, certified over
    /// GF(2⁶¹−1) for small n.
    #[test]
    fn theorem_2_3_full_rank_small() {
        for n in 1..=5 {
            let m = partition_join_matrix(n);
            assert_eq!(m.matrix.rank(), m.dim(), "rank(M_{n}) = B_{n}");
        }
    }

    /// Lemma 4.1: rank(E_n) = (n−1)!!.
    #[test]
    fn lemma_4_1_full_rank_small() {
        for n in [2usize, 4, 6] {
            let e = two_partition_matrix(n);
            assert_eq!(e.dim() as u128, num_matching_partitions(n));
            assert_eq!(e.matrix.rank(), e.dim(), "rank(E_{n})");
        }
    }

    /// E_n is a principal submatrix of M_n — the structural fact
    /// Lemma 4.1's proof exploits.
    #[test]
    fn e_n_is_principal_submatrix_of_m_n() {
        let n = 4;
        let m = partition_join_matrix(n);
        let e = two_partition_matrix(n);
        let positions: Vec<usize> = e
            .index
            .iter()
            .map(|p| {
                m.index
                    .iter()
                    .position(|q| q == p)
                    .expect("matching partition in M_n index")
            })
            .collect();
        let sub = m.matrix.principal_submatrix(&positions);
        assert_eq!(sub, e.matrix);
    }

    #[test]
    fn gf2_projection_consistent() {
        let m = partition_join_matrix(4);
        let g2 = m.to_gf2();
        for i in 0..m.dim() {
            for j in 0..m.dim() {
                assert_eq!(g2.get(i, j), !m.matrix.get(i, j).is_zero());
            }
        }
        assert!(g2.rank() <= m.matrix.rank());
    }
}
