//! The canonical set-partition type.

use bcc_graphs::UnionFind;
use std::error::Error;
use std::fmt;

/// Errors produced when constructing set partitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// An element was outside the ground set `0..n`.
    ElementOutOfRange {
        /// The offending element.
        element: usize,
        /// Ground-set size.
        n: usize,
    },
    /// An element appeared in more than one block, or not at all.
    NotAPartition {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::ElementOutOfRange { element, n } => {
                write!(
                    f,
                    "element {element} out of range for ground set of size {n}"
                )
            }
            PartitionError::NotAPartition { reason } => {
                write!(f, "blocks do not form a partition: {reason}")
            }
        }
    }
}

impl Error for PartitionError {}

/// A partition of the ground set `{0, 1, …, n−1}`, stored as a
/// *restricted growth string* (RGS): `rgs[i]` is the index of the
/// block containing element `i`, and blocks are numbered in order of
/// first appearance, so `rgs[0] = 0` and
/// `rgs[i+1] ≤ 1 + max(rgs[0..=i])`. The RGS is a canonical form: two
/// `SetPartition`s are equal iff they are the same partition.
///
/// # Example
///
/// ```
/// use bcc_partitions::SetPartition;
///
/// let p = SetPartition::from_blocks(4, &[vec![0, 2], vec![1], vec![3]]).unwrap();
/// assert_eq!(p.rgs(), &[0, 1, 0, 2]);
/// assert_eq!(p.num_blocks(), 3);
/// assert!(p.same_block(0, 2));
/// assert!(!p.same_block(0, 1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SetPartition {
    rgs: Vec<usize>,
    num_blocks: usize,
}

impl SetPartition {
    /// The finest partition `(0)(1)…(n−1)` (every element alone) —
    /// Bob's fixed input in the Theorem 4.5 hard distribution.
    pub fn finest(n: usize) -> Self {
        SetPartition {
            rgs: (0..n).collect(),
            num_blocks: n,
        }
    }

    /// The trivial one-block partition `1` of Section 1.1.
    pub fn trivial(n: usize) -> Self {
        SetPartition {
            rgs: vec![0; n],
            num_blocks: if n == 0 { 0 } else { 1 },
        }
    }

    /// Builds a partition from explicit blocks.
    ///
    /// # Errors
    ///
    /// Returns an error unless the blocks are disjoint, non-empty and
    /// cover `0..n` exactly.
    pub fn from_blocks(n: usize, blocks: &[Vec<usize>]) -> Result<Self, PartitionError> {
        let mut block_of = vec![usize::MAX; n];
        for (b, block) in blocks.iter().enumerate() {
            if block.is_empty() {
                return Err(PartitionError::NotAPartition {
                    reason: format!("block {b} is empty"),
                });
            }
            for &e in block {
                if e >= n {
                    return Err(PartitionError::ElementOutOfRange { element: e, n });
                }
                if block_of[e] != usize::MAX {
                    return Err(PartitionError::NotAPartition {
                        reason: format!("element {e} appears in two blocks"),
                    });
                }
                block_of[e] = b;
            }
        }
        if let Some(missing) = block_of.iter().position(|&b| b == usize::MAX) {
            return Err(PartitionError::NotAPartition {
                reason: format!("element {missing} is not covered"),
            });
        }
        Ok(SetPartition::from_assignment(&block_of))
    }

    /// Builds a partition from an arbitrary block-label assignment
    /// (`labels[i]` = any label for element `i`); labels are
    /// canonicalized to an RGS.
    pub fn from_assignment(labels: &[usize]) -> Self {
        let n = labels.len();
        let mut remap: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
        let mut rgs = Vec::with_capacity(n);
        for &l in labels {
            let next = remap.len();
            let id = *remap.entry(l).or_insert(next);
            rgs.push(id);
        }
        SetPartition {
            num_blocks: remap.len(),
            rgs,
        }
    }

    /// Builds directly from a valid restricted growth string.
    ///
    /// # Errors
    ///
    /// Returns an error if `rgs` violates the growth condition.
    pub fn from_rgs(rgs: Vec<usize>) -> Result<Self, PartitionError> {
        let mut max_seen: Option<usize> = None;
        for (i, &b) in rgs.iter().enumerate() {
            let limit = max_seen.map_or(0, |m| m + 1);
            if b > limit {
                return Err(PartitionError::NotAPartition {
                    reason: format!("rgs[{i}] = {b} exceeds growth limit {limit}"),
                });
            }
            max_seen = Some(max_seen.map_or(b, |m| m.max(b)));
        }
        let num_blocks = max_seen.map_or(0, |m| m + 1);
        Ok(SetPartition { rgs, num_blocks })
    }

    /// Ground-set size `n`.
    pub fn ground_size(&self) -> usize {
        self.rgs.len()
    }

    /// The restricted growth string.
    pub fn rgs(&self) -> &[usize] {
        &self.rgs
    }

    /// The block index of element `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e >= n`.
    pub fn block_of(&self, e: usize) -> usize {
        self.rgs[e]
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_blocks
    }

    /// The blocks as sorted element lists, in block-index order (which
    /// is order of first appearance, so blocks are sorted by minimum).
    pub fn blocks(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.num_blocks];
        for (e, &b) in self.rgs.iter().enumerate() {
            out[b].push(e);
        }
        out
    }

    /// Returns `true` if `a` and `b` are in the same block.
    ///
    /// # Panics
    ///
    /// Panics if `a >= n` or `b >= n`.
    pub fn same_block(&self, a: usize, b: usize) -> bool {
        self.rgs[a] == self.rgs[b]
    }

    /// Returns `true` if this is the one-block partition (the paper's
    /// `1`). The empty partition is not trivial.
    pub fn is_trivial(&self) -> bool {
        self.num_blocks == 1
    }

    /// Returns `true` if every block is a singleton.
    pub fn is_finest(&self) -> bool {
        self.num_blocks == self.rgs.len()
    }

    /// Returns `true` if every block has exactly two elements — the
    /// promise of the paper's `TwoPartition` problem (Section 4.1).
    pub fn is_perfect_matching(&self) -> bool {
        let mut sizes = vec![0usize; self.num_blocks];
        for &b in &self.rgs {
            sizes[b] += 1;
        }
        sizes.iter().all(|&s| s == 2)
    }

    /// The lattice join `self ∨ other`: the finest partition refined by
    /// both (computed by union–find over both partitions' blocks).
    ///
    /// # Panics
    ///
    /// Panics if ground sets differ.
    pub fn join(&self, other: &SetPartition) -> SetPartition {
        assert_eq!(
            self.ground_size(),
            other.ground_size(),
            "join requires equal ground sets"
        );
        let n = self.ground_size();
        let mut uf = UnionFind::new(n);
        for p in [self, other] {
            let mut first_of_block = vec![usize::MAX; p.num_blocks];
            for e in 0..n {
                let b = p.rgs[e];
                if first_of_block[b] == usize::MAX {
                    first_of_block[b] = e;
                } else {
                    uf.union(first_of_block[b], e);
                }
            }
        }
        SetPartition::from_assignment(&uf.canonical_labels())
    }

    /// The lattice meet `self ∧ other`: the coarsest common refinement
    /// (blocks are pairwise intersections).
    ///
    /// # Panics
    ///
    /// Panics if ground sets differ.
    pub fn meet(&self, other: &SetPartition) -> SetPartition {
        assert_eq!(
            self.ground_size(),
            other.ground_size(),
            "meet requires equal ground sets"
        );
        let n = self.ground_size();
        // Pair (block in self, block in other) identifies a meet block.
        let labels: Vec<usize> = (0..n)
            .map(|e| self.rgs[e] * (other.num_blocks.max(1)) + other.rgs[e])
            .collect();
        SetPartition::from_assignment(&labels)
    }

    /// Returns `true` if `self` is a refinement of `other` (every block
    /// of `self` is contained in a block of `other`), written
    /// `self ≤ other` in the partition lattice.
    ///
    /// # Panics
    ///
    /// Panics if ground sets differ.
    pub fn refines(&self, other: &SetPartition) -> bool {
        assert_eq!(
            self.ground_size(),
            other.ground_size(),
            "refinement requires equal ground sets"
        );
        // self refines other iff elements in the same self-block are in
        // the same other-block.
        let mut other_block_of_self_block = vec![usize::MAX; self.num_blocks];
        for e in 0..self.ground_size() {
            let sb = self.rgs[e];
            let ob = other.rgs[e];
            if other_block_of_self_block[sb] == usize::MAX {
                other_block_of_self_block[sb] = ob;
            } else if other_block_of_self_block[sb] != ob {
                return false;
            }
        }
        true
    }

    /// Block sizes in block-index order.
    pub fn block_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_blocks];
        for &b in &self.rgs {
            sizes[b] += 1;
        }
        sizes
    }

    /// An upper bound on the bits needed to transmit this partition
    /// naively: `n·⌈log₂(n)⌉` (each element's block index) — the cost
    /// of the trivial protocol of Section 4 (up to constants).
    pub fn encoding_bits(&self) -> usize {
        let n = self.ground_size();
        if n <= 1 {
            return 0;
        }
        n * (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

impl fmt::Display for SetPartition {
    /// Formats in the paper's block notation, e.g. `(0,1)(2,3)(4)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rgs.is_empty() {
            return write!(f, "()");
        }
        for block in self.blocks() {
            write!(f, "(")?;
            for (i, e) in block.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{e}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(blocks: &[&[usize]]) -> SetPartition {
        let n = blocks.iter().map(|b| b.len()).sum();
        SetPartition::from_blocks(n, &blocks.iter().map(|b| b.to_vec()).collect::<Vec<_>>())
            .unwrap()
    }

    #[test]
    fn construction_and_canonical_form() {
        let a = p(&[&[0, 2], &[1, 3]]);
        let b = SetPartition::from_blocks(4, &[vec![3, 1], vec![2, 0]]).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.rgs(), &[0, 1, 0, 1]);
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            SetPartition::from_blocks(3, &[vec![0, 5], vec![1, 2]]),
            Err(PartitionError::ElementOutOfRange { element: 5, n: 3 })
        ));
        assert!(SetPartition::from_blocks(3, &[vec![0, 1], vec![1, 2]]).is_err());
        assert!(SetPartition::from_blocks(3, &[vec![0, 1]]).is_err());
        assert!(SetPartition::from_blocks(2, &[vec![0, 1], vec![]]).is_err());
    }

    #[test]
    fn rgs_validation() {
        assert!(SetPartition::from_rgs(vec![0, 1, 2, 1]).is_ok());
        assert!(SetPartition::from_rgs(vec![0, 2]).is_err());
        assert!(SetPartition::from_rgs(vec![1]).is_err());
        assert!(SetPartition::from_rgs(vec![]).is_ok());
    }

    #[test]
    fn finest_and_trivial() {
        let f = SetPartition::finest(4);
        assert!(f.is_finest());
        assert_eq!(f.num_blocks(), 4);
        let t = SetPartition::trivial(4);
        assert!(t.is_trivial());
        assert!(f.refines(&t));
        assert!(!t.refines(&f));
        assert!(t.refines(&t));
    }

    #[test]
    fn paper_join_examples() {
        // Section 1.1 (shifted to 0-indexing):
        // PA = (1,2)(3,4)(5) → (0,1)(2,3)(4)
        // PB = (1,2,4)(3)(5) → (0,1,3)(2)(4)
        // PC = (1,2,4)(3,5)  → (0,1,3)(2,4)
        let pa = p(&[&[0, 1], &[2, 3], &[4]]);
        let pb = SetPartition::from_blocks(5, &[vec![0, 1, 3], vec![2], vec![4]]).unwrap();
        let pc = SetPartition::from_blocks(5, &[vec![0, 1, 3], vec![2, 4]]).unwrap();
        // PA ∨ PB = (1,2,3,4)(5) → (0,1,2,3)(4)
        assert_eq!(pa.join(&pb).blocks(), vec![vec![0, 1, 2, 3], vec![4]]);
        // PA ∨ PC = (1,2,3,4,5) → trivial.
        assert!(pa.join(&pc).is_trivial());
    }

    #[test]
    fn footnote_refinement_example() {
        // Footnote 2: (1,2)(3,4)(5) is a refinement of (1,2)(3,4,5).
        let fine = p(&[&[0, 1], &[2, 3], &[4]]);
        let coarse = SetPartition::from_blocks(5, &[vec![0, 1], vec![2, 3, 4]]).unwrap();
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
    }

    #[test]
    fn join_lattice_laws() {
        let a = p(&[&[0, 1], &[2], &[3]]);
        let b = SetPartition::from_blocks(4, &[vec![0], vec![1, 2], vec![3]]).unwrap();
        let j = a.join(&b);
        assert!(a.refines(&j));
        assert!(b.refines(&j));
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&a), a);
        let f = SetPartition::finest(4);
        assert_eq!(a.join(&f), a);
    }

    #[test]
    fn meet_lattice_laws() {
        let a = SetPartition::from_blocks(4, &[vec![0, 1, 2], vec![3]]).unwrap();
        let b = SetPartition::from_blocks(4, &[vec![0, 1], vec![2, 3]]).unwrap();
        let m = a.meet(&b);
        assert!(m.refines(&a));
        assert!(m.refines(&b));
        assert_eq!(m.blocks(), vec![vec![0, 1], vec![2], vec![3]]);
        assert_eq!(a.meet(&b), b.meet(&a));
        assert_eq!(a.meet(&a), a);
    }

    #[test]
    fn perfect_matching_detection() {
        assert!(p(&[&[0, 1], &[2, 3]]).is_perfect_matching());
        assert!(!p(&[&[0, 1, 2], &[3]]).is_perfect_matching());
        assert!(!SetPartition::finest(4).is_perfect_matching());
    }

    #[test]
    fn display_block_notation() {
        let a = p(&[&[0, 1], &[2], &[3, 4]]);
        assert_eq!(a.to_string(), "(0,1)(2)(3,4)");
        assert_eq!(SetPartition::finest(0).to_string(), "()");
    }

    #[test]
    fn block_sizes_and_encoding() {
        let a = p(&[&[0, 1, 2], &[3]]);
        assert_eq!(a.block_sizes(), vec![3, 1]);
        assert_eq!(a.encoding_bits(), 4 * 2);
        assert_eq!(SetPartition::finest(1).encoding_bits(), 0);
    }

    #[test]
    fn join_is_component_partition_of_overlay() {
        // The semantic backbone of Theorem 4.3: join = components of
        // the union of intra-block edges.
        let a = p(&[&[0, 1], &[2, 3], &[4, 5]]);
        let b = SetPartition::from_blocks(6, &[vec![1, 2], vec![3, 4], vec![0], vec![5]]).unwrap();
        let j = a.join(&b);
        assert!(j.is_trivial());
    }
}
