//! Enumeration of set-partition families.
//!
//! `all_partitions(n)` walks the `B_n` restricted growth strings in
//! lexicographic order — the input space of the `Partition` and
//! `PartitionComp` problems. `matching_partitions(n)` walks the
//! `(n−1)!!` perfect-matching partitions — the input space of
//! `TwoPartition` (Section 4.1).

use crate::partition::SetPartition;

/// Iterates over all `B_n` set partitions of `[n]` in lexicographic
/// RGS order (the finest-first order starts at `0 0 … 0`, i.e. the
/// trivial partition, and ends at `0 1 2 … n−1`, the finest).
///
/// # Example
///
/// ```
/// use bcc_partitions::enumerate::all_partitions;
///
/// assert_eq!(all_partitions(3).count(), 5); // B_3 = 5
/// ```
pub fn all_partitions(n: usize) -> AllPartitions {
    AllPartitions {
        next: Some(vec![0; n]),
    }
}

/// Iterator over all set partitions, produced by [`all_partitions`].
#[derive(Debug, Clone)]
pub struct AllPartitions {
    next: Option<Vec<usize>>,
}

impl Iterator for AllPartitions {
    type Item = SetPartition;

    fn next(&mut self) -> Option<SetPartition> {
        let current = self.next.clone()?;
        let part = SetPartition::from_rgs(current.clone()).expect("internally valid RGS");
        // Successor: increment the rightmost position that can grow.
        let n = current.len();
        let mut rgs = current;
        self.next = (|| {
            if n == 0 {
                return None;
            }
            // prefix_max[i] = max(rgs[0..i]) (i.e. before position i).
            let mut i = n;
            loop {
                if i <= 1 {
                    return None;
                }
                i -= 1;
                let prefix_max = rgs[..i].iter().copied().max().expect("nonempty prefix");
                if rgs[i] <= prefix_max {
                    rgs[i] += 1;
                    for slot in rgs.iter_mut().skip(i + 1) {
                        *slot = 0;
                    }
                    return Some(rgs);
                }
            }
        })();
        Some(part)
    }
}

/// Iterates over all perfect-matching partitions of `[n]` (every block
/// of size exactly 2), for even `n`. These are the `TwoPartition`
/// inputs; there are `(n−1)!!` of them.
///
/// # Panics
///
/// Panics if `n` is odd.
pub fn matching_partitions(n: usize) -> impl Iterator<Item = SetPartition> {
    assert!(n.is_multiple_of(2), "matching partitions need even n");
    bcc_graphs::enumerate::perfect_matchings(n)
        .into_iter()
        .map(move |pairs| {
            let blocks: Vec<Vec<usize>> = pairs.into_iter().map(|(a, b)| vec![a, b]).collect();
            SetPartition::from_blocks(n, &blocks).expect("perfect matching is a valid partition")
        })
}

/// Iterates over all partitions of `[n]` with exactly `k` blocks
/// (there are `S(n, k)` of them).
pub fn partitions_with_blocks(n: usize, k: usize) -> impl Iterator<Item = SetPartition> {
    all_partitions(n).filter(move |p| p.num_blocks() == k)
}

/// The lexicographic index of a partition among `all_partitions(n)`,
/// by linear scan; useful for building the `M_n` matrix row/column
/// maps on small `n`.
pub fn index_of(p: &SetPartition) -> usize {
    all_partitions(p.ground_size())
        .position(|q| &q == p)
        .expect("every partition appears in the enumeration")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numbers::{bell_number, num_matching_partitions, stirling2};
    use std::collections::HashSet;

    #[test]
    fn counts_match_bell() {
        for n in 0..=9 {
            assert_eq!(all_partitions(n).count() as u128, bell_number(n), "n={n}");
        }
    }

    #[test]
    fn all_distinct() {
        let set: HashSet<SetPartition> = all_partitions(7).collect();
        assert_eq!(set.len() as u128, bell_number(7));
    }

    #[test]
    fn first_and_last() {
        let all: Vec<SetPartition> = all_partitions(4).collect();
        assert!(all.first().unwrap().is_trivial());
        assert!(all.last().unwrap().is_finest());
    }

    #[test]
    fn zero_and_one_element() {
        assert_eq!(all_partitions(0).count(), 1);
        assert_eq!(all_partitions(1).count(), 1);
    }

    #[test]
    fn matching_partition_counts() {
        for n in [2usize, 4, 6, 8] {
            let parts: Vec<SetPartition> = matching_partitions(n).collect();
            assert_eq!(parts.len() as u128, num_matching_partitions(n), "n={n}");
            for p in &parts {
                assert!(p.is_perfect_matching());
            }
            let set: HashSet<SetPartition> = parts.into_iter().collect();
            assert_eq!(set.len() as u128, num_matching_partitions(n));
        }
    }

    #[test]
    fn partitions_with_k_blocks_match_stirling() {
        for n in 1..=7 {
            for k in 0..=n {
                assert_eq!(
                    partitions_with_blocks(n, k).count() as u128,
                    stirling2(n, k),
                    "n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn index_roundtrip() {
        for (i, p) in all_partitions(5).enumerate() {
            assert_eq!(index_of(&p), i);
        }
    }
}
