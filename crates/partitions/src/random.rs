//! Exact uniform sampling of set partitions.
//!
//! The hard distribution of Theorem 4.5 draws Alice's partition `P_A`
//! uniformly at random from all `B_n` partitions. This module samples
//! that distribution *exactly* (not approximately) using Stirling-number
//! weights, so empirical entropy measurements match `log₂ B_n`.

use crate::numbers::bell_number;
use crate::partition::SetPartition;
use rand::Rng;

/// Samples a uniformly random set partition of `[n]`, exactly.
///
/// Works by first drawing the block count `k` with probability
/// `S(n, k)/B_n`, then sampling uniformly among partitions with
/// exactly `k` blocks via the recurrence
/// `S(n, k) = S(n−1, k−1) + k·S(n−1, k)`.
///
/// # Panics
///
/// Panics if `n > 39` (Bell numbers overflow `u128`).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let p = bcc_partitions::random::uniform_partition(8, &mut rng);
/// assert_eq!(p.ground_size(), 8);
/// ```
pub fn uniform_partition<R: Rng + ?Sized>(n: usize, rng: &mut R) -> SetPartition {
    if n == 0 {
        return SetPartition::finest(0);
    }
    assert!(n <= 39, "Bell numbers overflow u128 beyond n = 39");
    // ways[m][j] = number of ways to extend a configuration with m
    // elements still unplaced and j blocks already open:
    //   ways[m][j] = ways[m-1][j+1] + j · ways[m-1][j],  ways[0][j] = 1.
    // Then ways[n][0] = B_n, and the growth step of a uniformly random
    // RGS opens a new block with probability ways[m-1][j+1]/ways[m][j].
    let mut ways = vec![vec![0u128; n + 1]; n + 1];
    ways[0].fill(1);
    for m in 1..=n {
        for j in 0..=(n - m) {
            let open_new = ways[m - 1][j + 1];
            let join = (j as u128)
                .checked_mul(ways[m - 1][j])
                .expect("partition weights overflow u128");
            ways[m][j] = open_new
                .checked_add(join)
                .expect("partition weights overflow u128");
        }
    }
    debug_assert_eq!(ways[n][0], bell_number(n));
    let mut rgs = Vec::with_capacity(n);
    let mut open = 0usize;
    for i in 0..n {
        let remaining = n - i;
        let r = rng.gen_range(0..ways[remaining][open]);
        if r < ways[remaining - 1][open + 1] {
            rgs.push(open);
            open += 1;
        } else {
            // Join one of the `open` blocks uniformly: each contributes
            // ways[remaining-1][open] mass.
            let idx = (r - ways[remaining - 1][open + 1]) / ways[remaining - 1][open];
            rgs.push(idx as usize);
        }
    }
    SetPartition::from_rgs(rgs).expect("construction yields a valid RGS")
}

/// Samples a uniformly random *perfect-matching* partition of `[n]`
/// (all blocks size 2), for even `n` — the `TwoPartition` hard inputs.
///
/// # Panics
///
/// Panics if `n` is odd.
pub fn uniform_matching_partition<R: Rng + ?Sized>(n: usize, rng: &mut R) -> SetPartition {
    assert!(n.is_multiple_of(2), "matching partitions need even n");
    // Fisher–Yates then pair consecutive entries: uniform over matchings.
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let blocks: Vec<Vec<usize>> = perm.chunks(2).map(|c| c.to_vec()).collect();
    SetPartition::from_blocks(n, &blocks).expect("pairs form a partition")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{all_partitions, index_of};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampler_produces_valid_partitions() {
        let mut rng = StdRng::seed_from_u64(11);
        for n in 1..=10 {
            for _ in 0..20 {
                let p = uniform_partition(n, &mut rng);
                assert_eq!(p.ground_size(), n);
            }
        }
    }

    #[test]
    fn sampler_is_uniform_chi_square() {
        // n = 4: B_4 = 15 outcomes; draw 15000 samples and check each
        // outcome appears within generous bounds of 1000.
        let mut rng = StdRng::seed_from_u64(99);
        let n = 4;
        let total = 15_000usize;
        let mut counts = [0usize; 15];
        for _ in 0..total {
            let p = uniform_partition(n, &mut rng);
            counts[index_of(&p)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (700..1300).contains(&c),
                "outcome {i} count {c} far from uniform 1000"
            );
        }
    }

    #[test]
    fn sampler_hits_every_partition() {
        let mut rng = StdRng::seed_from_u64(5);
        let all: Vec<_> = all_partitions(4).collect();
        let mut seen = vec![false; all.len()];
        for _ in 0..2000 {
            let p = uniform_partition(4, &mut rng);
            seen[index_of(&p)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 15 partitions sampled");
    }

    #[test]
    fn matching_sampler_valid_and_uniform_support() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            let p = uniform_matching_partition(6, &mut rng);
            assert!(p.is_perfect_matching());
            seen.insert(p);
        }
        assert_eq!(seen.len(), 15, "all (6-1)!! = 15 matchings sampled");
    }

    #[test]
    fn zero_elements() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(uniform_partition(0, &mut rng).ground_size(), 0);
    }
}
