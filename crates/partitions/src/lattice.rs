//! The partition lattice Πₙ as an explicit poset: zeta matrix, Möbius
//! function, and the Dowling–Wilson factorization behind Theorem 2.3.
//!
//! Order partitions by refinement (`P ≤ Q` iff `P` refines `Q`). The
//! paper's Theorem 2.3 — `rank(M_n) = B_n` — follows from a classical
//! factorization this module makes executable:
//!
//! ```text
//! M_n(P, Q) = [P ∨ Q = 1̂] = Σ_R [P ≤ R]·[Q ≤ R]·μ(R, 1̂)
//!           = (Z · D · Zᵀ)(P, Q)
//! ```
//!
//! where `Z(P, R) = [P ≤ R]` is the zeta matrix (triangular with unit
//! diagonal in any linear extension, hence invertible) and
//! `D = diag(μ(R, 1̂))`. In the partition lattice the Möbius value to
//! the top is `μ(R, 1̂) = (−1)^{k−1}(k−1)!` for `R` with `k` blocks —
//! **never zero** — so `M_n` is congruent to an invertible diagonal
//! matrix and has full rank. [`verify_dowling_wilson`] checks the
//! factorization entry by entry, turning the paper's citation into a
//! machine-checked proof at each feasible size.

use crate::enumerate::all_partitions;
use crate::numbers::factorial;
use crate::partition::SetPartition;
use bcc_linalg::{GfP, Matrix};

/// The partition lattice on `[n]`, with all `B_n` elements enumerated
/// and the refinement order materialized.
#[derive(Debug, Clone)]
pub struct PartitionLattice {
    /// The elements, in the canonical enumeration order (index = the
    /// row/column index of all matrices below).
    pub elements: Vec<SetPartition>,
}

impl PartitionLattice {
    /// Builds the lattice for ground-set size `n` (keep `n ≤ 8`;
    /// `B_8 = 4140`).
    pub fn new(n: usize) -> Self {
        PartitionLattice {
            elements: all_partitions(n).collect(),
        }
    }

    /// Number of elements (`B_n`).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` if the lattice is empty (never, for `n ≥ 0`).
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The zeta matrix `Z(P, R) = [P ≤ R]` (refinement order), over
    /// GF(2⁶¹−1).
    pub fn zeta_matrix(&self) -> Matrix {
        let d = self.len();
        Matrix::from_fn(d, d, |i, j| {
            if self.elements[i].refines(&self.elements[j]) {
                GfP::ONE
            } else {
                GfP::ZERO
            }
        })
    }

    /// The Möbius value `μ(R, 1̂)` for the interval from `R` to the top
    /// (one-block) partition: `(−1)^{k−1}·(k−1)!` where `k` is the
    /// number of blocks of `R`. Nonzero for every `R` — the crux of
    /// the Dowling–Wilson argument.
    pub fn mobius_to_top(p: &SetPartition) -> GfP {
        let k = p.num_blocks();
        debug_assert!(k >= 1);
        let magnitude = GfP::new((factorial(k - 1) % ((1u128 << 61) - 1)) as u64);
        if (k - 1).is_multiple_of(2) {
            magnitude
        } else {
            -magnitude
        }
    }

    /// The diagonal matrix `D = diag(μ(R, 1̂))`.
    pub fn mobius_diagonal(&self) -> Matrix {
        let d = self.len();
        let mut m = Matrix::zeros(d, d);
        for (i, p) in self.elements.iter().enumerate() {
            m.set(i, i, Self::mobius_to_top(p));
        }
        m
    }

    /// The join matrix `M_n(P, Q) = [P ∨ Q = 1̂]` in this lattice's
    /// index order.
    pub fn join_matrix(&self) -> Matrix {
        let d = self.len();
        Matrix::from_fn(d, d, |i, j| {
            if self.elements[i].join(&self.elements[j]).is_trivial() {
                GfP::ONE
            } else {
                GfP::ZERO
            }
        })
    }

    /// The full Möbius function `μ(P, Q)` on the lattice, computed by
    /// the recursive definition
    /// `μ(P, P) = 1`, `μ(P, Q) = −Σ_{P ≤ R < Q} μ(P, R)` for `P < Q`,
    /// and `0` when `P ≰ Q`. Returned as a matrix in index order —
    /// the inverse of the zeta matrix.
    pub fn mobius_matrix(&self) -> Matrix {
        let d = self.len();
        let leq: Vec<Vec<bool>> = (0..d)
            .map(|i| {
                (0..d)
                    .map(|j| self.elements[i].refines(&self.elements[j]))
                    .collect()
            })
            .collect();
        let mut mu = Matrix::zeros(d, d);
        // Process targets in order of increasing "height"; the
        // canonical enumeration is not sorted by refinement, so iterate
        // by interval size instead: μ(i, j) depends on μ(i, r) for
        // r in [i, j) — compute with memoized recursion.
        fn compute(
            i: usize,
            j: usize,
            leq: &Vec<Vec<bool>>,
            memo: &mut std::collections::BTreeMap<(usize, usize), GfP>,
        ) -> GfP {
            if i == j {
                return GfP::ONE;
            }
            if !leq[i][j] {
                return GfP::ZERO;
            }
            if let Some(&v) = memo.get(&(i, j)) {
                return v;
            }
            let mut acc = GfP::ZERO;
            for r in 0..leq.len() {
                if r != j && leq[i][r] && leq[r][j] {
                    acc += compute(i, r, leq, memo);
                }
            }
            let v = -acc;
            memo.insert((i, j), v);
            v
        }
        let mut memo = std::collections::BTreeMap::new();
        for i in 0..d {
            for j in 0..d {
                mu.set(i, j, compute(i, j, &leq, &mut memo));
            }
        }
        mu
    }
}

/// The executable Dowling–Wilson argument: checks, entry by entry,
/// that `M_n = Z·D·Zᵀ` with `Z` the zeta matrix and
/// `D = diag(μ(R, 1̂))`, and that every diagonal entry of `D` is
/// nonzero. Since `Z` is unitriangular in any linear extension of the
/// refinement order, this *implies* `rank(M_n) = B_n` (Theorem 2.3).
pub fn verify_dowling_wilson(n: usize) -> bool {
    let lat = PartitionLattice::new(n);
    let z = lat.zeta_matrix();
    let d = lat.mobius_diagonal();
    for i in 0..lat.len() {
        if d.get(i, i).is_zero() {
            return false;
        }
    }
    // Zᵀ as an explicit matrix.
    let zt = Matrix::from_fn(lat.len(), lat.len(), |i, j| z.get(j, i));
    let product = z.mul(&d).mul(&zt);
    product == lat.join_matrix()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numbers::bell_number;

    #[test]
    fn lattice_sizes() {
        for n in 1..=5 {
            let lat = PartitionLattice::new(n);
            assert_eq!(lat.len() as u128, bell_number(n));
            assert!(!lat.is_empty());
        }
    }

    #[test]
    fn zeta_is_reflexive_and_respects_top() {
        let lat = PartitionLattice::new(4);
        let z = lat.zeta_matrix();
        let top = lat
            .elements
            .iter()
            .position(SetPartition::is_trivial)
            .unwrap();
        for i in 0..lat.len() {
            assert_eq!(z.get(i, i), GfP::ONE, "reflexivity");
            assert_eq!(z.get(i, top), GfP::ONE, "everything refines the top");
        }
        assert_eq!(z.rank(), lat.len(), "zeta matrix invertible");
    }

    #[test]
    fn mobius_matrix_inverts_zeta() {
        let lat = PartitionLattice::new(4);
        let z = lat.zeta_matrix();
        let mu = lat.mobius_matrix();
        // In poset convention Z(P,R)=[P≤R] and μ as defined satisfy
        // (μ · Z)(P, Q) = δ(P, Q).
        let prod = mu.mul(&z);
        assert_eq!(prod, Matrix::identity(lat.len()));
    }

    #[test]
    fn mobius_to_top_closed_form_matches_recursion() {
        let lat = PartitionLattice::new(4);
        let mu = lat.mobius_matrix();
        let top = lat
            .elements
            .iter()
            .position(SetPartition::is_trivial)
            .unwrap();
        for (i, p) in lat.elements.iter().enumerate() {
            assert_eq!(
                mu.get(i, top),
                PartitionLattice::mobius_to_top(p),
                "μ({p}, 1̂)"
            );
        }
    }

    /// Theorem 2.3, proved structurally at n = 1..5.
    #[test]
    fn dowling_wilson_factorization() {
        for n in 1..=5 {
            assert!(verify_dowling_wilson(n), "n={n}");
        }
    }

    #[test]
    fn mobius_values_never_zero() {
        let lat = PartitionLattice::new(6);
        for p in &lat.elements {
            assert!(!PartitionLattice::mobius_to_top(p).is_zero());
        }
    }

    #[test]
    fn known_mobius_values() {
        // μ(0̂, 1̂) in Π_n is (−1)^{n−1}(n−1)!.
        for n in 1..=6 {
            let finest = SetPartition::finest(n);
            let expect = if (n - 1) % 2 == 0 {
                GfP::new(factorial(n - 1) as u64)
            } else {
                -GfP::new(factorial(n - 1) as u64)
            };
            assert_eq!(PartitionLattice::mobius_to_top(&finest), expect);
        }
    }
}
