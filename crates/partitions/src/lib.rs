//! The lattice of set partitions of `[n]` — the combinatorial heart of
//! the paper's KT-1 lower bounds (Section 4).
//!
//! In the 2-party `Partition` problem, Alice and Bob hold partitions
//! `P_A`, `P_B` of the ground set `[n]` and must decide whether the
//! lattice join `P_A ∨ P_B` is the trivial one-block partition. The
//! paper's reduction (Theorem 4.3) shows the join is exactly the
//! connected-component partition of the gadget graph `G(P_A, P_B)`,
//! and the rank bound rank(M_n) = B_n (Theorem 2.3) turns the count of
//! partitions — the Bell number — into an Ω(n log n) communication
//! bound.
//!
//! This crate provides:
//!
//! - [`SetPartition`]: canonical restricted-growth-string
//!   representation with [`SetPartition::join`], [`SetPartition::meet`]
//!   and refinement predicates;
//! - [`enumerate`]: iteration over all partitions of `[n]`, all
//!   perfect-matching partitions (the `TwoPartition` inputs), and all
//!   partitions with a given number of blocks;
//! - [`numbers`]: Bell numbers, Stirling numbers of the second kind,
//!   double factorials, and their logarithms;
//! - [`random`]: exact uniform sampling of partitions;
//! - [`matrices`]: the join matrices `M_n` and `E_n` as
//!   [`bcc_linalg::Matrix`]/[`bcc_linalg::Gf2Matrix`] values.
//!
//! # Example
//!
//! ```
//! use bcc_partitions::SetPartition;
//!
//! // The paper's running example (Section 1.1):
//! // PA = (1,2)(3,4)(5), PB = (1,2,4)(3)(5)  [0-indexed here]
//! let pa = SetPartition::from_blocks(5, &[vec![0, 1], vec![2, 3], vec![4]]).unwrap();
//! let pb = SetPartition::from_blocks(5, &[vec![0, 1, 3], vec![2], vec![4]]).unwrap();
//! let join = pa.join(&pb);
//! // PA ∨ PB = (1,2,3,4)(5)
//! assert_eq!(join.blocks(), vec![vec![0, 1, 2, 3], vec![4]]);
//! assert!(!join.is_trivial());
//!
//! let pc = SetPartition::from_blocks(5, &[vec![0, 1, 3], vec![2, 4]]).unwrap();
//! assert!(pa.join(&pc).is_trivial()); // PA ∨ PC = (1,2,3,4,5)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod partition;

pub mod enumerate;
pub mod lattice;
pub mod matrices;
pub mod numbers;
pub mod random;

pub use partition::{PartitionError, SetPartition};
