//! Property-based tests: the partition lattice laws the paper's
//! Section 4 reductions depend on.

use bcc_partitions::{enumerate, numbers, SetPartition};
use proptest::prelude::*;

fn arb_partition(max_n: usize) -> impl Strategy<Value = SetPartition> {
    (1usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0usize..n, n)
            .prop_map(|labels| SetPartition::from_assignment(&labels))
    })
}

/// Two partitions over the same ground set.
fn arb_pair(max_n: usize) -> impl Strategy<Value = (SetPartition, SetPartition)> {
    (1usize..=max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..n, n),
            proptest::collection::vec(0usize..n, n),
        )
            .prop_map(|(a, b)| {
                (
                    SetPartition::from_assignment(&a),
                    SetPartition::from_assignment(&b),
                )
            })
    })
}

fn arb_triple(max_n: usize) -> impl Strategy<Value = (SetPartition, SetPartition, SetPartition)> {
    (1usize..=max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..n, n),
            proptest::collection::vec(0usize..n, n),
            proptest::collection::vec(0usize..n, n),
        )
            .prop_map(|(a, b, c)| {
                (
                    SetPartition::from_assignment(&a),
                    SetPartition::from_assignment(&b),
                    SetPartition::from_assignment(&c),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn rgs_is_canonical(p in arb_partition(10)) {
        let rebuilt = SetPartition::from_rgs(p.rgs().to_vec()).unwrap();
        prop_assert_eq!(&rebuilt, &p);
        let from_blocks = SetPartition::from_blocks(p.ground_size(), &p.blocks()).unwrap();
        prop_assert_eq!(from_blocks, p);
    }

    #[test]
    fn join_laws((a, b) in arb_pair(10)) {
        let j = a.join(&b);
        prop_assert!(a.refines(&j));
        prop_assert!(b.refines(&j));
        prop_assert_eq!(a.join(&b), b.join(&a));
        prop_assert_eq!(a.join(&a), a.clone());
        // Identity: join with finest is self; join with trivial is trivial.
        let n = a.ground_size();
        prop_assert_eq!(a.join(&SetPartition::finest(n)), a.clone());
        prop_assert!(a.join(&SetPartition::trivial(n)).is_trivial());
    }

    #[test]
    fn join_associative((a, b, c) in arb_triple(8)) {
        prop_assert_eq!(a.join(&b).join(&c), a.join(&b.join(&c)));
    }

    #[test]
    fn meet_laws((a, b) in arb_pair(10)) {
        let m = a.meet(&b);
        prop_assert!(m.refines(&a));
        prop_assert!(m.refines(&b));
        prop_assert_eq!(a.meet(&b), b.meet(&a));
        prop_assert_eq!(a.meet(&a), a.clone());
    }

    #[test]
    fn absorption_laws((a, b) in arb_pair(8)) {
        prop_assert_eq!(a.join(&a.meet(&b)), a.clone());
        prop_assert_eq!(a.meet(&a.join(&b)), a.clone());
    }

    #[test]
    fn join_is_minimal((a, b) in arb_pair(6)) {
        // The defining property: PA ∨ PB is the FINEST partition that
        // both refine. Check against every partition of the ground set.
        let j = a.join(&b);
        for q in enumerate::all_partitions(a.ground_size()) {
            if a.refines(&q) && b.refines(&q) {
                prop_assert!(j.refines(&q), "join must refine every common coarsening");
            }
        }
    }

    #[test]
    fn refinement_is_partial_order((a, b) in arb_pair(8)) {
        // Antisymmetry.
        if a.refines(&b) && b.refines(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn block_structure_consistent(p in arb_partition(12)) {
        let blocks = p.blocks();
        prop_assert_eq!(blocks.len(), p.num_blocks());
        let total: usize = blocks.iter().map(Vec::len).sum();
        prop_assert_eq!(total, p.ground_size());
        for (bi, block) in blocks.iter().enumerate() {
            for &e in block {
                prop_assert_eq!(p.block_of(e), bi);
            }
        }
        let sizes = p.block_sizes();
        prop_assert_eq!(sizes, blocks.iter().map(Vec::len).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_sampler_valid(n in 1usize..12, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = bcc_partitions::random::uniform_partition(n, &mut rng);
        prop_assert_eq!(p.ground_size(), n);
        // RGS validity is enforced by construction; blocks() must cover.
        let total: usize = p.blocks().iter().map(Vec::len).sum();
        prop_assert_eq!(total, n);
    }

    #[test]
    fn bell_recurrence(n in 1usize..20) {
        // B_{n+1} = sum_k C(n, k) B_k.
        let bells = numbers::bell_numbers_upto(n + 1);
        let mut sum: u128 = 0;
        for (k, &bell) in bells.iter().enumerate().take(n + 1) {
            let choose = numbers::factorial(n) / numbers::factorial(k) / numbers::factorial(n - k);
            sum += choose * bell;
        }
        prop_assert_eq!(sum, bells[n + 1]);
    }
}
