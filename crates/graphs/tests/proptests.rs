//! Property-based tests for the graph substrate.

use bcc_graphs::connectivity::{bfs_distances, connected_components, is_forest, spanning_forest};
use bcc_graphs::cycles::cycle_structure;
use bcc_graphs::matching::{
    hall_condition_brute_force, hall_violator, hopcroft_karp, k_matching, BipartiteGraph,
};
use bcc_graphs::{generators, Graph, UnionFind};
use proptest::prelude::*;

/// Strategy: a random graph on `n` vertices given by an edge-presence mask.
fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (2usize..=max_n).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec(any::<bool>(), max_edges).prop_map(move |mask| {
            let mut g = Graph::new(n);
            let mut idx = 0;
            for u in 0..n {
                for v in (u + 1)..n {
                    if mask[idx] {
                        g.add_edge(u, v).unwrap();
                    }
                    idx += 1;
                }
            }
            g
        })
    })
}

fn arb_bipartite(max_l: usize, max_r: usize) -> impl Strategy<Value = BipartiteGraph> {
    (1usize..=max_l, 1usize..=max_r).prop_flat_map(|(l, r)| {
        proptest::collection::vec(any::<bool>(), l * r).prop_map(move |mask| {
            let mut g = BipartiteGraph::new(l, r);
            for a in 0..l {
                for b in 0..r {
                    if mask[a * r + b] {
                        g.add_edge(a, b);
                    }
                }
            }
            g
        })
    })
}

/// Brute-force maximum matching by trying all subsets of edges.
fn brute_force_matching(g: &BipartiteGraph) -> usize {
    let edges: Vec<(usize, usize)> = (0..g.num_left())
        .flat_map(|l| g.neighbors(l).iter().map(move |&r| (l, r)))
        .collect();
    let m = edges.len();
    assert!(m <= 20, "brute force limited");
    let mut best = 0;
    for mask in 0u32..(1 << m) {
        let chosen: Vec<(usize, usize)> = (0..m)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| edges[i])
            .collect();
        let mut lused = vec![false; g.num_left()];
        let mut rused = vec![false; g.num_right()];
        let mut ok = true;
        for &(l, r) in &chosen {
            if lused[l] || rused[r] {
                ok = false;
                break;
            }
            lused[l] = true;
            rused[r] = true;
        }
        if ok {
            best = best.max(chosen.len());
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn union_find_agrees_with_components(g in arb_graph(12)) {
        let comps = connected_components(&g);
        let mut uf = UnionFind::new(g.num_vertices());
        for e in g.edges() {
            uf.union(e.u, e.v);
        }
        prop_assert_eq!(uf.num_sets(), comps.count);
        for u in 0..g.num_vertices() {
            for v in 0..g.num_vertices() {
                prop_assert_eq!(uf.connected(u, v), comps.same_component(u, v));
            }
        }
    }

    #[test]
    fn bfs_reachability_matches_components(g in arb_graph(10)) {
        if g.num_vertices() == 0 { return Ok(()); }
        let comps = connected_components(&g);
        let d = bfs_distances(&g, 0);
        for (v, &dist) in d.iter().enumerate() {
            prop_assert_eq!(dist != usize::MAX, comps.same_component(0, v));
        }
    }

    #[test]
    fn spanning_forest_is_forest_and_spans(g in arb_graph(10)) {
        let f = spanning_forest(&g);
        let fg = Graph::from_edges(g.num_vertices(), f.iter().map(|e| (e.u, e.v))).unwrap();
        prop_assert!(is_forest(&fg));
        let cg = connected_components(&g);
        let cf = connected_components(&fg);
        prop_assert_eq!(cg.label, cf.label);
    }

    #[test]
    fn hopcroft_karp_matches_brute_force(g in arb_bipartite(4, 4)) {
        prop_assume!(g.num_edges() <= 16);
        let hk = hopcroft_karp(&g);
        prop_assert_eq!(hk.size(), brute_force_matching(&g));
        // Matching validity: mutual pointers, actual edges.
        for (l, pr) in hk.pair_left.iter().enumerate() {
            if let Some(r) = pr {
                prop_assert!(g.neighbors(l).contains(r));
                prop_assert_eq!(hk.pair_right[*r], Some(l));
            }
        }
    }

    #[test]
    fn k_matching_iff_hall(g in arb_bipartite(4, 8), k in 1usize..3) {
        let hall = hall_condition_brute_force(&g, k);
        let km = k_matching(&g, k);
        prop_assert_eq!(hall, km.is_some());
        if let Some(km) = km {
            prop_assert!(km.is_valid(&g));
        }
        // hall_violator agrees and returns a genuine violator.
        match hall_violator(&g, k) {
            None => prop_assert!(hall),
            Some(s) => {
                prop_assert!(!hall);
                prop_assert!(g.neighborhood(s.iter().copied()).len() < k * s.len());
            }
        }
    }

    #[test]
    fn random_disjoint_cycles_valid(seed in any::<u64>(), n in 3usize..40) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::random_disjoint_cycles(n, &mut rng);
        let s = cycle_structure(&g).unwrap();
        prop_assert_eq!(s.lengths().iter().sum::<usize>(), n);
        prop_assert!(s.min_length() >= 3);
    }

    #[test]
    fn complement_involution(g in arb_graph(9)) {
        prop_assert_eq!(g.complement().complement(), g.clone());
    }

    #[test]
    fn degree_sum_is_twice_edges(g in arb_graph(12)) {
        let sum: usize = (0..g.num_vertices()).map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
    }
}
