//! Graph substrate for the `bcclique` workspace.
//!
//! This crate provides every graph-theoretic building block used by the
//! reproduction of *Connectivity Lower Bounds in Broadcast Congested
//! Clique* (Pai & Pemmaraju, PODC 2019):
//!
//! - [`Graph`]: a small, dense-friendly undirected graph over vertices
//!   `0..n`, the input-graph type of every `BCC(b)` instance;
//! - [`UnionFind`]: union–find with union by rank and path compression,
//!   used by connectivity checks, partition joins and Borůvka phases;
//! - [`connectivity`]: connected components, spanning forests and
//!   component labellings;
//! - [`cycles`]: recognition of disjoint-cycle graphs — the promise of
//!   the paper's `TwoCycle` and `MultiCycle` problems;
//! - [`generators`]: deterministic and random instance families
//!   (cycles, disjoint cycles, `G(n, m)`, random 2-regular graphs);
//! - [`enumerate`]: *exact* enumeration of the instance spaces the
//!   lower-bound proofs quantify over (all labeled one-cycle graphs, all
//!   two-cycle graphs, all disjoint-cycle covers, all perfect
//!   matchings);
//! - [`matching`]: Hopcroft–Karp maximum bipartite matching, Hall
//!   condition checking, and the *k-matching* extraction used by the
//!   Polygamous Hall Theorem (Theorem 2.1 of the paper).
//!
//! # Example
//!
//! ```
//! use bcc_graphs::{Graph, generators};
//!
//! let g = generators::cycle(6);
//! assert!(g.is_connected());
//! let h = generators::two_cycles(3, 4);
//! assert_eq!(h.num_vertices(), 7);
//! assert_eq!(bcc_graphs::connectivity::connected_components(&h).count, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod error;
mod graph;
mod union_find;

pub mod connectivity;
pub mod cycles;
pub mod enumerate;
pub mod generators;
pub mod matching;
pub mod weighted;

pub use bitset::BitSet;
pub use error::GraphError;
pub use graph::{Edge, Graph};
pub use union_find::UnionFind;
