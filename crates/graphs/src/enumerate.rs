//! Exact enumeration of the instance spaces quantified over by the
//! paper's lower-bound proofs.
//!
//! Section 3 of the paper reasons about **all** one-cycle instances
//! (the YES side `V₁` of the indistinguishability graph) and **all**
//! two-cycle instances (the NO side `V₂`); Section 4.1 reasons about
//! all partitions of `[n]` into blocks of size two, which correspond to
//! perfect matchings. This module enumerates each of these spaces
//! exactly so that lemmas such as Lemma 3.9
//! (`|V₂| = |V₁|·Θ(log n)`) can be *checked*, not merely trusted.

use crate::graph::Graph;

/// Iterates over all permutations of `0..k` in lexicographic order.
///
/// # Example
///
/// ```
/// let all: Vec<_> = bcc_graphs::enumerate::permutations(3).collect();
/// assert_eq!(all.len(), 6);
/// assert_eq!(all[0], vec![0, 1, 2]);
/// assert_eq!(all[5], vec![2, 1, 0]);
/// ```
pub fn permutations(k: usize) -> Permutations {
    Permutations {
        next: Some((0..k).collect()),
    }
}

/// Iterator over permutations, produced by [`permutations`].
#[derive(Debug, Clone)]
pub struct Permutations {
    next: Option<Vec<usize>>,
}

impl Iterator for Permutations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.clone()?;
        // Compute the lexicographic successor of `current`.
        let mut succ = current.clone();
        let n = succ.len();
        self.next = (|| {
            if n < 2 {
                return None;
            }
            let mut i = n - 1;
            while i > 0 && succ[i - 1] >= succ[i] {
                i -= 1;
            }
            if i == 0 {
                return None;
            }
            let mut j = n - 1;
            while succ[j] <= succ[i - 1] {
                j -= 1;
            }
            succ.swap(i - 1, j);
            succ[i..].reverse();
            Some(succ)
        })();
        Some(current)
    }
}

/// All distinct cyclic orders of `0..k` as vertex sequences, one
/// representative per undirected cycle: the sequence starts at `0` and
/// its second element is smaller than its last (killing rotation and
/// reflection). There are `(k-1)!/2` of them for `k >= 3`.
pub fn cycle_orders(k: usize) -> impl Iterator<Item = Vec<usize>> {
    assert!(k >= 3, "cycles need length >= 3, got {k}");
    permutations(k - 1).filter_map(move |perm| {
        // perm is a permutation of 0..k-1; shift by 1 to permute 1..k.
        let rest: Vec<usize> = perm.into_iter().map(|x| x + 1).collect();
        if rest[0] < rest[k - 2] {
            let mut order = Vec::with_capacity(k);
            order.push(0);
            order.extend(rest);
            Some(order)
        } else {
            None
        }
    })
}

/// Number of distinct labeled one-cycle graphs on `n` vertices:
/// `(n-1)!/2`.
///
/// # Panics
///
/// Panics if `n < 3` or the count overflows `u64`.
pub fn num_one_cycles(n: usize) -> u64 {
    assert!(n >= 3, "cycles need length >= 3");
    let mut f: u64 = 1;
    for i in 2..n as u64 {
        f = f.checked_mul(i).expect("one-cycle count overflows u64");
    }
    f / 2
}

/// All labeled one-cycle graphs on vertices `0..n` (the set `V₁` of
/// Definition 3.6), enumerated lazily.
pub fn one_cycles(n: usize) -> impl Iterator<Item = Graph> {
    cycle_orders(n).map(move |order| crate::generators::cycle_from_order(&order))
}

/// All distinct cycles (as graphs on `0..n`) whose support is exactly
/// the vertex set `verts`.
pub fn cycles_on(n: usize, verts: &[usize]) -> Vec<Graph> {
    let k = verts.len();
    assert!(k >= 3, "cycles need length >= 3");
    let verts = verts.to_vec();
    cycle_orders(k)
        .map(|order| {
            let mut g = Graph::new(n);
            for i in 0..k {
                g.add_edge(verts[order[i]], verts[order[(i + 1) % k]])
                    .expect("cycle edges valid");
            }
            g
        })
        .collect()
}

/// All size-`k` subsets of `0..n` in lexicographic order.
pub fn subsets(n: usize, k: usize) -> impl Iterator<Item = Vec<usize>> {
    Subsets {
        n,
        next: if k <= n { Some((0..k).collect()) } else { None },
    }
}

/// Iterator over fixed-size subsets, produced by [`subsets`].
#[derive(Debug, Clone)]
pub struct Subsets {
    n: usize,
    next: Option<Vec<usize>>,
}

impl Iterator for Subsets {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let current = self.next.clone()?;
        let k = current.len();
        let mut succ = current.clone();
        self.next = (|| {
            if k == 0 {
                return None;
            }
            let mut i = k;
            loop {
                if i == 0 {
                    return None;
                }
                i -= 1;
                if succ[i] != i + self.n - k {
                    break;
                }
            }
            succ[i] += 1;
            for j in (i + 1)..k {
                succ[j] = succ[j - 1] + 1;
            }
            Some(succ)
        })();
        Some(current)
    }
}

/// All two-cycle graphs on `0..n`: every split of the vertex set into
/// two parts of size ≥ 3 with every pair of cycles on the parts. This
/// is the set `V₂` of Definition 3.6. Enumerated lazily; there are
/// `Θ(|V₁|·log n)` of them (Lemma 3.9).
pub fn two_cycle_graphs(n: usize) -> impl Iterator<Item = Graph> {
    assert!(n >= 6, "two cycles need at least 6 vertices");
    // The part containing vertex 0 ranges over subsets of 1..n of size
    // a-1 for a in 3..=n-3; fixing 0's side avoids double counting.
    (3..=n - 3).flat_map(move |a| {
        subsets(n - 1, a - 1).flat_map(move |rest| {
            let mut part_a: Vec<usize> = vec![0];
            part_a.extend(rest.iter().map(|&x| x + 1));
            let part_b: Vec<usize> = (1..n).filter(|v| !part_a.contains(v)).collect();
            let cycles_a = cycles_on(n, &part_a);
            let cycles_b = cycles_on(n, &part_b);
            let mut out = Vec::with_capacity(cycles_a.len() * cycles_b.len());
            for ca in &cycles_a {
                for cb in &cycles_b {
                    let mut g = ca.clone();
                    for e in cb.edges() {
                        g.add_edge(e.u, e.v).expect("disjoint parts");
                    }
                    out.push(g);
                }
            }
            out
        })
    })
}

/// All graphs on `0..n` that are disjoint unions of cycles, each of
/// length at least `min_len` (the full `MultiCycle` instance space for
/// `min_len = 4`). Collected eagerly; intended for small `n`.
pub fn multi_cycle_covers(n: usize, min_len: usize) -> Vec<Graph> {
    assert!(min_len >= 3, "cycles need length >= 3");
    let mut out = Vec::new();
    // Recursively partition vertices into blocks of size >= min_len,
    // always putting the smallest unused vertex in the current block to
    // get each set partition exactly once, then place all cycles.
    fn recurse(
        n: usize,
        min_len: usize,
        remaining: &[usize],
        blocks: &mut Vec<Vec<usize>>,
        out: &mut Vec<Graph>,
    ) {
        if remaining.is_empty() {
            // Cartesian product of cycle choices per block.
            let choices: Vec<Vec<Graph>> = blocks
                .iter()
                .map(|b| crate::enumerate::cycles_on(n, b))
                .collect();
            let mut acc: Vec<Graph> = vec![Graph::new(n)];
            for block_cycles in &choices {
                let mut next = Vec::with_capacity(acc.len() * block_cycles.len());
                for base in &acc {
                    for c in block_cycles {
                        let mut g = base.clone();
                        for e in c.edges() {
                            g.add_edge(e.u, e.v).expect("blocks disjoint");
                        }
                        next.push(g);
                    }
                }
                acc = next;
            }
            out.extend(acc);
            return;
        }
        let anchor = remaining[0];
        let rest = &remaining[1..];
        // Choose the rest of anchor's block from `rest`.
        for size in (min_len - 1)..=rest.len() {
            for members in crate::enumerate::subsets(rest.len(), size) {
                let mut block = vec![anchor];
                block.extend(members.iter().map(|&i| rest[i]));
                let leftover: Vec<usize> = rest
                    .iter()
                    .copied()
                    .filter(|v| !block.contains(v))
                    .collect();
                if !leftover.is_empty() && leftover.len() < min_len {
                    continue;
                }
                blocks.push(block);
                recurse(n, min_len, &leftover, blocks, out);
                blocks.pop();
            }
        }
    }
    let all: Vec<usize> = (0..n).collect();
    let mut blocks = Vec::new();
    recurse(n, min_len, &all, &mut blocks, &mut out);
    out
}

/// All perfect matchings of `0..n` as sorted pair lists (requires `n`
/// even). There are `(n-1)!! = n!/(2^{n/2}·(n/2)!)` of them — exactly
/// the instances of the paper's `TwoPartition` problem (Section 4.1).
pub fn perfect_matchings(n: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(
        n.is_multiple_of(2),
        "perfect matchings need an even number of vertices"
    );
    let mut out = Vec::new();
    let mut used = vec![false; n];
    let mut current = Vec::new();
    fn recurse(
        n: usize,
        used: &mut [bool],
        current: &mut Vec<(usize, usize)>,
        out: &mut Vec<Vec<(usize, usize)>>,
    ) {
        let Some(first) = (0..n).find(|&v| !used[v]) else {
            out.push(current.clone());
            return;
        };
        used[first] = true;
        for partner in (first + 1)..n {
            if used[partner] {
                continue;
            }
            used[partner] = true;
            current.push((first, partner));
            recurse(n, used, current, out);
            current.pop();
            used[partner] = false;
        }
        used[first] = false;
    }
    recurse(n, &mut used, &mut current, &mut out);
    out
}

/// The double factorial `(n-1)!! = 1·3·5·…·(n-1)` for even `n`: the
/// number of perfect matchings of `[n]`.
///
/// # Panics
///
/// Panics if `n` is odd or the result overflows `u64`.
pub fn num_perfect_matchings(n: usize) -> u64 {
    assert!(n.is_multiple_of(2), "need even n");
    let mut acc: u64 = 1;
    let mut k = 1u64;
    while k < n as u64 {
        acc = acc.checked_mul(k).expect("matching count overflows u64");
        k += 2;
    }
    acc
}

/// Number of two-cycle graphs on `n` vertices, computed from the split
/// formula `Σ_{a=3}^{n/2} C(n, a)·(a-1)!/2·(n-a-1)!/2` (halving the
/// `a = n/2` term to avoid double-counting equal splits).
pub fn num_two_cycles(n: usize) -> u64 {
    assert!(n >= 6);
    let fact = |k: usize| -> u128 { (1..=k as u128).product() };
    let choose = |n: usize, k: usize| -> u128 { fact(n) / fact(k) / fact(n - k) };
    let cycles = |k: usize| -> u128 {
        if k == 3 {
            1
        } else {
            fact(k - 1) / 2
        }
    };
    let mut total: u128 = 0;
    for a in 3..=n / 2 {
        let b = n - a;
        let mut term = choose(n, a) * cycles(a) * cycles(b);
        if a == b {
            term /= 2;
        }
        total += term;
    }
    u64::try_from(total).expect("two-cycle count overflows u64")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycles::cycle_structure;
    use std::collections::HashSet;

    #[test]
    fn permutation_counts() {
        assert_eq!(permutations(0).count(), 1);
        assert_eq!(permutations(1).count(), 1);
        assert_eq!(permutations(4).count(), 24);
        let all: HashSet<Vec<usize>> = permutations(4).collect();
        assert_eq!(all.len(), 24);
    }

    #[test]
    fn cycle_order_counts() {
        // (k-1)!/2 for k >= 3: 1, 3, 12, 60.
        assert_eq!(cycle_orders(3).count(), 1);
        assert_eq!(cycle_orders(4).count(), 3);
        assert_eq!(cycle_orders(5).count(), 12);
        assert_eq!(cycle_orders(6).count(), 60);
    }

    #[test]
    fn num_one_cycles_formula() {
        assert_eq!(num_one_cycles(3), 1);
        assert_eq!(num_one_cycles(4), 3);
        assert_eq!(num_one_cycles(5), 12);
        assert_eq!(num_one_cycles(8), 2520);
    }

    #[test]
    fn one_cycles_distinct_and_valid() {
        for n in 3..=7 {
            let graphs: Vec<Graph> = one_cycles(n).collect();
            assert_eq!(graphs.len() as u64, num_one_cycles(n));
            let keys: HashSet<_> = graphs.iter().map(Graph::canonical_key).collect();
            assert_eq!(keys.len(), graphs.len(), "duplicates at n={n}");
            for g in &graphs {
                assert_eq!(cycle_structure(g).unwrap().count(), 1);
            }
        }
    }

    #[test]
    fn subsets_counts() {
        assert_eq!(subsets(5, 2).count(), 10);
        assert_eq!(subsets(5, 0).count(), 1);
        assert_eq!(subsets(5, 5).count(), 1);
        assert_eq!(subsets(3, 4).count(), 0);
        let all: Vec<_> = subsets(4, 2).collect();
        assert_eq!(all[0], vec![0, 1]);
        assert_eq!(all[5], vec![2, 3]);
    }

    #[test]
    fn two_cycle_counts_match_formula() {
        for n in 6..=8 {
            let graphs: Vec<Graph> = two_cycle_graphs(n).collect();
            assert_eq!(graphs.len() as u64, num_two_cycles(n), "n={n}");
            let keys: HashSet<_> = graphs.iter().map(Graph::canonical_key).collect();
            assert_eq!(keys.len(), graphs.len(), "duplicates at n={n}");
            for g in &graphs {
                assert_eq!(cycle_structure(g).unwrap().count(), 2, "n={n}");
            }
        }
    }

    #[test]
    fn num_two_cycles_small_values() {
        // n = 6: splits (3,3): C(6,3)/2 * 1 * 1 = 10.
        assert_eq!(num_two_cycles(6), 10);
        // n = 7: split (3,4): C(7,3) * 1 * 3 = 105.
        assert_eq!(num_two_cycles(7), 105);
    }

    #[test]
    fn multi_cycle_cover_counts() {
        // n = 6, min_len 3: one 6-cycle (60) + two 3-cycles (10) = 70.
        let covers = multi_cycle_covers(6, 3);
        assert_eq!(covers.len(), 70);
        for g in &covers {
            cycle_structure(g).unwrap();
        }
        // n = 8, min_len 4: one 8-cycle (2520) + 4+4 splits
        // (C(8,4)/2 = 35 splits × 3 × 3 = 315) = 2835.
        let covers8 = multi_cycle_covers(8, 4);
        assert_eq!(covers8.len(), 2835);
    }

    #[test]
    fn perfect_matching_counts() {
        assert_eq!(perfect_matchings(2).len(), 1);
        assert_eq!(perfect_matchings(4).len(), 3);
        assert_eq!(perfect_matchings(6).len(), 15);
        assert_eq!(perfect_matchings(8).len(), 105);
        assert_eq!(num_perfect_matchings(8), 105);
        assert_eq!(num_perfect_matchings(10), 945);
        // Each matching covers every vertex exactly once.
        for m in perfect_matchings(6) {
            let mut seen = [false; 6];
            for (u, v) in m {
                assert!(!seen[u] && !seen[v]);
                seen[u] = true;
                seen[v] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn cycles_on_subset() {
        let cs = cycles_on(6, &[1, 3, 4, 5]);
        assert_eq!(cs.len(), 3);
        for g in &cs {
            assert_eq!(g.degree(0), 0);
            assert_eq!(g.degree(2), 0);
            assert_eq!(g.degree(1), 2);
            assert_eq!(g.num_edges(), 4);
        }
    }
}
