//! Bipartite matching machinery for the Polygamous Hall Theorem
//! (Theorem 2.1 of the paper).
//!
//! The KT-0 lower bound (Theorem 3.1) packs the indistinguishability
//! graph with `|V₁|` disjoint "stars": every one-cycle instance is
//! matched to `k = Θ(log n)` *distinct* two-cycle instances. The paper
//! derives this from Hall's marriage theorem applied to a graph in
//! which every left vertex is cloned `k` times. This module implements
//! exactly that construction:
//!
//! - [`BipartiteGraph`]: adjacency between a left and right vertex set;
//! - [`hopcroft_karp`]: maximum matching in `O(E·√V)`;
//! - [`hall_violator`]: find a set `S` with `|N(S)| < k·|S|`, or prove
//!   none exists (via a max-flow argument through the matching);
//! - [`k_matching`]: the constructive Polygamous Hall Theorem —
//!   returns a `k`-matching of size `|L|` whenever the expansion
//!   condition `|N(S)| ≥ k·|S|` holds.

use crate::bitset::BitSet;

/// A bipartite graph with `left` and `right` vertex counts and
/// adjacency lists from left to right.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    left: usize,
    right: usize,
    adj: Vec<Vec<usize>>,
}

impl BipartiteGraph {
    /// Creates an empty bipartite graph.
    pub fn new(left: usize, right: usize) -> Self {
        BipartiteGraph {
            left,
            right,
            adj: vec![Vec::new(); left],
        }
    }

    /// Number of left vertices.
    pub fn num_left(&self) -> usize {
        self.left
    }

    /// Number of right vertices.
    pub fn num_right(&self) -> usize {
        self.right
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Adds an edge from left vertex `l` to right vertex `r`.
    /// Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.left, "left vertex {l} out of range");
        assert!(r < self.right, "right vertex {r} out of range");
        if !self.adj[l].contains(&r) {
            self.adj[l].push(r);
        }
    }

    /// Right neighbors of left vertex `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= left`.
    pub fn neighbors(&self, l: usize) -> &[usize] {
        &self.adj[l]
    }

    /// The neighborhood `N(S)` of a set of left vertices.
    pub fn neighborhood(&self, s: impl IntoIterator<Item = usize>) -> BitSet {
        let mut out = BitSet::new(self.right);
        for l in s {
            for &r in &self.adj[l] {
                out.insert(r);
            }
        }
        out
    }
}

/// A matching: `pair_left[l] = Some(r)` iff `l` is matched to `r`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    /// For each left vertex, its matched right vertex.
    pub pair_left: Vec<Option<usize>>,
    /// For each right vertex, its matched left vertex.
    pub pair_right: Vec<Option<usize>>,
}

impl Matching {
    /// Number of matched pairs.
    pub fn size(&self) -> usize {
        self.pair_left.iter().filter(|p| p.is_some()).count()
    }
}

/// Maximum bipartite matching via Hopcroft–Karp.
///
/// # Example
///
/// ```
/// use bcc_graphs::matching::{BipartiteGraph, hopcroft_karp};
///
/// let mut g = BipartiteGraph::new(2, 2);
/// g.add_edge(0, 0);
/// g.add_edge(0, 1);
/// g.add_edge(1, 0);
/// assert_eq!(hopcroft_karp(&g).size(), 2);
/// ```
pub fn hopcroft_karp(g: &BipartiteGraph) -> Matching {
    const INF: usize = usize::MAX;
    let (nl, nr) = (g.left, g.right);
    let mut pair_left: Vec<Option<usize>> = vec![None; nl];
    let mut pair_right: Vec<Option<usize>> = vec![None; nr];
    let mut dist = vec![INF; nl];

    loop {
        // BFS from all free left vertices.
        let mut queue = std::collections::VecDeque::new();
        for l in 0..nl {
            if pair_left[l].is_none() {
                dist[l] = 0;
                queue.push_back(l);
            } else {
                dist[l] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(l) = queue.pop_front() {
            for &r in &g.adj[l] {
                match pair_right[r] {
                    None => found_augmenting = true,
                    Some(l2) => {
                        if dist[l2] == INF {
                            dist[l2] = dist[l] + 1;
                            queue.push_back(l2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS phase: find vertex-disjoint shortest augmenting paths.
        fn try_augment(
            l: usize,
            g: &BipartiteGraph,
            dist: &mut [usize],
            pair_left: &mut [Option<usize>],
            pair_right: &mut [Option<usize>],
        ) -> bool {
            for i in 0..g.adj[l].len() {
                let r = g.adj[l][i];
                let ok = match pair_right[r] {
                    None => true,
                    Some(l2) => {
                        dist[l2] == dist[l] + 1 && try_augment(l2, g, dist, pair_left, pair_right)
                    }
                };
                if ok {
                    pair_left[l] = Some(r);
                    pair_right[r] = Some(l);
                    return true;
                }
            }
            dist[l] = usize::MAX;
            false
        }
        for l in 0..nl {
            if pair_left[l].is_none() {
                try_augment(l, g, &mut dist, &mut pair_left, &mut pair_right);
            }
        }
    }
    Matching {
        pair_left,
        pair_right,
    }
}

/// A `k`-matching assigning each left vertex `k` *distinct* right
/// vertices, with all assigned right vertices disjoint across left
/// vertices (the generalized matching of Theorem 2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KMatching {
    /// Replication factor.
    pub k: usize,
    /// `assignments[l]` = the `k` right vertices assigned to `l`.
    pub assignments: Vec<Vec<usize>>,
}

impl KMatching {
    /// Verifies the defining properties against `g`: each left vertex
    /// has exactly `k` neighbors assigned, every assigned vertex is an
    /// actual neighbor, and the assigned sets are pairwise disjoint.
    pub fn is_valid(&self, g: &BipartiteGraph) -> bool {
        let mut used = BitSet::new(g.right);
        for (l, assigned) in self.assignments.iter().enumerate() {
            if assigned.len() != self.k {
                return false;
            }
            for &r in assigned {
                if !g.adj[l].contains(&r) || !used.insert(r) {
                    return false;
                }
            }
        }
        true
    }
}

/// Constructive Polygamous Hall Theorem (Theorem 2.1 of the paper):
/// clone each left vertex `k` times, run Hopcroft–Karp, and regroup.
///
/// Returns `Some(km)` with a full `k`-matching of size `|L|` iff the
/// expansion condition `|N(S)| ≥ k·|S|` holds for every `S ⊆ L` (by
/// Hall's theorem the clone graph has a perfect left matching exactly
/// then); otherwise returns `None`.
pub fn k_matching(g: &BipartiteGraph, k: usize) -> Option<KMatching> {
    let mut clone_graph = BipartiteGraph::new(g.left * k, g.right);
    for l in 0..g.left {
        for c in 0..k {
            for &r in &g.adj[l] {
                clone_graph.add_edge(l * k + c, r);
            }
        }
    }
    let m = hopcroft_karp(&clone_graph);
    if m.size() < g.left * k {
        return None;
    }
    let mut assignments = vec![Vec::with_capacity(k); g.left];
    // The size check above guarantees every clone is matched.
    for (cl, r) in m.pair_left.iter().enumerate() {
        if let Some(r) = r {
            assignments[cl / k].push(*r);
        }
    }
    Some(KMatching { k, assignments })
}

/// Searches for a *Hall violator* for replication factor `k`: a set
/// `S ⊆ L` with `|N(S)| < k·|S|`. Returns `None` when the expansion
/// condition holds everywhere.
///
/// Uses the standard certificate: if the cloned graph has no perfect
/// left matching, the set of left vertices reachable from any
/// unmatched left vertex by alternating paths violates Hall.
pub fn hall_violator(g: &BipartiteGraph, k: usize) -> Option<Vec<usize>> {
    let mut clone_graph = BipartiteGraph::new(g.left * k, g.right);
    for l in 0..g.left {
        for c in 0..k {
            for &r in &g.adj[l] {
                clone_graph.add_edge(l * k + c, r);
            }
        }
    }
    let m = hopcroft_karp(&clone_graph);
    if m.size() == g.left * k {
        return None;
    }
    // Find an unmatched clone and explore alternating paths.
    let start = (0..clone_graph.left).find(|&l| m.pair_left[l].is_none())?;
    let mut left_seen = BitSet::new(clone_graph.left);
    let mut right_seen = BitSet::new(clone_graph.right);
    left_seen.insert(start);
    let mut stack = vec![start];
    while let Some(l) = stack.pop() {
        for &r in &clone_graph.adj[l] {
            if right_seen.insert(r) {
                if let Some(l2) = m.pair_right[r] {
                    if left_seen.insert(l2) {
                        stack.push(l2);
                    }
                }
            }
        }
    }
    // Project clones back to original left vertices.
    let mut violator: Vec<usize> = left_seen.iter().map(|cl| cl / k).collect();
    violator.dedup();
    violator.sort_unstable();
    violator.dedup();
    Some(violator)
}

/// Checks the expansion condition `|N(S)| ≥ k·|S|` for *every* subset
/// `S ⊆ L` by brute force. Exponential in `|L|`; intended for tests
/// against [`hall_violator`] on small graphs.
pub fn hall_condition_brute_force(g: &BipartiteGraph, k: usize) -> bool {
    assert!(g.left <= 20, "brute force limited to 20 left vertices");
    for mask in 1u32..(1 << g.left) {
        let s = (0..g.left).filter(|&l| mask & (1 << l) != 0);
        let count = (mask.count_ones() as usize) * k;
        if g.neighborhood(s).len() < count {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_bipartite(l: usize, r: usize) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(l, r);
        for a in 0..l {
            for b in 0..r {
                g.add_edge(a, b);
            }
        }
        g
    }

    #[test]
    fn matching_on_complete_bipartite() {
        let g = complete_bipartite(3, 5);
        assert_eq!(hopcroft_karp(&g).size(), 3);
        let g2 = complete_bipartite(5, 3);
        assert_eq!(hopcroft_karp(&g2).size(), 3);
    }

    #[test]
    fn matching_respects_structure() {
        // A path-like structure: 0-0, 1-0, 1-1 has max matching 2.
        let mut g = BipartiteGraph::new(2, 2);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        g.add_edge(1, 1);
        let m = hopcroft_karp(&g);
        assert_eq!(m.size(), 2);
        assert_eq!(m.pair_left[0], Some(0));
        assert_eq!(m.pair_left[1], Some(1));
    }

    #[test]
    fn matching_empty_graph() {
        let g = BipartiteGraph::new(3, 3);
        assert_eq!(hopcroft_karp(&g).size(), 0);
    }

    #[test]
    fn k_matching_on_complete() {
        let g = complete_bipartite(3, 7);
        let km = k_matching(&g, 2).expect("2-matching exists");
        assert!(km.is_valid(&g));
        assert!(k_matching(&g, 3).is_none(), "3·3 = 9 > 7 right vertices");
    }

    #[test]
    fn k_matching_matches_hall() {
        // Left 0 sees {0,1}; left 1 sees {1,2,3}: 2-matching needs
        // |N({0})| >= 2 (ok), |N({1})| >= 2 (ok), |N({0,1})| >= 4 (=4, ok).
        let mut g = BipartiteGraph::new(2, 4);
        g.add_edge(0, 0);
        g.add_edge(0, 1);
        g.add_edge(1, 1);
        g.add_edge(1, 2);
        g.add_edge(1, 3);
        assert!(hall_condition_brute_force(&g, 2));
        let km = k_matching(&g, 2).expect("Hall holds");
        assert!(km.is_valid(&g));
    }

    #[test]
    fn hall_violator_found_when_expansion_fails() {
        // Both left vertices see only right vertex 0.
        let mut g = BipartiteGraph::new(2, 3);
        g.add_edge(0, 0);
        g.add_edge(1, 0);
        assert!(!hall_condition_brute_force(&g, 1));
        let v = hall_violator(&g, 1).expect("violator exists");
        assert_eq!(g.neighborhood(v.iter().copied()).len(), 1);
        assert!(v.len() >= 2, "violator {v:?} must have |N(S)| < |S|");
        assert!(k_matching(&g, 1).is_none());
    }

    #[test]
    fn hall_violator_none_when_condition_holds() {
        let g = complete_bipartite(3, 6);
        assert!(hall_violator(&g, 2).is_none());
        assert!(hall_condition_brute_force(&g, 2));
    }

    #[test]
    fn neighborhood_computation() {
        let mut g = BipartiteGraph::new(3, 5);
        g.add_edge(0, 1);
        g.add_edge(1, 1);
        g.add_edge(1, 4);
        let nb = g.neighborhood([0, 1]);
        assert_eq!(nb.iter().collect::<Vec<_>>(), vec![1, 4]);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = BipartiteGraph::new(1, 1);
        g.add_edge(0, 0);
        g.add_edge(0, 0);
        assert_eq!(g.num_edges(), 1);
    }
}
