//! Connected components, spanning forests and component labellings.
//!
//! These are the ground-truth oracles against which every `BCC(b)`
//! algorithm in the workspace is judged: `Connectivity` asks whether
//! [`connected_components`] reports one component, and
//! `ConnectedComponents` asks each node to output the label assigned
//! here (the minimum vertex of its component).

use crate::graph::{Edge, Graph};
use crate::union_find::UnionFind;

/// The result of a connected-components computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` = the minimum vertex in `v`'s component.
    pub label: Vec<usize>,
    /// Number of connected components.
    pub count: usize,
}

impl Components {
    /// Returns the components as sorted vertex lists, ordered by label.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut by: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (v, &l) in self.label.iter().enumerate() {
            by.entry(l).or_default().push(v);
        }
        by.into_values().collect()
    }

    /// Returns `true` if `u` and `v` are in the same component.
    pub fn same_component(&self, u: usize, v: usize) -> bool {
        self.label[u] == self.label[v]
    }
}

/// Computes connected components with canonical (minimum-vertex)
/// labels.
///
/// # Example
///
/// ```
/// use bcc_graphs::{Graph, connectivity::connected_components};
///
/// let g = Graph::from_edges(5, [(0, 1), (3, 4)]).unwrap();
/// let c = connected_components(&g);
/// assert_eq!(c.count, 3);
/// assert_eq!(c.label, vec![0, 0, 2, 3, 3]);
/// ```
pub fn connected_components(g: &Graph) -> Components {
    let mut uf = UnionFind::new(g.num_vertices());
    for e in g.edges() {
        uf.union(e.u, e.v);
    }
    Components {
        label: uf.canonical_labels(),
        count: uf.num_sets(),
    }
}

/// Returns a spanning forest of `g` (a maximal cycle-free subset of the
/// edges), as edges in the order they were accepted by a union–find
/// scan over the sorted edge list.
pub fn spanning_forest(g: &Graph) -> Vec<Edge> {
    let mut uf = UnionFind::new(g.num_vertices());
    let mut forest = Vec::new();
    for e in g.edges() {
        if uf.union(e.u, e.v) {
            forest.push(e);
        }
    }
    forest
}

/// Returns `true` if `g` is acyclic (a forest).
pub fn is_forest(g: &Graph) -> bool {
    // A graph is a forest iff m = n - (number of components).
    let c = connected_components(g);
    g.num_edges() == g.num_vertices() - c.count
}

/// Breadth-first distances from `source` (`usize::MAX` marks
/// unreachable vertices).
///
/// # Panics
///
/// Panics if `source >= n`.
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<usize> {
    assert!(source < g.num_vertices(), "source out of range");
    let mut dist = vec![usize::MAX; g.num_vertices()];
    dist[source] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// An upper bound on the arboricity of `g` via the degeneracy
/// (iteratively removing a minimum-degree vertex). The degeneracy `d`
/// satisfies `arboricity <= d <= 2·arboricity - 1`, so constant
/// degeneracy certifies the "uniformly sparse" regime in which the
/// paper's lower bound is tight.
pub fn degeneracy(g: &Graph) -> usize {
    let n = g.num_vertices();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut best = 0;
    for _ in 0..n {
        // One vertex is removed per pass, so a minimum always exists;
        // the guard keeps this loop panic-free regardless.
        let Some(v) = (0..n).filter(|&v| !removed[v]).min_by_key(|&v| deg[v]) else {
            break;
        };
        best = best.max(deg[v]);
        removed[v] = true;
        for &w in g.neighbors(v) {
            if !removed[w] {
                deg[w] -= 1;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_disjoint_cycles() {
        let g = generators::two_cycles(3, 4);
        let c = connected_components(&g);
        assert_eq!(c.count, 2);
        assert_eq!(c.groups(), vec![vec![0, 1, 2], vec![3, 4, 5, 6]]);
        assert!(c.same_component(0, 2));
        assert!(!c.same_component(0, 3));
    }

    #[test]
    fn components_of_empty_graph() {
        let c = connected_components(&Graph::new(4));
        assert_eq!(c.count, 4);
        assert_eq!(c.label, vec![0, 1, 2, 3]);
    }

    #[test]
    fn spanning_forest_size() {
        let g = generators::cycle(5);
        let f = spanning_forest(&g);
        assert_eq!(f.len(), 4); // n - 1 for a connected graph
        let g2 = generators::two_cycles(3, 3);
        assert_eq!(spanning_forest(&g2).len(), 4); // n - 2
    }

    #[test]
    fn forest_recognition() {
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(is_forest(&path));
        assert!(!is_forest(&generators::cycle(4)));
        assert!(is_forest(&Graph::new(3)));
    }

    #[test]
    fn bfs_on_cycle() {
        let g = generators::cycle(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(3, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn degeneracy_of_families() {
        assert_eq!(degeneracy(&generators::cycle(8)), 2);
        assert_eq!(degeneracy(&generators::star(8)), 1);
        let path = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(degeneracy(&path), 1);
        assert_eq!(degeneracy(&Graph::new(3)), 0);
    }
}
