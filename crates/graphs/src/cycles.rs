//! Recognition of disjoint-cycle graphs — the promise of the paper's
//! `TwoCycle` ("one cycle vs. two cycles", Section 3) and `MultiCycle`
//! ("one cycle vs. two or more cycles, each of length ≥ 4", Section 4)
//! problems.

use crate::error::GraphError;
use crate::graph::Graph;

/// The cycle structure of a graph that is a disjoint union of cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleStructure {
    /// The vertex sequence of each cycle, starting at the cycle's
    /// minimum vertex and proceeding toward its smaller neighbor;
    /// cycles ordered by minimum vertex.
    pub cycles: Vec<Vec<usize>>,
}

impl CycleStructure {
    /// Number of disjoint cycles.
    pub fn count(&self) -> usize {
        self.cycles.len()
    }

    /// Lengths of the cycles, in the canonical order.
    pub fn lengths(&self) -> Vec<usize> {
        self.cycles.iter().map(Vec::len).collect()
    }

    /// Length of the shortest cycle.
    ///
    /// # Panics
    ///
    /// Panics if there are no cycles.
    pub fn min_length(&self) -> usize {
        self.lengths()
            .into_iter()
            .min()
            .expect("at least one cycle")
    }
}

/// Decomposes `g` into disjoint cycles.
///
/// # Errors
///
/// Returns [`GraphError::PromiseViolation`] if `g` is not 2-regular
/// (every disjoint union of cycles is exactly the class of 2-regular
/// graphs on its support; isolated vertices are rejected too).
pub fn cycle_structure(g: &Graph) -> Result<CycleStructure, GraphError> {
    let n = g.num_vertices();
    for v in 0..n {
        if g.degree(v) != 2 {
            return Err(GraphError::PromiseViolation {
                reason: format!(
                    "vertex {v} has degree {}, expected 2 (disjoint cycles)",
                    g.degree(v)
                ),
            });
        }
    }
    let mut seen = vec![false; n];
    let mut cycles = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        // Walk the cycle starting toward the smaller neighbor.
        let mut cycle = vec![start];
        seen[start] = true;
        let mut prev = start;
        let mut cur = *g.neighbors(start).iter().min().expect("degree 2");
        while cur != start {
            seen[cur] = true;
            cycle.push(cur);
            let next = g
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&w| w != prev)
                .expect("degree 2 so a non-prev neighbor exists");
            prev = cur;
            cur = next;
        }
        if cycle.len() < 3 {
            return Err(GraphError::PromiseViolation {
                reason: format!(
                    "cycle through vertex {start} has length {} < 3",
                    cycle.len()
                ),
            });
        }
        cycles.push(cycle);
    }
    Ok(CycleStructure { cycles })
}

/// Classification of an input under the `TwoCycle` promise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TwoCycleClass {
    /// A single cycle spanning all vertices — the YES ("connected")
    /// instance.
    OneCycle,
    /// Exactly two disjoint cycles, each of length ≥ 3 — the NO
    /// instance.
    TwoCycles,
}

/// Classifies a `TwoCycle` input.
///
/// # Errors
///
/// Returns [`GraphError::PromiseViolation`] if the graph is not a
/// disjoint union of one or two cycles of length ≥ 3.
pub fn classify_two_cycle(g: &Graph) -> Result<TwoCycleClass, GraphError> {
    let s = cycle_structure(g)?;
    match s.count() {
        1 => Ok(TwoCycleClass::OneCycle),
        2 => Ok(TwoCycleClass::TwoCycles),
        k => Err(GraphError::PromiseViolation {
            reason: format!("TwoCycle promise requires 1 or 2 cycles, found {k}"),
        }),
    }
}

/// Classification of an input under the `MultiCycle` promise
/// (Section 4.1: one cycle, or two **or more** cycles each of length
/// ≥ 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MultiCycleClass {
    /// A single spanning cycle.
    OneCycle,
    /// Two or more disjoint cycles.
    MultipleCycles,
}

/// Classifies a `MultiCycle` input.
///
/// # Errors
///
/// Returns [`GraphError::PromiseViolation`] if the graph is not a
/// disjoint union of cycles, or any cycle is shorter than 4.
pub fn classify_multi_cycle(g: &Graph) -> Result<MultiCycleClass, GraphError> {
    let s = cycle_structure(g)?;
    if let Some(&short) = s.lengths().iter().find(|&&l| l < 4) {
        return Err(GraphError::PromiseViolation {
            reason: format!("MultiCycle promise requires all cycles of length >= 4, found {short}"),
        });
    }
    if s.count() == 1 {
        Ok(MultiCycleClass::OneCycle)
    } else {
        Ok(MultiCycleClass::MultipleCycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn one_cycle_structure() {
        let s = cycle_structure(&generators::cycle(5)).unwrap();
        assert_eq!(s.count(), 1);
        assert_eq!(s.lengths(), vec![5]);
        assert_eq!(s.cycles[0], vec![0, 1, 2, 3, 4]);
        assert_eq!(s.min_length(), 5);
    }

    #[test]
    fn two_cycle_structure() {
        let s = cycle_structure(&generators::two_cycles(3, 5)).unwrap();
        assert_eq!(s.count(), 2);
        assert_eq!(s.lengths(), vec![3, 5]);
    }

    #[test]
    fn rejects_non_regular() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(cycle_structure(&g).is_err());
        assert!(cycle_structure(&Graph::new(3)).is_err());
    }

    #[test]
    fn classify_two_cycle_instances() {
        assert_eq!(
            classify_two_cycle(&generators::cycle(6)).unwrap(),
            TwoCycleClass::OneCycle
        );
        assert_eq!(
            classify_two_cycle(&generators::two_cycles(3, 3)).unwrap(),
            TwoCycleClass::TwoCycles
        );
        // Three cycles violate the TwoCycle promise.
        let g = generators::multi_cycle(&[3, 3, 3]);
        assert!(classify_two_cycle(&g).is_err());
    }

    #[test]
    fn classify_multi_cycle_instances() {
        assert_eq!(
            classify_multi_cycle(&generators::cycle(8)).unwrap(),
            MultiCycleClass::OneCycle
        );
        assert_eq!(
            classify_multi_cycle(&generators::multi_cycle(&[4, 4, 5])).unwrap(),
            MultiCycleClass::MultipleCycles
        );
        // A 3-cycle violates the MultiCycle length promise when disconnected...
        assert!(classify_multi_cycle(&generators::two_cycles(3, 5)).is_err());
        // ... and even standalone.
        assert!(classify_multi_cycle(&generators::cycle(3)).is_err());
    }

    #[test]
    fn canonical_walk_direction() {
        // Cycle 0-2-1-3-0: from 0 the smaller neighbor is 2... neighbors of 0
        // are {2, 3}, so the walk goes 0, 2, 1, 3.
        let g = Graph::from_edges(4, [(0, 2), (2, 1), (1, 3), (3, 0)]).unwrap();
        let s = cycle_structure(&g).unwrap();
        assert_eq!(s.cycles[0], vec![0, 2, 1, 3]);
    }
}
