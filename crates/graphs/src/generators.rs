//! Instance-family generators.
//!
//! Deterministic families (cycles, disjoint cycles, paths, stars,
//! complete graphs) plus seeded random families (`G(n, m)`, random
//! 2-regular graphs, random spanning trees) used by the experiment
//! harness and benchmarks.

use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// The cycle `0 - 1 - ... - (n-1) - 0`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices, got {n}");
    let mut g = Graph::new(n);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n).expect("cycle edges are valid");
    }
    g
}

/// Two disjoint cycles on `a` and `b` vertices (vertices `0..a` and
/// `a..a+b`).
///
/// # Panics
///
/// Panics if `a < 3` or `b < 3`.
pub fn two_cycles(a: usize, b: usize) -> Graph {
    multi_cycle(&[a, b])
}

/// A disjoint union of cycles with the given lengths, on consecutive
/// vertex ranges.
///
/// # Panics
///
/// Panics if any length is `< 3`.
pub fn multi_cycle(lengths: &[usize]) -> Graph {
    let n: usize = lengths.iter().sum();
    let mut g = Graph::new(n);
    let mut base = 0;
    for &len in lengths {
        assert!(len >= 3, "cycle length {len} < 3");
        for i in 0..len {
            g.add_edge(base + i, base + (i + 1) % len)
                .expect("multi-cycle edges are valid");
        }
        base += len;
    }
    g
}

/// The path `0 - 1 - ... - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 0..n.saturating_sub(1) {
        g.add_edge(v, v + 1).expect("path edges are valid");
    }
    g
}

/// The star with center `0` and leaves `1..n`.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v).expect("star edges are valid");
    }
    g
}

/// The complete graph `K_n` (the communication network of the
/// congested clique).
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v).expect("complete edges are valid");
        }
    }
    g
}

/// A one-cycle graph visiting the vertices in the order given by
/// `order` (a permutation of `0..n`).
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..order.len()` or has
/// fewer than 3 entries.
pub fn cycle_from_order(order: &[usize]) -> Graph {
    let n = order.len();
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut seen = vec![false; n];
    for &v in order {
        assert!(v < n && !seen[v], "order must be a permutation of 0..n");
        seen[v] = true;
    }
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(order[i], order[(i + 1) % n])
            .expect("cycle-from-order edges are valid");
    }
    g
}

/// A uniformly random graph with `n` vertices and `m` distinct edges
/// (the `G(n, m)` model).
///
/// # Panics
///
/// Panics if `m > n·(n−1)/2`.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    let max = n * n.saturating_sub(1) / 2;
    assert!(m <= max, "m = {m} exceeds max edges {max}");
    let mut g = Graph::new(n);
    // Rejection sampling is fine for the densities we use (m << n^2);
    // fall back to shuffling the full edge list when dense.
    if m * 3 >= max {
        let mut all: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        all.shuffle(rng);
        for &(u, v) in all.iter().take(m) {
            g.add_edge(u, v).expect("shuffled edges distinct");
        }
    } else {
        while g.num_edges() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v).expect("checked distinct");
            }
        }
    }
    g
}

/// A random 2-regular graph: a uniformly random permutation is cut into
/// cycles of length ≥ 3 greedily. The result is a disjoint union of
/// cycles on all `n` vertices (a valid `TwoCycle`/`MultiCycle`-style
/// input, though the number of cycles varies).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn random_disjoint_cycles<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 3, "need at least 3 vertices");
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    // Split the shuffled order into runs of length >= 3.
    let mut lengths = Vec::new();
    let mut remaining = n;
    while remaining > 0 {
        if remaining < 6 {
            lengths.push(remaining);
            remaining = 0;
        } else {
            let len = rng.gen_range(3..=remaining - 3);
            lengths.push(len);
            remaining -= len;
        }
    }
    let mut g = Graph::new(n);
    let mut base = 0;
    for len in lengths {
        for i in 0..len {
            let a = order[base + i];
            let b = order[base + (i + 1) % len];
            g.add_edge(a, b).expect("disjoint cycle edges valid");
        }
        base += len;
    }
    g
}

/// A uniformly random labeled one-cycle graph on `n` vertices (a random
/// Hamiltonian cycle).
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn random_one_cycle<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 3, "need at least 3 vertices");
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    cycle_from_order(&order)
}

/// A random two-cycle graph: a uniformly random split `(a, n-a)` with
/// `3 <= a <= n-3`, with uniformly random cycles on the two sides of a
/// random vertex bipartition.
///
/// # Panics
///
/// Panics if `n < 6`.
pub fn random_two_cycle<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 6, "two cycles need at least 6 vertices");
    let a = rng.gen_range(3..=n - 3);
    let mut verts: Vec<usize> = (0..n).collect();
    verts.shuffle(rng);
    let mut g = Graph::new(n);
    for (side, len) in [(0, a), (a, n - a)] {
        for i in 0..len {
            let u = verts[side + i];
            let v = verts[side + (i + 1) % len];
            g.add_edge(u, v).expect("two-cycle edges valid");
        }
    }
    g
}

/// A random spanning tree on `n` vertices (random attachment), plus
/// `extra` random non-tree edges; a connected graph with controllable
/// sparsity.
pub fn random_tree_plus<R: Rng + ?Sized>(n: usize, extra: usize, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        let parent = rng.gen_range(0..v);
        g.add_edge(v, parent).expect("tree edges valid");
    }
    let max = n * n.saturating_sub(1) / 2;
    let target = (g.num_edges() + extra).min(max);
    while g.num_edges() < target {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v).expect("checked distinct");
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::connected_components;
    use crate::cycles::cycle_structure;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cycle_is_2_regular_connected() {
        for n in 3..10 {
            let g = cycle(n);
            assert!(g.is_regular(2));
            assert!(g.is_connected());
            assert_eq!(g.num_edges(), n);
        }
    }

    #[test]
    fn multi_cycle_structure_matches() {
        let g = multi_cycle(&[3, 4, 6]);
        let s = cycle_structure(&g).unwrap();
        assert_eq!(s.lengths(), vec![3, 4, 6]);
        assert_eq!(connected_components(&g).count, 3);
    }

    #[test]
    fn path_and_star_shapes() {
        let p = path(5);
        assert_eq!(p.num_edges(), 4);
        assert!(p.is_connected());
        let s = star(5);
        assert_eq!(s.degree(0), 4);
        assert_eq!(s.degree(3), 1);
    }

    #[test]
    fn complete_edge_count() {
        assert_eq!(complete(6).num_edges(), 15);
        assert!(complete(6).is_regular(5));
    }

    #[test]
    fn cycle_from_order_roundtrip() {
        let g = cycle_from_order(&[2, 0, 3, 1]);
        assert!(g.is_regular(2));
        assert!(g.has_edge(2, 0));
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(3, 1));
        assert!(g.has_edge(1, 2));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn cycle_from_order_rejects_repeats() {
        cycle_from_order(&[0, 1, 1, 2]);
    }

    #[test]
    fn gnm_has_exact_edges() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(n, m) in &[(10, 0), (10, 15), (10, 45), (20, 50)] {
            let g = gnm(n, m, &mut rng);
            assert_eq!(g.num_edges(), m);
            assert_eq!(g.num_vertices(), n);
        }
    }

    #[test]
    fn random_families_satisfy_promises() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let g = random_disjoint_cycles(17, &mut rng);
            assert!(g.is_regular(2));
            cycle_structure(&g).unwrap();

            let one = random_one_cycle(9, &mut rng);
            assert_eq!(cycle_structure(&one).unwrap().count(), 1);

            let two = random_two_cycle(11, &mut rng);
            assert_eq!(cycle_structure(&two).unwrap().count(), 2);
        }
    }

    #[test]
    fn random_tree_plus_connected() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_tree_plus(30, 10, &mut rng);
        assert!(g.is_connected());
        assert_eq!(g.num_edges(), 39);
    }
}
