//! The undirected simple graph type used as the input graph of every
//! `BCC(b)` instance.

use crate::bitset::BitSet;
use crate::error::GraphError;
use crate::union_find::UnionFind;

/// An undirected edge, stored with `u <= v`.
///
/// `Edge` is a plain value type; construction through [`Edge::new`]
/// normalizes endpoint order so that `Edge::new(3, 1) == Edge::new(1, 3)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: usize,
    /// Larger endpoint.
    pub v: usize,
}

impl Edge {
    /// Creates an edge, normalizing endpoint order.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` (input graphs are simple).
    pub fn new(u: usize, v: usize) -> Self {
        assert_ne!(u, v, "self-loops are not allowed");
        if u < v {
            Edge { u, v }
        } else {
            Edge { u: v, v: u }
        }
    }

    /// Given one endpoint, returns the other.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not an endpoint of this edge.
    pub fn other(&self, w: usize) -> usize {
        if w == self.u {
            self.v
        } else if w == self.v {
            self.u
        } else {
            panic!(
                "vertex {w} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }

    /// Returns `true` if `w` is an endpoint of this edge.
    pub fn touches(&self, w: usize) -> bool {
        self.u == w || self.v == w
    }

    /// Returns `true` if the two edges share an endpoint.
    pub fn shares_endpoint(&self, other: &Edge) -> bool {
        self.touches(other.u) || self.touches(other.v)
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

/// An undirected simple graph on vertices `0..n`.
///
/// Maintains both adjacency lists (for iteration) and adjacency bit
/// rows (for O(1) edge queries); the two are kept consistent by the
/// mutation methods.
///
/// # Example
///
/// ```
/// use bcc_graphs::Graph;
///
/// let mut g = Graph::new(4);
/// g.add_edge(0, 1).unwrap();
/// g.add_edge(1, 2).unwrap();
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// assert_eq!(g.degree(1), 2);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone)]
pub struct Graph {
    n: usize,
    adj: Vec<Vec<usize>>,
    rows: Vec<BitSet>,
    m: usize,
}

impl PartialEq for Graph {
    /// Structural equality: same vertex count and same edge set,
    /// regardless of edge insertion order.
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.rows == other.rows
    }
}

impl Eq for Graph {}

impl std::hash::Hash for Graph {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.n.hash(state);
        self.rows.hash(state);
    }
}

impl Graph {
    /// Creates an edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            adj: vec![Vec::new(); n],
            rows: vec![BitSet::new(n); n],
            m: 0,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns an error on out-of-range endpoints, self-loops, or
    /// duplicate edges.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<Self, GraphError> {
        let mut g = Graph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range, `u == v`, or
    /// the edge already exists.
    pub fn add_edge(&mut self, u: usize, v: usize) -> Result<(), GraphError> {
        if u >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: u,
                num_vertices: self.n,
            });
        }
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.n,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if self.rows[u].contains(v) {
            return Err(GraphError::DuplicateEdge {
                u: u.min(v),
                v: u.max(v),
            });
        }
        self.adj[u].push(v);
        self.adj[v].push(u);
        self.rows[u].insert(v);
        self.rows[v].insert(u);
        self.m += 1;
        Ok(())
    }

    /// Removes the undirected edge `{u, v}`, returning `true` if it
    /// was present.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.n || v >= self.n || !self.rows[u].contains(v) {
            return false;
        }
        self.adj[u].retain(|&w| w != v);
        self.adj[v].retain(|&w| w != u);
        self.rows[u].remove(v);
        self.rows[v].remove(u);
        self.m -= 1;
        true
    }

    /// Returns `true` if the edge `{u, v}` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        u < self.n && self.rows[u].contains(v)
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Neighbors of `v`, in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Adjacency row of `v` as a bit set.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbor_set(&self, v: usize) -> &BitSet {
        &self.rows[v]
    }

    /// Iterates over all edges with `u < v`, in sorted order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.m);
        for u in 0..self.n {
            for v in self.rows[u].iter() {
                if u < v {
                    out.push(Edge { u, v });
                }
            }
        }
        out
    }

    /// Returns `true` if every vertex has degree exactly `d`.
    pub fn is_regular(&self, d: usize) -> bool {
        (0..self.n).all(|v| self.degree(v) == d)
    }

    /// Returns `true` if the graph is connected (the empty graph and
    /// singleton graph are connected).
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut uf = UnionFind::new(self.n);
        for u in 0..self.n {
            for &v in &self.adj[u] {
                uf.union(u, v);
            }
        }
        uf.num_sets() == 1
    }

    /// Replaces edge set with `edges` (keeping `n`), validating as in
    /// [`Graph::from_edges`].
    ///
    /// # Errors
    ///
    /// Same as [`Graph::add_edge`].
    pub fn set_edges(
        &mut self,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> Result<(), GraphError> {
        *self = Graph::new(self.n);
        for (u, v) in edges {
            self.add_edge(u, v)?;
        }
        Ok(())
    }

    /// The complement graph (useful for tests of the clique network).
    pub fn complement(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                if !self.has_edge(u, v) {
                    g.add_edge(u, v).expect("complement edge valid");
                }
            }
        }
        g
    }

    /// Sorted degree sequence.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut d: Vec<usize> = (0..self.n).map(|v| self.degree(v)).collect();
        d.sort_unstable();
        d
    }

    /// A canonical, hashable encoding of the edge set: the sorted edge
    /// list. Two graphs on the same vertex set are equal iff their
    /// canonical keys are equal.
    pub fn canonical_key(&self) -> Vec<(usize, usize)> {
        self.edges().into_iter().map(|e| (e.u, e.v)).collect()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n)
            .field("edges", &self.canonical_key())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalizes() {
        assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
        assert_eq!(Edge::new(1, 3).other(1), 3);
        assert_eq!(Edge::new(1, 3).other(3), 1);
        assert!(Edge::new(1, 3).touches(1));
        assert!(!Edge::new(1, 3).touches(2));
        assert!(Edge::new(1, 3).shares_endpoint(&Edge::new(3, 5)));
        assert!(!Edge::new(1, 3).shares_endpoint(&Edge::new(2, 5)));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_loop() {
        Edge::new(2, 2);
    }

    #[test]
    fn add_remove_edges() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::new(3);
        assert!(matches!(
            g.add_edge(0, 3),
            Err(GraphError::VertexOutOfRange { vertex: 3, .. })
        ));
        assert!(matches!(
            g.add_edge(1, 1),
            Err(GraphError::SelfLoop { vertex: 1 })
        ));
        g.add_edge(0, 1).unwrap();
        assert!(matches!(
            g.add_edge(1, 0),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        ));
    }

    #[test]
    fn connectivity_basics() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert!(g.is_connected());
        let h = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!h.is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(!Graph::new(2).is_connected());
    }

    #[test]
    fn edges_sorted_and_canonical() {
        let g = Graph::from_edges(4, [(2, 3), (0, 1), (0, 3)]).unwrap();
        assert_eq!(g.canonical_key(), vec![(0, 1), (0, 3), (2, 3)]);
        let h = Graph::from_edges(4, [(0, 3), (2, 3), (1, 0)]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn complement_of_path() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let c = g.complement();
        assert_eq!(c.canonical_key(), vec![(0, 2)]);
    }

    #[test]
    fn regularity_and_degrees() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert!(g.is_regular(2));
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.degree_sequence(), vec![2, 2, 2]);
        assert!(!Graph::new(2).is_regular(1));
    }

    #[test]
    fn set_edges_replaces() {
        let mut g = Graph::from_edges(4, [(0, 1)]).unwrap();
        g.set_edges([(2, 3)]).unwrap();
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(2, 3));
        assert_eq!(g.num_edges(), 1);
    }
}
