//! Disjoint-set forest (union–find) with union by rank and path
//! compression.
//!
//! Union–find is a workhorse of the reproduction: it implements
//! connectivity queries, the connected-component labelling of
//! `ConnectedComponents`, the set-partition *join* operation
//! `P_A ∨ P_B` (Section 4 of the paper), and the component merging of
//! the Borůvka-style upper-bound algorithms.

/// A disjoint-set forest over elements `0..n`.
///
/// # Example
///
/// ```
/// use bcc_graphs::UnionFind;
///
/// let mut uf = UnionFind::new(5);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(1, 2));
/// assert!(!uf.union(0, 2)); // already joined
/// assert!(uf.connected(0, 2));
/// assert!(!uf.connected(0, 3));
/// assert_eq!(uf.num_sets(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of the set containing `x`, with path
    /// compression.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// The representative without mutating (no path compression); handy
    /// when only a shared reference is available.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        root
    }

    /// Merges the sets containing `x` and `y`. Returns `true` if they
    /// were previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if `x >= n` or `y >= n`.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Returns `true` if `x` and `y` are in the same set.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// For each element, the *minimum* element of its set — a canonical
    /// labelling used for component labels and partition canonical
    /// forms.
    pub fn canonical_labels(&mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut min_of_root = vec![usize::MAX; n];
        for x in 0..n {
            let r = self.find(x);
            min_of_root[r] = min_of_root[r].min(x);
        }
        (0..n)
            .map(|x| min_of_root[self.find_immutable(x)])
            .collect()
    }

    /// Groups elements into sets, each sorted, sets ordered by their
    /// minimum element.
    pub fn sets(&mut self) -> Vec<Vec<usize>> {
        let labels = self.canonical_labels();
        let mut by_label: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (x, &label) in labels.iter().enumerate() {
            by_label.entry(label).or_default().push(x);
        }
        by_label.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_and_finds() {
        let mut uf = UnionFind::new(6);
        assert_eq!(uf.num_sets(), 6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 2);
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 3));
        assert!(!uf.connected(0, 4));
        assert_eq!(uf.find(3), uf.find(0));
    }

    #[test]
    fn canonical_labels_are_min() {
        let mut uf = UnionFind::new(5);
        uf.union(4, 2);
        uf.union(2, 1);
        assert_eq!(uf.canonical_labels(), vec![0, 1, 1, 3, 1]);
    }

    #[test]
    fn sets_grouping() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 4);
        uf.union(1, 3);
        assert_eq!(uf.sets(), vec![vec![0, 4], vec![1, 3], vec![2]]);
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }

    #[test]
    fn immutable_find_matches() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        for x in 0..3 {
            assert_eq!(uf.find_immutable(x), uf.find_immutable(0));
        }
        let root = uf.find(2);
        assert_eq!(uf.find_immutable(2), root);
    }

    #[test]
    fn path_compression_flattens() {
        let mut uf = UnionFind::new(8);
        for i in 0..7 {
            uf.union(i, i + 1);
        }
        let r = uf.find(7);
        // After find, every node on the path points directly at the root.
        assert_eq!(uf.parent[7], r);
        assert_eq!(uf.num_sets(), 1);
    }
}
