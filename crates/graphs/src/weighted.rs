//! Weighted graphs and minimum spanning trees/forests.
//!
//! The paper's context is the MST line of work in congested cliques
//! (Hegeman et al., Ghaffari–Parter, Jurdziński–Nowicki, and the MST
//! verification lower bounds of §1.3). This module supplies the
//! sequential ground truth — Kruskal's algorithm — against which the
//! distributed Borůvka implementation in `bcc-algorithms` is checked.

use crate::graph::Graph;
use crate::union_find::UnionFind;

/// An undirected graph with `u64` edge weights.
///
/// # Example
///
/// ```
/// use bcc_graphs::weighted::WeightedGraph;
///
/// let mut g = WeightedGraph::new(4);
/// g.add_edge(0, 1, 5).unwrap();
/// g.add_edge(1, 2, 3).unwrap();
/// g.add_edge(0, 2, 10).unwrap();
/// g.add_edge(2, 3, 1).unwrap();
/// let mst = g.minimum_spanning_forest();
/// assert_eq!(mst.total_weight, 5 + 3 + 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedGraph {
    graph: Graph,
    /// Weights keyed by normalized `(u, v)` with `u < v`.
    weights: std::collections::BTreeMap<(usize, usize), u64>,
}

/// A minimum spanning forest: the chosen edges and their total weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningForest {
    /// Edges `(u, v, weight)` with `u < v`, sorted.
    pub edges: Vec<(usize, usize, u64)>,
    /// Sum of chosen weights.
    pub total_weight: u64,
}

impl WeightedGraph {
    /// An edgeless weighted graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            graph: Graph::new(n),
            weights: std::collections::BTreeMap::new(),
        }
    }

    /// Builds a weighted graph from an unweighted one, assigning each
    /// edge the *distinct* deterministic weight used by the
    /// distributed algorithms: a hash of the endpoints and a seed.
    /// Distinctness is enforced by embedding the edge index into the
    /// low bits, so ties are impossible and the MST is unique.
    pub fn from_graph_hashed(g: &Graph, seed: u64) -> Self {
        let mut out = WeightedGraph::new(g.num_vertices());
        for e in g.edges() {
            let w = hashed_weight(e.u, e.v, g.num_vertices(), seed);
            let inserted = out.add_edge(e.u, e.v, w);
            debug_assert!(inserted.is_ok(), "edges valid in source graph");
        }
        out
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// The underlying unweighted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Adds a weighted edge.
    ///
    /// # Errors
    ///
    /// Same as [`Graph::add_edge`].
    pub fn add_edge(&mut self, u: usize, v: usize, weight: u64) -> Result<(), crate::GraphError> {
        self.graph.add_edge(u, v)?;
        self.weights.insert((u.min(v), u.max(v)), weight);
        Ok(())
    }

    /// The weight of edge `{u, v}`, if present.
    pub fn weight(&self, u: usize, v: usize) -> Option<u64> {
        self.weights.get(&(u.min(v), u.max(v))).copied()
    }

    /// All edges as `(u, v, weight)` with `u < v`, sorted by `(u, v)`.
    pub fn weighted_edges(&self) -> Vec<(usize, usize, u64)> {
        self.graph
            .edges()
            .into_iter()
            .map(|e| (e.u, e.v, self.weights[&(e.u, e.v)]))
            .collect()
    }

    /// Kruskal's algorithm: the minimum spanning forest (spanning tree
    /// per connected component). With distinct weights the result is
    /// the unique MSF.
    pub fn minimum_spanning_forest(&self) -> SpanningForest {
        let mut edges = self.weighted_edges();
        edges.sort_by_key(|&(u, v, w)| (w, u, v));
        let mut uf = UnionFind::new(self.num_vertices());
        let mut chosen = Vec::new();
        let mut total = 0u64;
        for (u, v, w) in edges {
            if uf.union(u, v) {
                chosen.push((u, v, w));
                total += w;
            }
        }
        chosen.sort_unstable();
        SpanningForest {
            edges: chosen,
            total_weight: total,
        }
    }

    /// Returns `true` if all edge weights are distinct (uniqueness of
    /// the MSF).
    pub fn weights_distinct(&self) -> bool {
        let mut seen = std::collections::BTreeSet::new();
        self.weights.values().all(|&w| seen.insert(w))
    }
}

/// The deterministic distinct edge weight shared by the distributed
/// algorithms and the oracle: high bits pseudo-random (splitmix64 of
/// the normalized endpoints and seed), low bits the edge's unique slot
/// index, so no two edges collide.
pub fn hashed_weight(u: usize, v: usize, n: usize, seed: u64) -> u64 {
    let (a, b) = (u.min(v) as u64, u.max(v) as u64);
    let slot = a * n as u64 + b; // unique per unordered pair
    let mut z = seed ^ (a << 32 | b).wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    // 16 pseudo-random high bits, 24 deterministic distinct low bits:
    // 40-bit weights, so sums over any graph stay far from overflow.
    ((z >> 48) << 24) | (slot & 0xff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn kruskal_basic() {
        let mut g = WeightedGraph::new(5);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 2).unwrap();
        g.add_edge(2, 0, 3).unwrap();
        g.add_edge(3, 4, 7).unwrap();
        let f = g.minimum_spanning_forest();
        assert_eq!(f.edges, vec![(0, 1, 1), (1, 2, 2), (3, 4, 7)]);
        assert_eq!(f.total_weight, 10);
    }

    #[test]
    fn forest_size_matches_components() {
        let g = WeightedGraph::from_graph_hashed(&generators::two_cycles(4, 5), 1);
        let f = g.minimum_spanning_forest();
        // n − #components = 9 − 2.
        assert_eq!(f.edges.len(), 7);
    }

    #[test]
    fn hashed_weights_distinct() {
        for seed in 0..5 {
            let g = WeightedGraph::from_graph_hashed(&generators::complete(12), seed);
            assert!(g.weights_distinct(), "seed={seed}");
        }
    }

    #[test]
    fn weight_lookup_symmetric() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(2, 0, 9).unwrap();
        assert_eq!(g.weight(0, 2), Some(9));
        assert_eq!(g.weight(2, 0), Some(9));
        assert_eq!(g.weight(0, 1), None);
    }

    #[test]
    fn mst_weight_optimal_brute_force() {
        // Compare against brute force over all spanning trees on a
        // small dense graph.
        let base = generators::complete(5);
        let g = WeightedGraph::from_graph_hashed(&base, 3);
        let edges = g.weighted_edges();
        let m = edges.len();
        let mut best = u64::MAX;
        for mask in 0u32..(1 << m) {
            if mask.count_ones() != 4 {
                continue;
            }
            let chosen: Vec<_> = (0..m)
                .filter(|&i| mask >> i & 1 == 1)
                .map(|i| edges[i])
                .collect();
            let mut uf = UnionFind::new(5);
            let mut ok = true;
            for &(u, v, _) in &chosen {
                if !uf.union(u, v) {
                    ok = false;
                    break;
                }
            }
            if ok && uf.num_sets() == 1 {
                best = best.min(chosen.iter().map(|&(_, _, w)| w).sum());
            }
        }
        assert_eq!(g.minimum_spanning_forest().total_weight, best);
    }

    #[test]
    fn from_graph_preserves_structure() {
        let base = generators::cycle(7);
        let g = WeightedGraph::from_graph_hashed(&base, 0);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.graph(), &base);
    }
}
