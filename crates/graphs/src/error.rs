//! Error types for graph construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or validating graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint referenced a vertex `>= n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: usize,
        /// The number of vertices in the graph.
        num_vertices: usize,
    },
    /// A self-loop `(v, v)` was supplied; input graphs are simple.
    SelfLoop {
        /// The vertex with the attempted loop.
        vertex: usize,
    },
    /// The same undirected edge was supplied twice.
    DuplicateEdge {
        /// Smaller endpoint.
        u: usize,
        /// Larger endpoint.
        v: usize,
    },
    /// The graph violates a promise required by the caller (e.g. a
    /// `TwoCycle` input that is not a disjoint union of cycles).
    PromiseViolation {
        /// Human-readable description of the violated promise.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph on {num_vertices} vertices"
            ),
            GraphError::SelfLoop { vertex } => {
                write!(
                    f,
                    "self-loop at vertex {vertex} not allowed in a simple graph"
                )
            }
            GraphError::DuplicateEdge { u, v } => {
                write!(f, "duplicate edge ({u}, {v})")
            }
            GraphError::PromiseViolation { reason } => {
                write!(f, "input violates problem promise: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 5,
        };
        assert_eq!(
            e.to_string(),
            "vertex 9 out of range for graph on 5 vertices"
        );
        assert_eq!(
            GraphError::SelfLoop { vertex: 2 }.to_string(),
            "self-loop at vertex 2 not allowed in a simple graph"
        );
        assert_eq!(
            GraphError::DuplicateEdge { u: 1, v: 2 }.to_string(),
            "duplicate edge (1, 2)"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
