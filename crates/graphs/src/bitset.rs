//! A compact dynamically-sized bit set.
//!
//! Used for adjacency rows of [`crate::Graph`] and for the set
//! bookkeeping inside the matching and enumeration modules. All
//! operations are `O(n / 64)` or better.

/// A fixed-capacity set of `usize` values in `0..len`, stored one bit
/// per value.
///
/// # Example
///
/// ```
/// use bcc_graphs::BitSet;
///
/// let mut s = BitSet::new(100);
/// s.insert(3);
/// s.insert(97);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 97]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The exclusive upper bound on storable values.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn insert(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bitset value {value} out of range");
        let (w, b) = (value / 64, value % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `value`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `value >= capacity`.
    pub fn remove(&mut self, value: usize) -> bool {
        assert!(value < self.capacity, "bitset value {value} out of range");
        let (w, b) = (value / 64, value % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Returns `true` if `value` is in the set.
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        self.words[value / 64] & (1 << (value % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to the maximum value seen.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

/// Iterator over the elements of a [`BitSet`], produced by
/// [`BitSet::iter`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64));
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_order() {
        let mut s = BitSet::new(200);
        for v in [199, 0, 63, 64, 65, 128] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn union_and_intersection() {
        let mut a = BitSet::new(10);
        let mut b = BitSet::new(10);
        a.insert(1);
        a.insert(2);
        b.insert(2);
        b.insert(3);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn empty_and_clear() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let mut t = BitSet::new(5);
        t.insert(4);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [5usize, 1, 3].into_iter().collect();
        assert_eq!(s.capacity(), 6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        assert!(!BitSet::new(4).contains(100));
    }

    #[test]
    fn debug_is_nonempty() {
        let s = BitSet::new(4);
        assert_eq!(format!("{s:?}"), "{}");
    }
}
