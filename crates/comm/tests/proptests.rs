//! Property-based tests for the 2-party layer: protocols, gadgets,
//! simulation.

use bcc_comm::driver::{run_protocol, DriverOpts};
use bcc_comm::protocols::{
    decode_partition, encode_partition, trivial_message_bits, JoinCompAlice, JoinCompBob,
    TrivialJoinAlice, TrivialJoinBob,
};
use bcc_comm::reduction::{gadget_graph, verify_theorem_4_3, Gadget};
use bcc_partitions::SetPartition;
use proptest::prelude::*;

fn arb_partition(max_n: usize) -> impl Strategy<Value = SetPartition> {
    (1usize..=max_n).prop_flat_map(|n| {
        proptest::collection::vec(0usize..n, n).prop_map(|l| SetPartition::from_assignment(&l))
    })
}

fn arb_pair(max_n: usize) -> impl Strategy<Value = (SetPartition, SetPartition)> {
    (2usize..=max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(0usize..n, n),
            proptest::collection::vec(0usize..n, n),
        )
            .prop_map(|(a, b)| {
                (
                    SetPartition::from_assignment(&a),
                    SetPartition::from_assignment(&b),
                )
            })
    })
}

fn arb_matching_pair(half_max: usize) -> impl Strategy<Value = (SetPartition, SetPartition)> {
    (2usize..=half_max).prop_flat_map(|k| {
        let n = 2 * k;
        (any::<u64>(), any::<u64>()).prop_map(move |(s1, s2)| {
            use rand::SeedableRng;
            let mut r1 = rand::rngs::StdRng::seed_from_u64(s1);
            let mut r2 = rand::rngs::StdRng::seed_from_u64(s2);
            (
                bcc_partitions::random::uniform_matching_partition(n, &mut r1),
                bcc_partitions::random::uniform_matching_partition(n, &mut r2),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partition encoding roundtrips for arbitrary partitions.
    #[test]
    fn encoding_roundtrip(p in arb_partition(16)) {
        let bits = encode_partition(&p);
        prop_assert_eq!(bits.len(), trivial_message_bits(p.ground_size()));
        prop_assert_eq!(decode_partition(p.ground_size(), &bits).unwrap(), p);
    }

    /// The decision protocol is correct on random pairs, with its
    /// documented exact cost.
    #[test]
    fn decision_protocol_correct((pa, pb) in arb_pair(10)) {
        let expect = pa.join(&pb).is_trivial();
        let mut alice = TrivialJoinAlice::new(pa.clone());
        let mut bob = TrivialJoinBob::new(pb.clone());
        let run = run_protocol(&mut alice, &mut bob, &DriverOpts::new(8));
        prop_assert_eq!(run.alice_output, Some(expect));
        prop_assert_eq!(run.bob_output, Some(expect));
        prop_assert_eq!(run.bits_exchanged, trivial_message_bits(pa.ground_size()) + 1);
    }

    /// PartitionComp outputs the join on both sides; any bit budget
    /// below Alice's message leaves Bob clueless.
    #[test]
    fn comp_protocol_correct((pa, pb) in arb_pair(10)) {
        let expect = pa.join(&pb);
        let mut alice = JoinCompAlice::new(pa.clone());
        let mut bob = JoinCompBob::new(pb.clone());
        let run = run_protocol(&mut alice, &mut bob, &DriverOpts::new(8));
        prop_assert_eq!(run.alice_output.as_ref(), Some(&expect));
        prop_assert_eq!(run.bob_output.as_ref(), Some(&expect));

        let full = trivial_message_bits(pa.ground_size());
        prop_assume!(full > 1);
        let mut alice2 = JoinCompAlice::new(pa.clone());
        let mut bob2 = JoinCompBob::new(pb.clone());
        let starved = run_protocol(&mut alice2, &mut bob2, &DriverOpts::new(8).bit_budget(full - 1));
        prop_assert_eq!(starved.bob_output, None);
    }

    /// Theorem 4.3 on random pairs for the general gadget.
    #[test]
    fn theorem_4_3_general_random((pa, pb) in arb_pair(8)) {
        prop_assert!(verify_theorem_4_3(Gadget::General, &pa, &pb));
    }

    /// Theorem 4.3 and the 2-regular structural invariants on random
    /// matching pairs.
    #[test]
    fn theorem_4_3_two_regular_random((pa, pb) in arb_matching_pair(6)) {
        prop_assert!(verify_theorem_4_3(Gadget::TwoRegular, &pa, &pb));
        let g = gadget_graph(Gadget::TwoRegular, &pa, &pb).unwrap();
        prop_assert!(g.is_regular(2));
        let s = bcc_graphs::cycles::cycle_structure(&g).unwrap();
        prop_assert!(s.min_length() >= 4);
        prop_assert_eq!(s.count(), pa.join(&pb).num_blocks());
    }

    /// The gadget is connected iff the join is trivial — on both
    /// gadgets.
    #[test]
    fn connectivity_iff_trivial_join((pa, pb) in arb_pair(7)) {
        let g = gadget_graph(Gadget::General, &pa, &pb).unwrap();
        prop_assert_eq!(g.is_connected(), pa.join(&pb).is_trivial());
    }
}
