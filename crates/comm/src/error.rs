//! Typed errors for the two-party machinery.

use std::error::Error;
use std::fmt;

/// Errors from protocol encodings, gadget construction, and drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// A bit string did not decode to a valid protocol message.
    BadEncoding {
        /// Human-readable description.
        reason: String,
    },
    /// Alice's and Bob's partitions live on different ground sets, so
    /// no gadget graph `G(P_A, P_B)` exists for the pair.
    GroundSetMismatch {
        /// Alice's ground size.
        alice: usize,
        /// Bob's ground size.
        bob: usize,
    },
    /// The gadget edge list was rejected by the graph constructor.
    InvalidGadget {
        /// Human-readable description.
        reason: String,
    },
    /// A protocol run ended without the deciding party producing an
    /// output (message limit or bit budget hit too early).
    ProtocolIncomplete,
    /// A bit-length computation overflowed `usize` — the requested
    /// encoding is too large to account for honestly.
    BitOverflow {
        /// Left multiplicand.
        left: usize,
        /// Right multiplicand.
        right: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::BadEncoding { reason } => write!(f, "bad encoding: {reason}"),
            CommError::GroundSetMismatch { alice, bob } => {
                write!(
                    f,
                    "partitions must share a ground set (Alice has {alice}, Bob has {bob})"
                )
            }
            CommError::InvalidGadget { reason } => write!(f, "invalid gadget graph: {reason}"),
            CommError::ProtocolIncomplete => {
                write!(
                    f,
                    "protocol ended before the deciding party produced an output"
                )
            }
            CommError::BitOverflow { left, right } => {
                write!(
                    f,
                    "bit-length computation overflowed usize: {left} * {right}"
                )
            }
        }
    }
}

impl Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CommError::GroundSetMismatch { alice: 3, bob: 4 }
            .to_string()
            .contains("ground set"));
        assert!(CommError::ProtocolIncomplete.to_string().contains("output"));
        assert_eq!(
            CommError::BadEncoding { reason: "x".into() }.to_string(),
            "bad encoding: x"
        );
        assert!(CommError::BitOverflow {
            left: usize::MAX,
            right: 2
        }
        .to_string()
        .contains("overflowed"));
    }
}
