//! Communication lower-bound tools: log-rank and fooling sets.
//!
//! Lemma 1.28 of Kushilevitz–Nisan (used at Corollaries 2.4 and 4.2):
//! the deterministic communication complexity of `f` is at least
//! `log₂ rank(M_f)`. Applied to `M_n` (rank `B_n`, Theorem 2.3) this
//! gives `D(Partition) ≥ log₂ B_n = Θ(n log n)`, and to `E_n`
//! (rank `(n−1)!!`, Lemma 4.1) it gives the same for `TwoPartition`.

use bcc_linalg::Matrix;
use bcc_partitions::matrices::JoinMatrix;

/// The log-rank lower bound `log₂ rank(M)` on deterministic 2-party
/// communication, computed exactly over GF(2⁶¹−1).
///
/// Since GF(p) rank lower-bounds rational rank... more precisely
/// `rank_GF(p) ≤ rank_ℚ`, the returned value is a *valid* (possibly
/// slightly weaker) communication lower bound; when the matrix has
/// full GF(p) rank the bound coincides with the rational one.
pub fn log_rank_bound(m: &Matrix) -> f64 {
    let r = m.rank();
    if r == 0 {
        0.0
    } else {
        (r as f64).log2()
    }
}

/// The log-rank bound together with the rank itself and whether it is
/// full — the certificate shape used by the Theorem 4.4 pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankCertificate {
    /// The matrix dimension.
    pub dim: usize,
    /// The exact rank over GF(2⁶¹−1).
    pub rank: usize,
    /// `log₂ rank` — the communication lower bound in bits.
    pub comm_lower_bound_bits: f64,
    /// Whether the matrix has full rank (certifying the paper's
    /// theorem exactly on this instance size).
    pub full_rank: bool,
}

/// Certifies the rank of a join matrix (`M_n` or `E_n`).
pub fn certify_rank(jm: &JoinMatrix) -> RankCertificate {
    let rank = jm.matrix.rank();
    RankCertificate {
        dim: jm.dim(),
        rank,
        comm_lower_bound_bits: if rank == 0 { 0.0 } else { (rank as f64).log2() },
        full_rank: rank == jm.dim(),
    }
}

/// Greedily builds a fooling set for the 1-entries of a 0/1 matrix:
/// a set of cells `(r_i, c_i)` with `M(r_i, c_i) = 1` such that for
/// every pair `i ≠ j`, `M(r_i, c_j) = 0` or `M(r_j, c_i) = 0`. A
/// fooling set of size `s` proves `D(f) ≥ log₂ s`.
///
/// Greedy is a heuristic: it returns *a* fooling set (certifying its
/// size), not the largest one.
pub fn greedy_fooling_set(m: &Matrix) -> Vec<(usize, usize)> {
    // Prefer cells on sparse rows/columns: dense rows (like the
    // trivial partition's all-ones row in M_n) are maximally
    // incompatible and would block everything if chosen first.
    let row_ones: Vec<usize> = (0..m.num_rows())
        .map(|r| {
            (0..m.num_cols())
                .filter(|&c| !m.get(r, c).is_zero())
                .count()
        })
        .collect();
    let col_ones: Vec<usize> = (0..m.num_cols())
        .map(|c| {
            (0..m.num_rows())
                .filter(|&r| !m.get(r, c).is_zero())
                .count()
        })
        .collect();
    let mut candidates: Vec<(usize, usize)> = (0..m.num_rows())
        .flat_map(|r| (0..m.num_cols()).map(move |c| (r, c)))
        .filter(|&(r, c)| !m.get(r, c).is_zero())
        .collect();
    candidates.sort_by_key(|&(r, c)| row_ones[r] + col_ones[c]);
    let mut chosen: Vec<(usize, usize)> = Vec::new();
    let mut used_rows = vec![false; m.num_rows()];
    for (r, c) in candidates {
        if used_rows[r] {
            continue; // one cell per row keeps the scan near-linear
        }
        let compatible = chosen
            .iter()
            .all(|&(r2, c2)| m.get(r, c2).is_zero() || m.get(r2, c).is_zero());
        if compatible {
            chosen.push((r, c));
            used_rows[r] = true;
        }
    }
    chosen
}

/// Verifies that `cells` is a valid fooling set for the 1-entries of
/// `m`.
pub fn is_fooling_set(m: &Matrix, cells: &[(usize, usize)]) -> bool {
    for &(r, c) in cells {
        if m.get(r, c).is_zero() {
            return false;
        }
    }
    for (i, &(r1, c1)) in cells.iter().enumerate() {
        for &(r2, c2) in &cells[i + 1..] {
            if !m.get(r1, c2).is_zero() && !m.get(r2, c1).is_zero() {
                return false;
            }
        }
    }
    true
}

/// The **exact** deterministic communication complexity `D(f)` of a
/// tiny 0/1 matrix, by exhaustive protocol-tree search with
/// memoization over (row-set, column-set) rectangles.
///
/// A protocol tree node is a rectangle; one party splits its side into
/// two blocks at cost one bit; leaves must be monochromatic. The
/// recursion
///
/// ```text
/// D(R) = 0                                   if R is monochromatic
/// D(R) = 1 + min over nontrivial row/column bipartitions (S, S̄)
///            of max(D(S-side), D(S̄-side))
/// ```
///
/// is exponential, so this is gated to matrices with at most 8 rows
/// and 8 columns — enough for `M_3` (5×5), `E_4` (3×3), identity/EQ
/// matrices, and the sanity checks `log₂ rank(f) ≤ D(f) ≤
/// ⌈log₂ rows⌉ + 1` the paper's Corollaries lean on.
///
/// # Panics
///
/// Panics if the matrix exceeds 8 rows or 8 columns.
pub fn exact_deterministic_cc(m: &Matrix) -> usize {
    let (rows, cols) = (m.num_rows(), m.num_cols());
    assert!(rows >= 1 && cols >= 1, "empty matrix");
    assert!(
        rows <= 8 && cols <= 8,
        "exact D(f) is gated to 8x8 matrices"
    );
    let full_r: u16 = (1 << rows) - 1;
    let full_c: u16 = (1 << cols) - 1;
    let mut memo: std::collections::BTreeMap<(u16, u16), usize> = std::collections::BTreeMap::new();

    fn monochromatic(m: &Matrix, rmask: u16, cmask: u16) -> bool {
        let mut seen: Option<bool> = None;
        for r in 0..m.num_rows() {
            if rmask >> r & 1 == 0 {
                continue;
            }
            for c in 0..m.num_cols() {
                if cmask >> c & 1 == 0 {
                    continue;
                }
                let v = !m.get(r, c).is_zero();
                match seen {
                    None => seen = Some(v),
                    Some(prev) if prev != v => return false,
                    _ => {}
                }
            }
        }
        true
    }

    /// Enumerate the sub-masks of `mask` that are nontrivial
    /// bipartition halves, counting each unordered split once (by
    /// requiring the half to contain the lowest set bit).
    fn halves(mask: u16) -> Vec<u16> {
        let low = mask & mask.wrapping_neg();
        let mut out = Vec::new();
        // Iterate sub-masks of mask containing `low`.
        let rest = mask ^ low;
        let mut sub = rest;
        loop {
            let half = sub | low;
            if half != mask {
                out.push(half);
            }
            if sub == 0 {
                break;
            }
            sub = (sub - 1) & rest;
        }
        out
    }

    fn solve(
        m: &Matrix,
        rmask: u16,
        cmask: u16,
        memo: &mut std::collections::BTreeMap<(u16, u16), usize>,
    ) -> usize {
        if let Some(&v) = memo.get(&(rmask, cmask)) {
            return v;
        }
        if monochromatic(m, rmask, cmask) {
            memo.insert((rmask, cmask), 0);
            return 0;
        }
        let mut best = usize::MAX;
        for half in halves(rmask) {
            let a = solve(m, half, cmask, memo);
            let b = solve(m, rmask ^ half, cmask, memo);
            best = best.min(1 + a.max(b));
        }
        for half in halves(cmask) {
            let a = solve(m, rmask, half, memo);
            let b = solve(m, rmask, cmask ^ half, memo);
            best = best.min(1 + a.max(b));
        }
        memo.insert((rmask, cmask), best);
        best
    }

    solve(m, full_r, full_c, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_linalg::GfP;
    use bcc_partitions::matrices::{partition_join_matrix, two_partition_matrix};
    use bcc_partitions::numbers::{bell_number, num_matching_partitions};

    #[test]
    fn identity_log_rank() {
        let id = Matrix::identity(8);
        assert_eq!(log_rank_bound(&id), 3.0);
        assert_eq!(log_rank_bound(&Matrix::zeros(3, 3)), 0.0);
    }

    /// Corollary 2.4 in miniature: D(Partition) ≥ log2 B_n.
    #[test]
    fn partition_rank_certificate() {
        for n in 1..=5 {
            let cert = certify_rank(&partition_join_matrix(n));
            assert!(cert.full_rank, "M_{n} full rank");
            assert_eq!(cert.dim as u128, bell_number(n));
            assert!((cert.comm_lower_bound_bits - (cert.dim as f64).log2()).abs() < 1e-12);
        }
    }

    /// Corollary 4.2 in miniature: D(TwoPartition) ≥ log2 (n−1)!!.
    #[test]
    fn two_partition_rank_certificate() {
        for n in [2usize, 4, 6] {
            let cert = certify_rank(&two_partition_matrix(n));
            assert!(cert.full_rank, "E_{n} full rank");
            assert_eq!(cert.dim as u128, num_matching_partitions(n));
        }
    }

    #[test]
    fn fooling_set_on_identity_is_diagonal() {
        let id = Matrix::identity(6);
        let fs = greedy_fooling_set(&id);
        assert_eq!(fs.len(), 6);
        assert!(is_fooling_set(&id, &fs));
    }

    #[test]
    fn fooling_set_on_all_ones_is_singleton() {
        let ones = Matrix::from_fn(4, 4, |_, _| GfP::ONE);
        let fs = greedy_fooling_set(&ones);
        assert_eq!(fs.len(), 1);
        assert!(is_fooling_set(&ones, &fs));
    }

    #[test]
    fn fooling_set_on_join_matrix_is_nontrivial() {
        let jm = partition_join_matrix(4);
        let fs = greedy_fooling_set(&jm.matrix);
        assert!(is_fooling_set(&jm.matrix, &fs));
        // The diagonal-complement structure of M_n admits a large
        // fooling set; greedy should find more than a constant.
        assert!(fs.len() >= 4, "found only {}", fs.len());
    }

    #[test]
    fn exact_cc_identity() {
        // EQ on a k-element domain: D = ceil(log2 k) + 1.
        assert_eq!(exact_deterministic_cc(&Matrix::identity(2)), 2);
        assert_eq!(exact_deterministic_cc(&Matrix::identity(4)), 3);
        assert_eq!(exact_deterministic_cc(&Matrix::identity(5)), 4);
        assert_eq!(exact_deterministic_cc(&Matrix::identity(8)), 4);
    }

    #[test]
    fn exact_cc_constant_and_row() {
        let ones = Matrix::from_fn(4, 4, |_, _| GfP::ONE);
        assert_eq!(exact_deterministic_cc(&ones), 0);
        // A single splitting bit suffices when rows are two blocks.
        let half = Matrix::from_fn(4, 3, |r, _| if r < 2 { GfP::ONE } else { GfP::ZERO });
        assert_eq!(exact_deterministic_cc(&half), 1);
    }

    #[test]
    fn exact_cc_dominates_log_rank() {
        // D(f) >= log2 rank(f) — Lemma 1.28 of Kushilevitz–Nisan,
        // checked exactly on the small Partition matrices.
        for jm in [partition_join_matrix(3), two_partition_matrix(4)] {
            let d = exact_deterministic_cc(&jm.matrix);
            let lb = log_rank_bound(&jm.matrix);
            assert!(d as f64 + 1e-9 >= lb, "D = {d} below log-rank {lb}");
            // And it is achievable within the trivial upper bound
            // ceil(log2 rows) + 1.
            let ub = (jm.dim() as f64).log2().ceil() as usize + 1;
            assert!(d <= ub, "D = {d} above trivial {ub}");
        }
    }

    #[test]
    fn exact_cc_two_partition_4() {
        // E_4 is the 3×3 matrix of perfect matchings of [4]:
        // join of two distinct matchings is trivial, of equal ones is
        // not — i.e. E_4 = J - I, whose exact complexity is 3.
        let jm = two_partition_matrix(4);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(jm.matrix.get(i, j).is_zero(), i == j);
            }
        }
        assert_eq!(exact_deterministic_cc(&jm.matrix), 3);
    }

    #[test]
    #[should_panic(expected = "gated to 8x8")]
    fn exact_cc_rejects_large() {
        exact_deterministic_cc(&Matrix::identity(9));
    }

    #[test]
    fn invalid_fooling_set_rejected() {
        let id = Matrix::identity(3);
        assert!(!is_fooling_set(&id, &[(0, 1)]));
        let ones = Matrix::from_fn(2, 2, |_, _| GfP::ONE);
        assert!(!is_fooling_set(&ones, &[(0, 0), (1, 1)]));
    }
}
