//! The Section 4.3 simulation: Alice and Bob jointly execute a KT-1
//! `BCC(1)` algorithm on `G(P_A, P_B)` by exchanging one `{0,1,⊥}`
//! character per hosted vertex per round.
//!
//! Alice hosts the vertices in `A ∪ L` (whose incident edges depend
//! only on `P_A` and the shared `(ℓ_i, r_i)` matching); Bob hosts
//! `B ∪ R`. Both parties know all IDs and therefore the initial
//! knowledge of every hosted vertex. Each simulated round costs
//! exactly one character per vertex in each direction — `O(n)` bits —
//! so an `r`-round `BCC(1)` algorithm yields an `O(r·n)`-bit 2-party
//! protocol. Chained with Corollaries 2.4/4.2 this is Theorem 4.4:
//! `r = Ω(log n)`.

use crate::reduction::{alice_edges, bob_edges, shared_edges, Gadget};
use bcc_model::{
    Algorithm, Decision, Inbox, InitialKnowledge, KnowledgeMode, Message, NodeProgram, Symbol,
};
use bcc_partitions::SetPartition;

/// The outcome of a two-party simulation.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Simulated `BCC(1)` rounds.
    pub rounds: usize,
    /// Characters exchanged between Alice and Bob (2·N per round,
    /// N = gadget vertices).
    pub characters_exchanged: usize,
    /// Bits exchanged, encoding each `{0,1,⊥}` character in 2 bits.
    pub bits_exchanged: usize,
    /// Per-vertex decisions, indexed by vertex ID.
    pub decisions: Vec<Decision>,
    /// Per-vertex component labels.
    pub component_labels: Vec<Option<u64>>,
}

impl SimulationReport {
    /// The system decision (YES iff all vertices vote YES).
    pub fn system_decision(&self) -> Decision {
        if self.decisions.iter().all(|&d| d == Decision::Yes) {
            Decision::Yes
        } else {
            Decision::No
        }
    }
}

/// Builds the initial knowledge of vertex `v` from the edges a party
/// knows (its own plus the shared matching).
fn knowledge_for(
    v: usize,
    num_vertices: usize,
    known_edges: &[(usize, usize)],
    coin_seed: u64,
) -> InitialKnowledge {
    let mut neighbor_ids: Vec<u64> = known_edges
        .iter()
        .filter_map(|&(a, b)| {
            if a == v {
                Some(b as u64)
            } else if b == v {
                Some(a as u64)
            } else {
                None
            }
        })
        .collect();
    neighbor_ids.sort_unstable();
    neighbor_ids.dedup();
    let port_labels: Vec<u64> = (0..num_vertices as u64)
        .filter(|&w| w != v as u64)
        .collect();
    InitialKnowledge {
        id: v as u64,
        n: num_vertices,
        bandwidth: 1,
        mode: KnowledgeMode::Kt1,
        port_labels,
        input_port_labels: neighbor_ids,
        all_ids: Some((0..num_vertices as u64).collect()),
        coin_seed,
    }
}

/// Simulates `algorithm` on `G(P_A, P_B)` via the two-party protocol.
///
/// Each party spawns and drives only its hosted vertices from
/// knowledge derivable from its own input; per round the parties
/// exchange their hosted vertices' broadcast characters (plus one
/// done-flag bit each way). The result is *identical* to running the
/// algorithm directly on the gadget instance (see the tests), at a
/// communication cost of `2·N` characters per round.
///
/// # Panics
///
/// Panics if ground sets differ or the gadget/partition combination is
/// invalid.
pub fn simulate_two_party(
    gadget: Gadget,
    algorithm: &dyn Algorithm,
    pa: &SetPartition,
    pb: &SetPartition,
    coin_seed: u64,
    max_rounds: usize,
) -> SimulationReport {
    assert_eq!(pa.ground_size(), pb.ground_size(), "ground sets differ");
    let n = pa.ground_size();
    let num_vertices = gadget.num_vertices(n);
    let alice_range = gadget.alice_vertices(n);

    // Alice's knowledge: her edges + shared; Bob's likewise.
    let mut alice_known = shared_edges(gadget, n);
    alice_known.extend(alice_edges(gadget, pa));
    let mut bob_known = shared_edges(gadget, n);
    bob_known.extend(bob_edges(gadget, pb));

    let mut programs: Vec<Box<dyn NodeProgram>> = (0..num_vertices)
        .map(|v| {
            let known = if alice_range.contains(&v) {
                &alice_known
            } else {
                &bob_known
            };
            algorithm.spawn(knowledge_for(v, num_vertices, known, coin_seed))
        })
        .collect();

    let mut characters = 0usize;
    let mut flag_bits = 0usize;
    let mut rounds = 0usize;
    while rounds < max_rounds {
        if programs.iter().all(|p| p.is_done()) {
            break;
        }
        // Each party computes its hosted vertices' broadcasts, then the
        // parties exchange the two character vectors.
        let broadcasts: Vec<Symbol> = programs
            .iter_mut()
            .map(|p| p.broadcast(rounds).normalized(1).symbol())
            .collect();
        // Characters crossing the Alice/Bob cut: every character is
        // needed by the other side, so each direction carries one
        // character per hosted vertex. Plus one done-flag bit per side.
        characters = characters.saturating_add(num_vertices);
        flag_bits = flag_bits.saturating_add(2);
        for (v, program) in programs.iter_mut().enumerate() {
            let entries: Vec<(u64, Message)> = (0..num_vertices)
                .filter(|&w| w != v)
                .map(|w| (w as u64, Message::single(broadcasts[w])))
                .collect();
            program.receive(rounds, &Inbox::new(entries));
        }
        rounds = rounds.saturating_add(1);
    }

    SimulationReport {
        rounds,
        characters_exchanged: characters,
        bits_exchanged: characters.saturating_mul(2).saturating_add(flag_bits),
        decisions: programs.iter().map(|p| p.decide()).collect(),
        component_labels: programs.iter().map(|p| p.component_label()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduction::gadget_graph;
    use bcc_algorithms::{NeighborIdBroadcast, Problem};
    use bcc_model::{Instance, SimConfig};
    use bcc_partitions::enumerate::matching_partitions;

    #[test]
    fn simulation_matches_direct_execution() {
        let n = 4;
        let parts: Vec<SetPartition> = matching_partitions(n).collect();
        let algo = NeighborIdBroadcast::new(Problem::MultiCycle);
        for pa in &parts {
            for pb in &parts {
                let report = simulate_two_party(Gadget::TwoRegular, &algo, pa, pb, 0, 10_000);
                // Direct run on the full gadget instance.
                let g = gadget_graph(Gadget::TwoRegular, pa, pb).unwrap();
                let inst = Instance::new_kt1(g).unwrap();
                let direct = SimConfig::bcc1(10_000).run(&inst, &algo, 0);
                assert_eq!(
                    report.system_decision(),
                    direct.system_decision(),
                    "PA={pa} PB={pb}"
                );
                assert_eq!(report.decisions, direct.decisions());
                assert_eq!(report.rounds, direct.stats().rounds);
            }
        }
    }

    #[test]
    fn decision_tracks_join_triviality() {
        let n = 6;
        let parts: Vec<SetPartition> = matching_partitions(n).collect();
        let algo = NeighborIdBroadcast::new(Problem::MultiCycle);
        for pa in parts.iter().take(5) {
            for pb in parts.iter().take(5) {
                let report = simulate_two_party(Gadget::TwoRegular, &algo, pa, pb, 0, 10_000);
                let expect = if pa.join(pb).is_trivial() {
                    Decision::Yes
                } else {
                    Decision::No
                };
                assert_eq!(report.system_decision(), expect, "PA={pa} PB={pb}");
            }
        }
    }

    #[test]
    fn communication_cost_is_linear_per_round() {
        let n = 6;
        let pa = matching_partitions(n).next().unwrap();
        let report = simulate_two_party(
            Gadget::TwoRegular,
            &NeighborIdBroadcast::new(Problem::MultiCycle),
            &pa,
            &pa,
            0,
            10_000,
        );
        assert_eq!(report.characters_exchanged, report.rounds * 2 * n);
        assert_eq!(
            report.bits_exchanged,
            report.rounds * (4 * n + 2),
            "2 bits per character + 2 flag bits per round"
        );
    }

    #[test]
    fn general_gadget_simulation() {
        let pa = SetPartition::from_blocks(3, &[vec![0, 1], vec![2]]).unwrap();
        let pb = SetPartition::from_blocks(3, &[vec![0], vec![1, 2]]).unwrap();
        let algo = NeighborIdBroadcast::new(Problem::Connectivity);
        let report = simulate_two_party(Gadget::General, &algo, &pa, &pb, 0, 10_000);
        // Join is trivial → gadget connected → YES.
        assert!(pa.join(&pb).is_trivial());
        assert_eq!(report.system_decision(), Decision::Yes);
        let g = gadget_graph(Gadget::General, &pa, &pb).unwrap();
        let direct = SimConfig::bcc1(10_000).run(&Instance::new_kt1(g).unwrap(), &algo, 0);
        assert_eq!(report.decisions, direct.decisions());
    }
}
