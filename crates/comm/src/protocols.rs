//! Concrete protocols for `Partition` and `PartitionComp`.
//!
//! The paper's upper bound (Section 4): "Alice sends all the connected
//! components induced by E_A to Bob" — for the `Partition` problem
//! Alice's components *are* her partition, so the trivial protocol
//! encodes `P_A` in `n·⌈log₂ n⌉` bits, Bob computes the join, and a
//! short reply completes the exchange. Its cost is `O(n log n)` bits —
//! matching the Ω(n log n) lower bound of Corollary 2.4, so the
//! 2-party complexity of `Partition` is settled up to constants.

use crate::driver::Party;
use crate::error::CommError;
use bcc_model::codec::{bits_needed, bits_to_u64, u64_to_bits};
use bcc_partitions::SetPartition;

/// Encodes a partition as its RGS, `⌈log₂ n⌉` bits per element.
pub fn encode_partition(p: &SetPartition) -> Vec<bool> {
    let n = p.ground_size();
    let w = bits_needed(n.max(2));
    p.rgs()
        .iter()
        .flat_map(|&b| u64_to_bits(b as u64, w))
        .collect()
}

/// Decodes a partition encoded by [`encode_partition`].
///
/// # Errors
///
/// Returns [`CommError::BadEncoding`] if the bit string has the wrong
/// length or does not decode to a valid restricted-growth string.
pub fn decode_partition(n: usize, bits: &[bool]) -> Result<SetPartition, CommError> {
    let w = bits_needed(n.max(2));
    let expected = n
        .checked_mul(w)
        .ok_or(CommError::BitOverflow { left: n, right: w })?;
    if bits.len() != expected {
        return Err(CommError::BadEncoding {
            reason: format!(
                "partition encoding for ground size {n} needs {expected} bits, got {}",
                bits.len()
            ),
        });
    }
    let rgs: Vec<usize> = bits
        .chunks(w)
        .map(|chunk| bits_to_u64(chunk) as usize)
        .collect();
    SetPartition::from_rgs(rgs).map_err(|e| CommError::BadEncoding {
        reason: e.to_string(),
    })
}

/// Bits of the trivial protocol's first message for ground size `n`.
pub fn trivial_message_bits(n: usize) -> usize {
    n.saturating_mul(bits_needed(n.max(2)))
}

/// The decision-`Partition` protocol: Alice sends `P_A` (RGS-encoded);
/// Bob replies one bit: is `P_A ∨ P_B` trivial?
#[derive(Debug)]
pub struct TrivialJoinAlice {
    input: SetPartition,
    answer: Option<bool>,
}

impl TrivialJoinAlice {
    /// Alice with input `P_A`.
    pub fn new(input: SetPartition) -> Self {
        TrivialJoinAlice {
            input,
            answer: None,
        }
    }
}

impl Party<bool> for TrivialJoinAlice {
    fn send(&mut self) -> Vec<bool> {
        encode_partition(&self.input)
    }

    fn receive(&mut self, bits: &[bool]) {
        if let Some(&b) = bits.first() {
            self.answer = Some(b);
        }
    }

    fn output(&self) -> Option<bool> {
        self.answer
    }
}

/// Bob's side of the decision protocol.
#[derive(Debug)]
pub struct TrivialJoinBob {
    input: SetPartition,
    answer: Option<bool>,
}

impl TrivialJoinBob {
    /// Bob with input `P_B`.
    pub fn new(input: SetPartition) -> Self {
        TrivialJoinBob {
            input,
            answer: None,
        }
    }
}

impl Party<bool> for TrivialJoinBob {
    fn send(&mut self) -> Vec<bool> {
        match self.answer {
            Some(b) => vec![b],
            None => vec![],
        }
    }

    fn receive(&mut self, bits: &[bool]) {
        let n = self.input.ground_size();
        // A malformed message leaves Bob undecided rather than
        // crashing him; the driver reports the missing output.
        if bits.len() == trivial_message_bits(n) {
            if let Ok(pa) = decode_partition(n, bits) {
                self.answer = Some(pa.join(&self.input).is_trivial());
            }
        }
    }

    fn output(&self) -> Option<bool> {
        self.answer
    }
}

/// The `PartitionComp` protocol (Theorem 4.5's object): Alice sends
/// `P_A`; Bob computes and replies with the join; both output it.
/// Cost `2·n·⌈log₂ n⌉` bits.
#[derive(Debug)]
pub struct JoinCompAlice {
    input: SetPartition,
    join: Option<SetPartition>,
}

impl JoinCompAlice {
    /// Alice with input `P_A`.
    pub fn new(input: SetPartition) -> Self {
        JoinCompAlice { input, join: None }
    }
}

impl Party<SetPartition> for JoinCompAlice {
    fn send(&mut self) -> Vec<bool> {
        encode_partition(&self.input)
    }

    fn receive(&mut self, bits: &[bool]) {
        let n = self.input.ground_size();
        if bits.len() == trivial_message_bits(n) {
            self.join = decode_partition(n, bits).ok();
        }
    }

    fn output(&self) -> Option<SetPartition> {
        self.join.clone()
    }
}

/// Bob's side of `PartitionComp`.
#[derive(Debug)]
pub struct JoinCompBob {
    input: SetPartition,
    join: Option<SetPartition>,
}

impl JoinCompBob {
    /// Bob with input `P_B`.
    pub fn new(input: SetPartition) -> Self {
        JoinCompBob { input, join: None }
    }
}

impl Party<SetPartition> for JoinCompBob {
    fn send(&mut self) -> Vec<bool> {
        match &self.join {
            Some(j) => encode_partition(j),
            None => vec![],
        }
    }

    fn receive(&mut self, bits: &[bool]) {
        let n = self.input.ground_size();
        if bits.len() == trivial_message_bits(n) {
            if let Ok(pa) = decode_partition(n, bits) {
                self.join = Some(pa.join(&self.input));
            }
        }
    }

    fn output(&self) -> Option<SetPartition> {
        self.join.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_protocol, DriverOpts};
    use bcc_partitions::enumerate::all_partitions;

    #[test]
    fn encoding_roundtrip() {
        for p in all_partitions(6) {
            let bits = encode_partition(&p);
            assert_eq!(bits.len(), trivial_message_bits(6));
            assert_eq!(decode_partition(6, &bits).unwrap(), p);
        }
    }

    #[test]
    fn decision_protocol_correct_on_all_pairs() {
        let n = 4;
        for pa in all_partitions(n) {
            for pb in all_partitions(n) {
                let expect = pa.join(&pb).is_trivial();
                let mut alice = TrivialJoinAlice::new(pa.clone());
                let mut bob = TrivialJoinBob::new(pb.clone());
                let run = run_protocol(&mut alice, &mut bob, &DriverOpts::new(10));
                assert_eq!(run.alice_output, Some(expect), "PA={pa} PB={pb}");
                assert_eq!(run.bob_output, Some(expect));
                assert_eq!(run.bits_exchanged, trivial_message_bits(n) + 1);
            }
        }
    }

    #[test]
    fn comp_protocol_computes_join() {
        let n = 5;
        let pairs = [
            (
                vec![vec![0, 1], vec![2, 3], vec![4]],
                vec![vec![0, 1, 3], vec![2], vec![4]],
            ),
            (
                vec![vec![0], vec![1], vec![2], vec![3], vec![4]],
                vec![vec![0, 1, 2, 3, 4]],
            ),
        ];
        for (ba, bb) in pairs {
            let pa = SetPartition::from_blocks(n, &ba).unwrap();
            let pb = SetPartition::from_blocks(n, &bb).unwrap();
            let mut alice = JoinCompAlice::new(pa.clone());
            let mut bob = JoinCompBob::new(pb.clone());
            let run = run_protocol(&mut alice, &mut bob, &DriverOpts::new(10));
            let expect = pa.join(&pb);
            assert_eq!(run.alice_output, Some(expect.clone()));
            assert_eq!(run.bob_output, Some(expect));
            assert_eq!(run.bits_exchanged, 2 * trivial_message_bits(n));
        }
    }

    #[test]
    fn budget_starves_the_protocol() {
        let pa = SetPartition::finest(6);
        let pb = SetPartition::trivial(6);
        let mut alice = JoinCompAlice::new(pa);
        let mut bob = JoinCompBob::new(pb);
        let run = run_protocol(&mut alice, &mut bob, &DriverOpts::new(10).bit_budget(5));
        assert!(run.bob_output.is_none());
        assert!(run.bits_exchanged <= 5);
    }
}
