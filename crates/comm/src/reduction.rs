//! The Section 4.2 gadget graphs `G(P_A, P_B)` (Figure 2) and the
//! executable Theorem 4.3.
//!
//! Vertex layout (0-indexed; the paper's IDs `i, n+i, 2n+i, 3n+i`):
//!
//! - **General gadget** (from `Partition`): `a_i = i`, `ℓ_i = n + i`,
//!   `r_i = 2n + i`, `b_i = 3n + i`. Edges: the matching
//!   `(ℓ_i, r_i)`; Alice attaches `a_k` to `ℓ_j` for every `j` in her
//!   `k`-th block (leftover `a_k` attach to `ℓ* = ℓ_0`); Bob mirrors
//!   on `B`–`R`.
//! - **2-regular gadget** (from `TwoPartition`): only `ℓ_i = i` and
//!   `r_i = n + i`; the matching `(ℓ_i, r_i)` plus an `L`-edge per
//!   Alice block `{i, j}` and an `R`-edge per Bob block. Every vertex
//!   has degree exactly 2, so the graph is a disjoint union of cycles,
//!   each of length ≥ 4 — a `MultiCycle` instance.
//!
//! **Theorem 4.3**: the partition induced on `L` (equivalently `R`) by
//! the connected components of `G(P_A, P_B)` is exactly `P_A ∨ P_B`.

use crate::error::CommError;
use bcc_graphs::connectivity::connected_components;
use bcc_graphs::Graph;
use bcc_partitions::SetPartition;

/// Which of the two Figure 2 constructions to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gadget {
    /// The 4n-vertex construction from `Partition`.
    General,
    /// The 2n-vertex 2-regular construction from `TwoPartition`.
    TwoRegular,
}

impl Gadget {
    /// Number of gadget vertices for ground size `n`.
    pub fn num_vertices(self, n: usize) -> usize {
        match self {
            Gadget::General => 4 * n,
            Gadget::TwoRegular => 2 * n,
        }
    }

    /// The vertex IDs hosted by Alice (the rest are Bob's).
    pub fn alice_vertices(self, n: usize) -> std::ops::Range<usize> {
        match self {
            Gadget::General => 0..2 * n, // A ∪ L
            Gadget::TwoRegular => 0..n,  // L
        }
    }
}

/// The shared (input-independent) edges: the `(ℓ_i, r_i)` matching.
pub fn shared_edges(gadget: Gadget, n: usize) -> Vec<(usize, usize)> {
    match gadget {
        Gadget::General => (0..n).map(|i| (n + i, 2 * n + i)).collect(),
        Gadget::TwoRegular => (0..n).map(|i| (i, n + i)).collect(),
    }
}

/// Alice's edges, a function of `P_A` only.
///
/// # Panics
///
/// Panics if (for [`Gadget::TwoRegular`]) `P_A` is not a
/// perfect-matching partition.
pub fn alice_edges(gadget: Gadget, pa: &SetPartition) -> Vec<(usize, usize)> {
    let n = pa.ground_size();
    match gadget {
        Gadget::General => {
            let mut edges = Vec::new();
            let blocks = pa.blocks();
            for (k, block) in blocks.iter().enumerate() {
                for &j in block {
                    edges.push((k, n + j));
                }
            }
            // Leftover a_k attach to ℓ* = ℓ_0.
            for k in blocks.len()..n {
                edges.push((k, n));
            }
            edges
        }
        Gadget::TwoRegular => {
            assert!(
                pa.is_perfect_matching(),
                "TwoRegular gadget requires a perfect-matching partition"
            );
            pa.blocks().iter().map(|b| (b[0], b[1])).collect()
        }
    }
}

/// Bob's edges, a function of `P_B` only (mirrored on `R`/`B`).
///
/// # Panics
///
/// Panics if (for [`Gadget::TwoRegular`]) `P_B` is not a
/// perfect-matching partition.
pub fn bob_edges(gadget: Gadget, pb: &SetPartition) -> Vec<(usize, usize)> {
    let n = pb.ground_size();
    match gadget {
        Gadget::General => {
            let mut edges = Vec::new();
            let blocks = pb.blocks();
            for (k, block) in blocks.iter().enumerate() {
                for &j in block {
                    edges.push((3 * n + k, 2 * n + j));
                }
            }
            for k in blocks.len()..n {
                edges.push((3 * n + k, 2 * n));
            }
            edges
        }
        Gadget::TwoRegular => {
            assert!(
                pb.is_perfect_matching(),
                "TwoRegular gadget requires a perfect-matching partition"
            );
            pb.blocks().iter().map(|b| (n + b[0], n + b[1])).collect()
        }
    }
}

/// Builds the full gadget graph `G(P_A, P_B)`.
///
/// # Errors
///
/// Returns [`CommError::GroundSetMismatch`] if the partitions live on
/// different ground sets, or [`CommError::InvalidGadget`] if the edge
/// list is rejected by the graph constructor.
///
/// # Panics
///
/// Panics if the 2-regular gadget is requested for non-matching
/// partitions (see [`alice_edges`] / [`bob_edges`]).
pub fn gadget_graph(
    gadget: Gadget,
    pa: &SetPartition,
    pb: &SetPartition,
) -> Result<Graph, CommError> {
    if pa.ground_size() != pb.ground_size() {
        return Err(CommError::GroundSetMismatch {
            alice: pa.ground_size(),
            bob: pb.ground_size(),
        });
    }
    let n = pa.ground_size();
    let mut edges = shared_edges(gadget, n);
    edges.extend(alice_edges(gadget, pa));
    edges.extend(bob_edges(gadget, pb));
    Graph::from_edges(gadget.num_vertices(n), edges).map_err(|e| CommError::InvalidGadget {
        reason: e.to_string(),
    })
}

/// The partition induced on `L` by the connected components of the
/// gadget graph — Theorem 4.3 says this equals `P_A ∨ P_B`.
pub fn induced_partition_on_l(gadget: Gadget, n: usize, g: &Graph) -> SetPartition {
    let comps = connected_components(g);
    let l_offset = match gadget {
        Gadget::General => n,
        Gadget::TwoRegular => 0,
    };
    let labels: Vec<usize> = (0..n).map(|i| comps.label[l_offset + i]).collect();
    SetPartition::from_assignment(&labels)
}

/// Executable Theorem 4.3: checks that the component partition on `L`
/// equals the join, and (as the corollary used by Theorem 4.4) that
/// the gadget is connected iff the join is trivial.
///
/// Returns `false` (theorem not verified) when no gadget graph exists
/// for the pair — e.g. mismatched ground sets.
pub fn verify_theorem_4_3(gadget: Gadget, pa: &SetPartition, pb: &SetPartition) -> bool {
    let Ok(g) = gadget_graph(gadget, pa, pb) else {
        return false;
    };
    let join = pa.join(pb);
    let induced = induced_partition_on_l(gadget, pa.ground_size(), &g);
    induced == join && g.is_connected() == join.is_trivial()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_graphs::cycles::cycle_structure;
    use bcc_partitions::enumerate::{all_partitions, matching_partitions};

    /// The paper's Figure 2 (left) example, 0-indexed:
    /// PA = (1,2,3)(4,5,6)(7,8), PB = (1,2,6)(3,4,7)(5,8).
    fn figure2_left() -> (SetPartition, SetPartition) {
        let pa = SetPartition::from_blocks(8, &[vec![0, 1, 2], vec![3, 4, 5], vec![6, 7]]).unwrap();
        let pb = SetPartition::from_blocks(8, &[vec![0, 1, 5], vec![2, 3, 6], vec![4, 7]]).unwrap();
        (pa, pb)
    }

    /// Figure 2 (right): PA = (1,2)(3,4)(5,6)(7,8),
    /// PB = (1,3)(2,4)(5,7)(6,8).
    fn figure2_right() -> (SetPartition, SetPartition) {
        let pa = SetPartition::from_blocks(8, &[vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]])
            .unwrap();
        let pb = SetPartition::from_blocks(8, &[vec![0, 2], vec![1, 3], vec![4, 6], vec![5, 7]])
            .unwrap();
        (pa, pb)
    }

    #[test]
    fn figure2_left_structure() {
        let (pa, pb) = figure2_left();
        assert!(verify_theorem_4_3(Gadget::General, &pa, &pb));
        // Join of the figure's partitions is the trivial partition
        // (1..8 all connect through the chain of blocks).
        assert!(pa.join(&pb).is_trivial());
        assert!(gadget_graph(Gadget::General, &pa, &pb)
            .unwrap()
            .is_connected());
    }

    #[test]
    fn figure2_right_structure() {
        let (pa, pb) = figure2_right();
        let g = gadget_graph(Gadget::TwoRegular, &pa, &pb).unwrap();
        // 2-regular: disjoint cycles, each of length >= 4.
        let s = cycle_structure(&g).expect("2-regular disjoint cycles");
        assert!(s.min_length() >= 4);
        // PA ∨ PB = (1,2,3,4)(5,6,7,8): two blocks → two cycles.
        assert_eq!(pa.join(&pb).num_blocks(), 2);
        assert_eq!(s.count(), 2);
        assert!(verify_theorem_4_3(Gadget::TwoRegular, &pa, &pb));
    }

    /// Theorem 4.3, exhaustively for n = 3 (25 pairs) and on the
    /// general gadget.
    #[test]
    fn theorem_4_3_exhaustive_small() {
        for pa in all_partitions(3) {
            for pb in all_partitions(3) {
                assert!(
                    verify_theorem_4_3(Gadget::General, &pa, &pb),
                    "PA={pa} PB={pb}"
                );
            }
        }
    }

    /// Theorem 4.3 on the 2-regular gadget, exhaustively for n = 4 and
    /// n = 6.
    #[test]
    fn theorem_4_3_two_regular_exhaustive() {
        for n in [4usize, 6] {
            let parts: Vec<SetPartition> = matching_partitions(n).collect();
            for pa in &parts {
                for pb in &parts {
                    assert!(
                        verify_theorem_4_3(Gadget::TwoRegular, pa, pb),
                        "PA={pa} PB={pb}"
                    );
                    // Cycle count = blocks of join; all cycles length >= 4.
                    let g = gadget_graph(Gadget::TwoRegular, pa, pb).unwrap();
                    let s = cycle_structure(&g).unwrap();
                    assert_eq!(s.count(), pa.join(pb).num_blocks());
                    assert!(s.min_length() >= 4);
                }
            }
        }
    }

    #[test]
    fn general_gadget_counts() {
        let (pa, pb) = figure2_left();
        let g = gadget_graph(Gadget::General, &pa, &pb).unwrap();
        assert_eq!(g.num_vertices(), 32);
        // n matching edges + n Alice edges (8 = 3+3+2 block members +
        // 5 leftover a's... blocks use 3 a's, leftover 5 attach to ℓ*)
        // + same for Bob: 8 + (8 + 5) + (8 + 5) = 34.
        assert_eq!(g.num_edges(), 8 + 13 + 13);
    }

    #[test]
    #[should_panic(expected = "perfect-matching")]
    fn two_regular_rejects_non_matchings() {
        let pa = SetPartition::trivial(4);
        alice_edges(Gadget::TwoRegular, &pa);
    }

    #[test]
    fn per_party_edges_compose() {
        let (pa, pb) = figure2_left();
        let mut edges = shared_edges(Gadget::General, 8);
        edges.extend(alice_edges(Gadget::General, &pa));
        edges.extend(bob_edges(Gadget::General, &pb));
        let g = Graph::from_edges(32, edges).unwrap();
        assert_eq!(g, gadget_graph(Gadget::General, &pa, &pb).unwrap());
    }

    #[test]
    fn mismatched_ground_sets_are_an_error() {
        let pa = SetPartition::trivial(3);
        let pb = SetPartition::trivial(4);
        assert_eq!(
            gadget_graph(Gadget::General, &pa, &pb),
            Err(CommError::GroundSetMismatch { alice: 3, bob: 4 })
        );
        assert!(!verify_theorem_4_3(Gadget::General, &pa, &pb));
    }

    #[test]
    fn alice_vertices_ranges() {
        assert_eq!(Gadget::General.alice_vertices(5), 0..10);
        assert_eq!(Gadget::TwoRegular.alice_vertices(5), 0..5);
        assert_eq!(Gadget::General.num_vertices(5), 20);
    }
}
