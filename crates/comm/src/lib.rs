//! Two-party communication complexity: the `Partition` problems, the
//! gadget reductions of Section 4.2, and the Alice/Bob simulation of
//! KT-1 `BCC(1)` algorithms of Section 4.3.
//!
//! The paper's KT-1 lower bounds flow through this pipeline:
//!
//! ```text
//!  Partition / TwoPartition            (rank(M_n) = B_n, rank(E_n) = (n−1)!!)
//!        │  gadget graph G(P_A, P_B)   (Section 4.2, Figure 2; Theorem 4.3)
//!        ▼
//!  vertex-partitioned 2-party Connectivity / MultiCycle
//!        │  round-by-round simulation  (Section 4.3: O(n) bits per round)
//!        ▼
//!  KT-1 BCC(1) Connectivity / MultiCycle   ⇒   Ω(log n) rounds (Theorem 4.4)
//! ```
//!
//! This crate implements every stage executably:
//!
//! - [`driver`]: a deterministic alternating-message protocol driver
//!   with exact bit accounting and transcript capture;
//! - [`protocols`]: the trivial `O(n log n)`-bit upper-bound protocols
//!   for `Partition` and `PartitionComp`, plus bit-budget-limited
//!   (ε-error) variants for the information experiments;
//! - [`bounds`]: the log-rank lower bound and a greedy fooling-set
//!   finder, applied to `M_n`/`E_n` from [`bcc_partitions::matrices`];
//! - [`reduction`]: the gadget graphs `G(P_A, P_B)` (general and
//!   2-regular variants) with executable Theorem 4.3;
//! - [`simulate`]: the Section 4.3 simulation — Alice hosts `A ∪ L`,
//!   Bob hosts `B ∪ R`, they exchange one `{0,1,⊥}` character per
//!   hosted vertex per round, and together reproduce exactly the
//!   behaviour of the direct `BCC(1)` execution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod driver;
mod error;
pub use error::CommError;
pub mod protocols;
pub mod randomized;
pub mod reduction;
pub mod simulate;
