//! A deterministic two-party protocol driver with exact bit
//! accounting.

/// Which party acts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Turn {
    /// Alice (sends on even turns).
    Alice,
    /// Bob (sends on odd turns).
    Bob,
}

/// One side of a two-party protocol, parameterized by the output type.
///
/// The driver alternates: Alice sends a (possibly empty) bit string,
/// Bob receives it, then Bob sends, and so on, until both parties have
/// produced an output or the message limit is reached.
pub trait Party<Out> {
    /// Produces the next message. Called only on this party's turn.
    fn send(&mut self) -> Vec<bool>;

    /// Receives the other party's message.
    fn receive(&mut self, bits: &[bool]);

    /// The party's output, once determined.
    fn output(&self) -> Option<Out>;
}

/// The record of a completed (or truncated) protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolRun<Out> {
    /// Alice's output (`None` if she never decided).
    pub alice_output: Option<Out>,
    /// Bob's output.
    pub bob_output: Option<Out>,
    /// Total bits exchanged (both directions).
    pub bits_exchanged: usize,
    /// The full transcript: `(sender, message)` in order. This is the
    /// `Π(P_A, P_B)` of the information-theoretic argument
    /// (Theorem 4.5).
    pub transcript: Vec<(Turn, Vec<bool>)>,
}

impl<Out> ProtocolRun<Out> {
    /// The transcript flattened to a bit string with 1-bit sender
    /// framing removed (messages are length-delimited by the protocol
    /// itself); used as a hashable transcript key.
    pub fn transcript_bits(&self) -> Vec<bool> {
        self.transcript
            .iter()
            .flat_map(|(_, m)| m.iter().copied())
            .collect()
    }

    /// Number of messages sent.
    pub fn num_messages(&self) -> usize {
        self.transcript.len()
    }
}

/// Runs a protocol to completion (both parties output) or until
/// `max_messages` messages have been exchanged.
pub fn run_protocol<Out: Clone>(
    alice: &mut dyn Party<Out>,
    bob: &mut dyn Party<Out>,
    max_messages: usize,
) -> ProtocolRun<Out> {
    let mut transcript = Vec::new();
    let mut bits = 0;
    let mut turn = Turn::Alice;
    for _ in 0..max_messages {
        if alice.output().is_some() && bob.output().is_some() {
            break;
        }
        let msg = match turn {
            Turn::Alice => alice.send(),
            Turn::Bob => bob.send(),
        };
        bits += msg.len();
        match turn {
            Turn::Alice => bob.receive(&msg),
            Turn::Bob => alice.receive(&msg),
        }
        transcript.push((turn, msg));
        turn = match turn {
            Turn::Alice => Turn::Bob,
            Turn::Bob => Turn::Alice,
        };
    }
    ProtocolRun {
        alice_output: alice.output(),
        bob_output: bob.output(),
        bits_exchanged: bits,
        transcript,
    }
}

/// Runs a protocol under a *bit budget*: once `budget` bits have been
/// exchanged, messages are truncated to fit and the run stops; parties
/// must then answer from whatever they have (their `output` may be
/// `None`, which callers score as an error). Models the ε-error
/// bounded-communication protocols of Theorem 4.5.
pub fn run_with_bit_budget<Out: Clone>(
    alice: &mut dyn Party<Out>,
    bob: &mut dyn Party<Out>,
    budget: usize,
    max_messages: usize,
) -> ProtocolRun<Out> {
    let mut transcript = Vec::new();
    let mut bits = 0;
    let mut turn = Turn::Alice;
    for _ in 0..max_messages {
        if alice.output().is_some() && bob.output().is_some() {
            break;
        }
        if bits >= budget {
            break;
        }
        let mut msg = match turn {
            Turn::Alice => alice.send(),
            Turn::Bob => bob.send(),
        };
        if bits + msg.len() > budget {
            msg.truncate(budget - bits);
        }
        bits += msg.len();
        match turn {
            Turn::Alice => bob.receive(&msg),
            Turn::Bob => alice.receive(&msg),
        }
        transcript.push((turn, msg));
        turn = match turn {
            Turn::Alice => Turn::Bob,
            Turn::Bob => Turn::Alice,
        };
    }
    ProtocolRun {
        alice_output: alice.output(),
        bob_output: bob.output(),
        bits_exchanged: bits,
        transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Alice sends her number bit by bit; Bob outputs the sum.
    struct SumAlice {
        bits: Vec<bool>,
        sent: usize,
        result: Option<u32>,
    }
    struct SumBob {
        own: u32,
        received: Vec<bool>,
        expected: usize,
    }

    impl Party<u32> for SumAlice {
        fn send(&mut self) -> Vec<bool> {
            let out = self.bits.clone();
            self.sent = out.len();
            out
        }
        fn receive(&mut self, bits: &[bool]) {
            // Bob sends back the 8-bit sum.
            let v = bits
                .iter()
                .enumerate()
                .fold(0u32, |a, (i, &b)| a | (u32::from(b)) << i);
            self.result = Some(v);
        }
        fn output(&self) -> Option<u32> {
            self.result
        }
    }

    impl Party<u32> for SumBob {
        fn send(&mut self) -> Vec<bool> {
            let a = self
                .received
                .iter()
                .enumerate()
                .fold(0u32, |acc, (i, &b)| acc | (u32::from(b)) << i);
            let sum = a + self.own;
            (0..8).map(|i| sum >> i & 1 == 1).collect()
        }
        fn receive(&mut self, bits: &[bool]) {
            self.received = bits.to_vec();
        }
        fn output(&self) -> Option<u32> {
            (self.received.len() >= self.expected).then(|| {
                let a = self
                    .received
                    .iter()
                    .enumerate()
                    .fold(0u32, |acc, (i, &b)| acc | (u32::from(b)) << i);
                a + self.own
            })
        }
    }

    #[test]
    fn two_message_sum_protocol() {
        let mut alice = SumAlice {
            bits: vec![true, false, true], // 5
            sent: 0,
            result: None,
        };
        let mut bob = SumBob {
            own: 10,
            received: Vec::new(),
            expected: 3,
        };
        let run = run_protocol(&mut alice, &mut bob, 10);
        assert_eq!(run.alice_output, Some(15));
        assert_eq!(run.bob_output, Some(15));
        assert_eq!(run.bits_exchanged, 3 + 8);
        assert_eq!(run.num_messages(), 2);
        assert_eq!(run.transcript[0].0, Turn::Alice);
        assert_eq!(run.transcript[1].0, Turn::Bob);
    }

    #[test]
    fn budget_truncates() {
        let mut alice = SumAlice {
            bits: vec![true; 10],
            sent: 0,
            result: None,
        };
        let mut bob = SumBob {
            own: 0,
            received: Vec::new(),
            expected: 10,
        };
        let run = run_with_bit_budget(&mut alice, &mut bob, 4, 10);
        assert_eq!(run.bits_exchanged, 4);
        assert_eq!(run.bob_output, None, "Bob cannot decode a truncated input");
    }

    #[test]
    fn transcript_bits_flatten() {
        let run = ProtocolRun::<u32> {
            alice_output: None,
            bob_output: None,
            bits_exchanged: 3,
            transcript: vec![(Turn::Alice, vec![true]), (Turn::Bob, vec![false, true])],
        };
        assert_eq!(run.transcript_bits(), vec![true, false, true]);
    }
}
