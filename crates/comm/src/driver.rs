//! A deterministic two-party protocol driver with exact bit
//! accounting.

use bcc_metrics::MetricScope;
use bcc_trace::{field, TraceBuf, TraceLevel, TraceScope};

/// Which party acts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Turn {
    /// Alice (sends on even turns).
    Alice,
    /// Bob (sends on odd turns).
    Bob,
}

impl Turn {
    /// Machine-readable speaker tag (`"alice"` / `"bob"`).
    pub fn tag(&self) -> &'static str {
        match self {
            Turn::Alice => "alice",
            Turn::Bob => "bob",
        }
    }
}

/// One side of a two-party protocol, parameterized by the output type.
///
/// The driver alternates: Alice sends a (possibly empty) bit string,
/// Bob receives it, then Bob sends, and so on, until both parties have
/// produced an output or the message limit is reached.
pub trait Party<Out> {
    /// Produces the next message. Called only on this party's turn.
    fn send(&mut self) -> Vec<bool>;

    /// Receives the other party's message.
    fn receive(&mut self, bits: &[bool]);

    /// The party's output, once determined.
    fn output(&self) -> Option<Out>;
}

/// The record of a completed (or truncated) protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolRun<Out> {
    /// Alice's output (`None` if she never decided).
    pub alice_output: Option<Out>,
    /// Bob's output.
    pub bob_output: Option<Out>,
    /// Total bits exchanged (both directions).
    pub bits_exchanged: usize,
    /// The full transcript: `(sender, message)` in order. This is the
    /// `Π(P_A, P_B)` of the information-theoretic argument
    /// (Theorem 4.5).
    pub transcript: Vec<(Turn, Vec<bool>)>,
}

impl<Out> ProtocolRun<Out> {
    /// The transcript flattened to a bit string with 1-bit sender
    /// framing removed (messages are length-delimited by the protocol
    /// itself); used as a hashable transcript key.
    pub fn transcript_bits(&self) -> Vec<bool> {
        self.transcript
            .iter()
            .flat_map(|(_, m)| m.iter().copied())
            .collect()
    }

    /// Number of messages sent.
    pub fn num_messages(&self) -> usize {
        self.transcript.len()
    }
}

/// Options for one protocol run — the single configuration surface
/// that folds what used to be a quartet of entry points
/// (`run_protocol` / `run_protocol_traced` / `run_with_bit_budget` /
/// `run_with_bit_budget_traced`) into [`run_protocol`].
#[derive(Debug, Clone)]
pub struct DriverOpts {
    max_messages: usize,
    budget: Option<usize>,
    trace: TraceScope,
    metrics: MetricScope,
}

impl DriverOpts {
    /// Unbounded-bits options with the given message limit, tracing
    /// and metrics off.
    pub fn new(max_messages: usize) -> Self {
        DriverOpts {
            max_messages,
            budget: None,
            trace: TraceScope::disabled(),
            metrics: MetricScope::disabled(),
        }
    }

    /// Caps the run at `budget` exchanged bits: once the budget is
    /// reached, messages are truncated to fit and the run stops;
    /// parties must then answer from whatever they have (their
    /// `output` may be `None`, which callers score as an error).
    /// Models the ε-error bounded-communication protocols of
    /// Theorem 4.5.
    #[must_use]
    pub fn bit_budget(mut self, budget: usize) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attaches a trace destination. Each run records a `protocol`
    /// span wrapping one `message` event per message with the
    /// speaker, its index, bit length, and the bit offset where it
    /// starts in the transcript (truncated messages carry
    /// `truncated = true`). Everything recorded is logical — message
    /// indices and bit positions, never timing — so equal inputs
    /// yield byte-identical traces, and the returned run is identical
    /// whether the scope records or not.
    #[must_use]
    pub fn trace(mut self, scope: TraceScope) -> Self {
        self.trace = scope;
        self
    }

    /// Attaches a metrics destination. Each run adds to the
    /// `comm.protocol_runs`, `comm.bits_exchanged`, and
    /// `comm.messages` counters at core level; at full level it also
    /// records a `comm.message_bits` histogram sample per message.
    /// Like tracing, only logical quantities are recorded — never
    /// timing — and the returned run is identical whether the scope
    /// records or not.
    #[must_use]
    pub fn metrics(mut self, scope: MetricScope) -> Self {
        self.metrics = scope;
        self
    }

    /// The message limit.
    pub fn max_messages(&self) -> usize {
        self.max_messages
    }

    /// The bit budget (`None` = unbounded).
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// The attached trace scope (disabled by default).
    pub fn trace_scope(&self) -> &TraceScope {
        &self.trace
    }

    /// The attached metrics scope (disabled by default).
    pub fn metrics_scope(&self) -> &MetricScope {
        &self.metrics
    }
}

/// Runs a protocol to completion (both parties output) or until the
/// limits in `opts` — message count, optional bit budget — are
/// reached.
pub fn run_protocol<Out: Clone>(
    alice: &mut dyn Party<Out>,
    bob: &mut dyn Party<Out>,
    opts: &DriverOpts,
) -> ProtocolRun<Out> {
    let run = if opts.trace.level() > TraceLevel::Off {
        opts.trace
            .with(|buf| run_core(alice, bob, opts.budget, opts.max_messages, buf))
    } else {
        run_core(
            alice,
            bob,
            opts.budget,
            opts.max_messages,
            &mut TraceBuf::disabled(),
        )
    };
    if opts.metrics.core_enabled() {
        // One lock for the whole run's worth of counters.
        opts.metrics.with(|b| {
            b.counter("comm.protocol_runs", 1);
            b.counter("comm.bits_exchanged", run.bits_exchanged as u64);
            b.counter("comm.messages", run.transcript.len() as u64);
            for (_, msg) in &run.transcript {
                b.full_observe("comm.message_bits", msg.len() as u64);
            }
        });
    }
    run
}

/// Legacy traced entry point.
#[deprecated(note = "use `run_protocol` with `DriverOpts::trace`")]
pub fn run_protocol_traced<Out: Clone>(
    alice: &mut dyn Party<Out>,
    bob: &mut dyn Party<Out>,
    max_messages: usize,
    trace: &mut TraceBuf,
) -> ProtocolRun<Out> {
    run_core(alice, bob, None, max_messages, trace)
}

/// Legacy bit-budget entry point.
#[deprecated(note = "use `run_protocol` with `DriverOpts::bit_budget`")]
pub fn run_with_bit_budget<Out: Clone>(
    alice: &mut dyn Party<Out>,
    bob: &mut dyn Party<Out>,
    budget: usize,
    max_messages: usize,
) -> ProtocolRun<Out> {
    run_core(
        alice,
        bob,
        Some(budget),
        max_messages,
        &mut TraceBuf::disabled(),
    )
}

/// Legacy traced bit-budget entry point.
#[deprecated(note = "use `run_protocol` with `DriverOpts::bit_budget` and `DriverOpts::trace`")]
pub fn run_with_bit_budget_traced<Out: Clone>(
    alice: &mut dyn Party<Out>,
    bob: &mut dyn Party<Out>,
    budget: usize,
    max_messages: usize,
    trace: &mut TraceBuf,
) -> ProtocolRun<Out> {
    run_core(alice, bob, Some(budget), max_messages, trace)
}

/// The single alternating-message loop behind both public entry
/// points (`budget: None` = unbounded).
fn run_core<Out: Clone>(
    alice: &mut dyn Party<Out>,
    bob: &mut dyn Party<Out>,
    budget: Option<usize>,
    max_messages: usize,
    trace: &mut TraceBuf,
) -> ProtocolRun<Out> {
    if trace.spans_enabled() {
        let mut fields = vec![field("max_messages", max_messages)];
        if let Some(b) = budget {
            fields.push(field("budget_bits", b));
        }
        trace.span_start("protocol", fields);
    }
    let mut transcript = Vec::new();
    let mut bits = 0;
    let mut turn = Turn::Alice;
    for _ in 0..max_messages {
        if alice.output().is_some() && bob.output().is_some() {
            break;
        }
        if budget.is_some_and(|b| bits >= b) {
            break;
        }
        let mut msg = match turn {
            Turn::Alice => alice.send(),
            Turn::Bob => bob.send(),
        };
        let truncated = budget.is_some_and(|b| bits.saturating_add(msg.len()) > b);
        if truncated {
            // `budget >= bits` here, or the loop would have broken.
            msg.truncate(budget.unwrap_or(0).saturating_sub(bits));
        }
        if trace.events_enabled() {
            let mut fields = vec![
                field("msg_index", transcript.len()),
                field("speaker", turn.tag()),
                field("bits", msg.len()),
                field("bit_offset", bits),
            ];
            if truncated {
                fields.push(field("truncated", true));
            }
            trace.event("message", fields);
        }
        // Canonical dotted name matches the `comm.bits_exchanged`
        // workload counter so the profiler can join by name.
        if trace.costs_enabled() {
            trace.counter("comm.bits_exchanged", msg.len() as u64);
        }
        bits = bits.saturating_add(msg.len());
        match turn {
            Turn::Alice => bob.receive(&msg),
            Turn::Bob => alice.receive(&msg),
        }
        transcript.push((turn, msg));
        turn = match turn {
            Turn::Alice => Turn::Bob,
            Turn::Bob => Turn::Alice,
        };
    }
    let run = ProtocolRun {
        alice_output: alice.output(),
        bob_output: bob.output(),
        bits_exchanged: bits,
        transcript,
    };
    if trace.spans_enabled() {
        trace.span_end(
            "protocol",
            vec![
                field("messages", run.transcript.len()),
                field("bits_exchanged", run.bits_exchanged),
                field("alice_decided", run.alice_output.is_some()),
                field("bob_decided", run.bob_output.is_some()),
            ],
        );
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Alice sends her number bit by bit; Bob outputs the sum.
    struct SumAlice {
        bits: Vec<bool>,
        sent: usize,
        result: Option<u32>,
    }
    struct SumBob {
        own: u32,
        received: Vec<bool>,
        expected: usize,
    }

    impl Party<u32> for SumAlice {
        fn send(&mut self) -> Vec<bool> {
            let out = self.bits.clone();
            self.sent = out.len();
            out
        }
        fn receive(&mut self, bits: &[bool]) {
            // Bob sends back the 8-bit sum.
            let v = bits
                .iter()
                .enumerate()
                .fold(0u32, |a, (i, &b)| a | (u32::from(b)) << i);
            self.result = Some(v);
        }
        fn output(&self) -> Option<u32> {
            self.result
        }
    }

    impl Party<u32> for SumBob {
        fn send(&mut self) -> Vec<bool> {
            let a = self
                .received
                .iter()
                .enumerate()
                .fold(0u32, |acc, (i, &b)| acc | (u32::from(b)) << i);
            let sum = a + self.own;
            (0..8).map(|i| sum >> i & 1 == 1).collect()
        }
        fn receive(&mut self, bits: &[bool]) {
            self.received = bits.to_vec();
        }
        fn output(&self) -> Option<u32> {
            (self.received.len() >= self.expected).then(|| {
                let a = self
                    .received
                    .iter()
                    .enumerate()
                    .fold(0u32, |acc, (i, &b)| acc | (u32::from(b)) << i);
                a + self.own
            })
        }
    }

    #[test]
    fn two_message_sum_protocol() {
        let mut alice = SumAlice {
            bits: vec![true, false, true], // 5
            sent: 0,
            result: None,
        };
        let mut bob = SumBob {
            own: 10,
            received: Vec::new(),
            expected: 3,
        };
        let run = run_protocol(&mut alice, &mut bob, &DriverOpts::new(10));
        assert_eq!(run.alice_output, Some(15));
        assert_eq!(run.bob_output, Some(15));
        assert_eq!(run.bits_exchanged, 3 + 8);
        assert_eq!(run.num_messages(), 2);
        assert_eq!(run.transcript[0].0, Turn::Alice);
        assert_eq!(run.transcript[1].0, Turn::Bob);
    }

    #[test]
    fn budget_truncates() {
        let mut alice = SumAlice {
            bits: vec![true; 10],
            sent: 0,
            result: None,
        };
        let mut bob = SumBob {
            own: 0,
            received: Vec::new(),
            expected: 10,
        };
        let run = run_protocol(&mut alice, &mut bob, &DriverOpts::new(10).bit_budget(4));
        assert_eq!(run.bits_exchanged, 4);
        assert_eq!(run.bob_output, None, "Bob cannot decode a truncated input");
    }

    #[test]
    fn traced_run_records_messages_and_matches_untraced() {
        use bcc_trace::{EventKind, FieldValue, TraceLevel};
        let build = || {
            (
                SumAlice {
                    bits: vec![true, false, true],
                    sent: 0,
                    result: None,
                },
                SumBob {
                    own: 10,
                    received: Vec::new(),
                    expected: 3,
                },
            )
        };
        let (mut alice, mut bob) = build();
        let plain = run_protocol(&mut alice, &mut bob, &DriverOpts::new(10));
        let (mut alice, mut bob) = build();
        let scope = TraceScope::new(TraceBuf::new(TraceLevel::Events, "u"));
        let traced = run_protocol(
            &mut alice,
            &mut bob,
            &DriverOpts::new(10).trace(scope.clone()),
        );
        assert_eq!(plain, traced);
        let events = scope.take().into_events();
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[0].name, "protocol");
        let msgs: Vec<_> = events.iter().filter(|e| e.name == "message").collect();
        assert_eq!(msgs.len(), 2);
        assert_eq!(
            msgs[0].field("speaker"),
            Some(&FieldValue::Str("alice".into()))
        );
        assert_eq!(msgs[0].field("bits"), Some(&FieldValue::UInt(3)));
        assert_eq!(msgs[0].field("bit_offset"), Some(&FieldValue::UInt(0)));
        assert_eq!(
            msgs[1].field("speaker"),
            Some(&FieldValue::Str("bob".into()))
        );
        assert_eq!(msgs[1].field("bit_offset"), Some(&FieldValue::UInt(3)));
        assert_eq!(msgs[1].path, "protocol");
        let end = events.last().unwrap();
        assert_eq!(end.kind, EventKind::SpanEnd);
        assert_eq!(end.field("bits_exchanged"), Some(&FieldValue::UInt(11)));
    }

    #[test]
    fn metered_run_matches_unmetered_and_counts_bits() {
        use bcc_metrics::{MetricsBuf, MetricsLevel};
        let build = || {
            (
                SumAlice {
                    bits: vec![true, false, true],
                    sent: 0,
                    result: None,
                },
                SumBob {
                    own: 10,
                    received: Vec::new(),
                    expected: 3,
                },
            )
        };
        let (mut alice, mut bob) = build();
        let plain = run_protocol(&mut alice, &mut bob, &DriverOpts::new(10));
        let (mut alice, mut bob) = build();
        let scope = MetricScope::new(MetricsBuf::new(MetricsLevel::Full, "u"));
        let metered = run_protocol(
            &mut alice,
            &mut bob,
            &DriverOpts::new(10).metrics(scope.clone()),
        );
        assert_eq!(plain, metered);
        let (counters, _, hists) = scope.take().into_parts();
        assert_eq!(counters.get("comm.protocol_runs"), Some(&1));
        assert_eq!(
            counters.get("comm.bits_exchanged"),
            Some(&(plain.bits_exchanged as u64))
        );
        assert_eq!(
            counters.get("comm.messages"),
            Some(&(plain.num_messages() as u64))
        );
        let mb = hists.get("comm.message_bits").expect("message_bits hist");
        assert_eq!(mb.count, plain.num_messages() as u64);
        assert_eq!(mb.sum, plain.bits_exchanged as u64);
        // Core level keeps counters, drops the histogram.
        let (mut alice, mut bob) = build();
        let core = MetricScope::new(MetricsBuf::new(MetricsLevel::Core, "u"));
        run_protocol(
            &mut alice,
            &mut bob,
            &DriverOpts::new(10).metrics(core.clone()),
        );
        let (c, _, h) = core.take().into_parts();
        assert_eq!(c.get("comm.protocol_runs"), Some(&1));
        assert!(h.is_empty());
    }

    #[test]
    fn budget_truncation_is_traced() {
        use bcc_trace::{FieldValue, TraceLevel};
        let mut alice = SumAlice {
            bits: vec![true; 10],
            sent: 0,
            result: None,
        };
        let mut bob = SumBob {
            own: 0,
            received: Vec::new(),
            expected: 10,
        };
        let scope = TraceScope::new(TraceBuf::new(TraceLevel::Events, "u"));
        let opts = DriverOpts::new(10).bit_budget(4).trace(scope.clone());
        let run = run_protocol(&mut alice, &mut bob, &opts);
        assert_eq!(run.bits_exchanged, 4);
        let events = scope.take().into_events();
        let msg = events.iter().find(|e| e.name == "message").unwrap();
        assert_eq!(msg.field("truncated"), Some(&FieldValue::Bool(true)));
        assert_eq!(msg.field("bits"), Some(&FieldValue::UInt(4)));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_opts_path() {
        let build = || SumAlice {
            bits: vec![true; 10],
            sent: 0,
            result: None,
        };
        let bob = || SumBob {
            own: 0,
            received: Vec::new(),
            expected: 10,
        };
        let legacy = run_with_bit_budget(&mut build(), &mut bob(), 4, 10);
        let modern = run_protocol(&mut build(), &mut bob(), &DriverOpts::new(10).bit_budget(4));
        assert_eq!(legacy, modern);
        let mut buf = TraceBuf::new(bcc_trace::TraceLevel::Events, "u");
        let traced = run_protocol_traced(&mut build(), &mut bob(), 10, &mut buf);
        assert_eq!(
            traced,
            run_protocol(&mut build(), &mut bob(), &DriverOpts::new(10))
        );
        assert!(!buf.into_events().is_empty());
    }

    #[test]
    fn transcript_bits_flatten() {
        let run = ProtocolRun::<u32> {
            alice_output: None,
            bob_output: None,
            bits_exchanged: 3,
            transcript: vec![(Turn::Alice, vec![true]), (Turn::Bob, vec![false, true])],
        };
        assert_eq!(run.transcript_bits(), vec![true, false, true]);
    }
}
