//! Randomized protocols for `Partition` — an exploration harness for
//! the paper's open **Question 2** ("can we get an Ω(n log n) lower
//! bound on the randomized constant-error communication complexity of
//! Partition / TwoPartition?").
//!
//! The paper notes the randomized complexity of `Partition` is a
//! long-standing open problem. This module does **not** claim a bound
//! in either direction; it provides concrete randomized protocols
//! whose error-vs-communication trade-off can be *measured*, so the
//! open question has an empirical landscape:
//!
//! - [`SampledConstraintAlice`]/[`SampledConstraintBob`]: using shared randomness, the
//!   parties agree on `k` random element pairs `(i, j)`; Alice sends
//!   the `k` bits `[i ∼_{P_A} j]`. Bob overlays these sampled
//!   constraints on his own full partition and answers "join trivial?"
//!   from the union–find closure. The protocol has **one-sided
//!   error**: a YES answer is always correct (sampled constraints are
//!   true), while a NO may be a false negative (a needed merge was
//!   never sampled). Cost: `k` bits. Intuition suggests
//!   `k = Θ(n log n)` samples are needed to catch all merges
//!   (coupon-collector over Alice's blocks) — consistent with a
//!   positive answer to Question 2, though of course not a proof.

use crate::driver::Party;
use crate::error::CommError;
use bcc_graphs::UnionFind;
use bcc_partitions::SetPartition;

/// Derives the shared pair sequence from the public seed.
fn shared_pairs(n: usize, k: usize, seed: u64) -> Vec<(usize, usize)> {
    // splitmix64 stream; both parties compute the same pairs.
    let mut z = seed;
    let mut next = move || {
        z = z.wrapping_add(0x9e3779b97f4a7c15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^ (x >> 31)
    };
    (0..k)
        .map(|_| {
            let a = (next() % n as u64) as usize;
            let mut b = (next() % n as u64) as usize;
            if a == b {
                b = (b + 1) % n;
            }
            (a, b)
        })
        .collect()
}

/// Alice's side of the sampled-constraint protocol.
#[derive(Debug)]
pub struct SampledConstraintAlice {
    input: SetPartition,
    pairs: Vec<(usize, usize)>,
    answer: Option<bool>,
}

impl SampledConstraintAlice {
    /// Alice with input `P_A`, sampling `k` pairs from `seed`.
    pub fn new(input: SetPartition, k: usize, seed: u64) -> Self {
        let pairs = shared_pairs(input.ground_size(), k, seed);
        SampledConstraintAlice {
            input,
            pairs,
            answer: None,
        }
    }
}

impl Party<bool> for SampledConstraintAlice {
    fn send(&mut self) -> Vec<bool> {
        self.pairs
            .iter()
            .map(|&(a, b)| self.input.same_block(a, b))
            .collect()
    }

    fn receive(&mut self, bits: &[bool]) {
        if let Some(&b) = bits.first() {
            self.answer = Some(b);
        }
    }

    fn output(&self) -> Option<bool> {
        self.answer
    }
}

/// Bob's side: overlays the sampled constraints on his partition and
/// decides by union–find closure.
#[derive(Debug)]
pub struct SampledConstraintBob {
    input: SetPartition,
    pairs: Vec<(usize, usize)>,
    answer: Option<bool>,
}

impl SampledConstraintBob {
    /// Bob with input `P_B`, sampling the same `k` pairs.
    pub fn new(input: SetPartition, k: usize, seed: u64) -> Self {
        let pairs = shared_pairs(input.ground_size(), k, seed);
        SampledConstraintBob {
            input,
            pairs,
            answer: None,
        }
    }
}

impl Party<bool> for SampledConstraintBob {
    fn send(&mut self) -> Vec<bool> {
        match self.answer {
            Some(b) => vec![b],
            None => vec![],
        }
    }

    fn receive(&mut self, bits: &[bool]) {
        if bits.len() != self.pairs.len() {
            return; // starved run: no decision possible yet
        }
        let n = self.input.ground_size();
        let mut uf = UnionFind::new(n);
        // Bob's own blocks.
        for block in self.input.blocks() {
            for w in block.windows(2) {
                uf.union(w[0], w[1]);
            }
        }
        // Alice's sampled positive constraints.
        for (&(a, b), &same) in self.pairs.iter().zip(bits) {
            if same {
                uf.union(a, b);
            }
        }
        self.answer = Some(uf.num_sets() == 1);
    }

    fn output(&self) -> Option<bool> {
        self.answer
    }
}

/// Runs the sampled-constraint protocol once; returns `(answer, bits)`.
///
/// # Errors
///
/// Returns [`CommError::ProtocolIncomplete`] if Bob produced no answer
/// within the message limit (a protocol-implementation bug, not an
/// input property — the sampled protocol always answers in two
/// messages).
pub fn run_sampled(
    pa: &SetPartition,
    pb: &SetPartition,
    k: usize,
    seed: u64,
) -> Result<(bool, usize), CommError> {
    let mut alice = SampledConstraintAlice::new(pa.clone(), k, seed);
    let mut bob = SampledConstraintBob::new(pb.clone(), k, seed);
    let run = crate::driver::run_protocol(&mut alice, &mut bob, &crate::driver::DriverOpts::new(4));
    match run.bob_output {
        Some(answer) => Ok((answer, run.bits_exchanged)),
        None => Err(CommError::ProtocolIncomplete),
    }
}

/// Measures the one-sided error of the sampled-constraint protocol on
/// a set of input pairs, over several shared seeds: returns
/// `(false-negative rate on trivial-join inputs, any false positives)`.
pub fn measure_error(
    inputs: &[(SetPartition, SetPartition)],
    k: usize,
    seeds: &[u64],
) -> (f64, bool) {
    let mut trivial_trials = 0usize;
    let mut false_negatives = 0usize;
    let mut false_positive = false;
    for (pa, pb) in inputs {
        let truth = pa.join(pb).is_trivial();
        for &seed in seeds {
            // The sampled protocol always answers within its message
            // limit; a missing answer would be a driver bug and is
            // scored as a wrong answer rather than a crash.
            let said = run_sampled(pa, pb, k, seed)
                .map(|(a, _)| a)
                .unwrap_or(false);
            if truth {
                trivial_trials += 1;
                if !said {
                    false_negatives += 1;
                }
            } else if said {
                false_positive = true;
            }
        }
    }
    let rate = if trivial_trials == 0 {
        0.0
    } else {
        false_negatives as f64 / trivial_trials as f64
    };
    (rate, false_positive)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcc_partitions::enumerate::all_partitions;
    use bcc_partitions::random::uniform_partition;
    use rand::SeedableRng;

    #[test]
    fn one_sided_error_never_false_positive() {
        // Exhaustive at n = 4 with small k: YES answers are always
        // correct regardless of sampling.
        let inputs: Vec<_> = all_partitions(4)
            .flat_map(|a| all_partitions(4).map(move |b| (a.clone(), b)))
            .collect();
        for k in [1usize, 4, 16] {
            let (_, false_positive) = measure_error(&inputs, k, &[0, 1, 2]);
            assert!(!false_positive, "false positive at k={k}");
        }
    }

    #[test]
    fn error_decreases_with_budget() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let n = 8;
        // Bias toward trivial-join pairs (coarse partitions).
        let inputs: Vec<_> = (0..20)
            .map(|_| {
                (
                    uniform_partition(n, &mut rng),
                    uniform_partition(n, &mut rng),
                )
            })
            .filter(|(a, b)| a.join(b).is_trivial())
            .collect();
        assert!(!inputs.is_empty());
        let seeds: Vec<u64> = (0..8).collect();
        let e_small = measure_error(&inputs, 4, &seeds).0;
        let e_large = measure_error(&inputs, 256, &seeds).0;
        assert!(
            e_large <= e_small,
            "error did not shrink: {e_small} -> {e_large}"
        );
        assert!(e_large < 0.1, "large budget still errs {e_large}");
    }

    #[test]
    fn cost_is_exactly_k_plus_one() {
        let pa = SetPartition::trivial(6);
        let pb = SetPartition::finest(6);
        let (ans, bits) = run_sampled(&pa, &pb, 33, 5).unwrap();
        assert_eq!(bits, 33 + 1);
        // PA trivial: join trivial; sampled constraints from the
        // one-block partition are all "same block", so Bob merges every
        // sampled pair... success depends on coverage; with k = 33 on
        // n = 6 coverage is near-certain.
        assert!(ans);
    }

    #[test]
    fn shared_pairs_deterministic() {
        assert_eq!(shared_pairs(10, 5, 42), shared_pairs(10, 5, 42));
        assert_ne!(shared_pairs(10, 5, 42), shared_pairs(10, 5, 43));
    }
}
