//! Distributed MST over broadcast, checked against Kruskal.
//!
//! ```text
//! cargo run --release --example mst_broadcast
//! ```

use bcclique::algorithms::BoruvkaMst;
use bcclique::graphs::weighted::WeightedGraph;
use bcclique::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2026);
    let n = 24;
    let g = bcclique::graphs::generators::gnm(n, 3 * n, &mut rng);
    let weight_seed = 7;

    // The sequential ground truth.
    let wg = WeightedGraph::from_graph_hashed(&g, weight_seed);
    let oracle = wg.minimum_spanning_forest();
    println!(
        "G(n={n}, m={}): Kruskal forest has {} edges, total weight {}",
        g.num_edges(),
        oracle.edges.len(),
        oracle.total_weight
    );

    // The distributed computation: Borůvka phases over BCC(1), every
    // vertex broadcasting its cheapest outgoing edge bit by bit.
    let inst = Instance::new_kt1(g)?;
    let out = SimConfig::bcc1(1_000_000).run(&inst, &BoruvkaMst::new(weight_seed), 0);
    println!(
        "BCC(1) Borůvka: {:?} after {} rounds ({} bits broadcast)",
        out.system_decision(),
        out.stats().rounds,
        out.stats().bits_broadcast
    );

    // Every vertex independently reconstructed the same forest.
    let forest = out.spanning_edges()[0].clone().expect("forest reported");
    let oracle_edges: Vec<(u64, u64)> = oracle
        .edges
        .iter()
        .map(|&(u, v, _)| (u as u64, v as u64))
        .collect();
    assert_eq!(forest, oracle_edges);
    for v in 0..n {
        assert_eq!(out.spanning_edges()[v].as_ref(), Some(&forest));
    }
    println!("all {n} vertices agree with the Kruskal oracle, edge for edge.");
    println!(
        "\nfirst few forest edges: {:?}",
        &forest[..forest.len().min(6)]
    );
    Ok(())
}
