//! Theorem 4.5, live: exact mutual-information accounting for
//! `PartitionComp` under the hard distribution.
//!
//! ```text
//! cargo run --release --example info_theoretic_bound
//! ```

use bcclique::core::infobound::{implied_round_lower_bound, partition_comp_information};
use bcclique::partitions::numbers::bell_number;

fn main() {
    println!("hard distribution: PA uniform over all B_n partitions, PB = finest partition");
    println!("(so PA v PB = PA and the transcript of a correct protocol pins PA down)\n");

    println!(
        "{:>3} {:>8} {:>9} {:>9} {:>9} {:>7}",
        "n", "B_n", "H(PA)", "I(PA;Pi)", "H(PA|Pi)", "|Pi|"
    );
    for n in 3..=7 {
        let r = partition_comp_information(n, None);
        println!(
            "{:>3} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>7}",
            n,
            bell_number(n),
            r.input_entropy,
            r.mutual_information,
            r.conditional_entropy,
            r.max_transcript_bits,
        );
        assert!(r.chain_holds());
    }

    // Starve the protocol: information (and correctness) degrade,
    // but the chain |Pi| >= H(Pi) >= I >= (1-eps)·H(PA) never breaks.
    let n = 5;
    println!("\nbit-budget sweep at n={n}:");
    println!(
        "{:>7} {:>9} {:>6} {:>24}",
        "budget", "I(PA;Pi)", "err", "implied BCC(1) rounds"
    );
    for budget in [0usize, 3, 6, 9, 12, 15, 18] {
        let r = partition_comp_information(n, Some(budget));
        println!(
            "{:>7} {:>9.3} {:>6.3} {:>24.3}",
            budget,
            r.mutual_information,
            r.error,
            implied_round_lower_bound(&r, 2 * 4 * n + 2),
        );
        assert!(r.chain_holds());
    }
    println!("\nH(PA) = log2 B_n = Θ(n log n): any ε-error protocol must carry");
    println!(
        "(1−ε)·Θ(n log n) bits — at Θ(n) bits per BCC(1) round, Ω(log n) rounds (Theorem 4.5)."
    );
}
