//! AGM linear-sketch connectivity across bandwidths: the `BCC(1)` vs
//! `BCC(polylog)` contrast from the paper's introduction.
//!
//! ```text
//! cargo run --release --example sketch_connectivity
//! ```

use bcclique::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);

    // A connected sparse graph and a disconnected 2-regular one.
    let connected = bcclique::graphs::generators::random_tree_plus(n, 4, &mut rng);
    let disconnected = bcclique::graphs::generators::two_cycles(n / 2, n / 2);

    let algo = SketchConnectivity::new(Problem::Connectivity);
    println!(
        "sketch size for n={n}: {} bits per vertex per phase",
        SketchConnectivity::sketch_bits(n)
    );
    println!(
        "{:>9} {:>22} {:>22}",
        "bandwidth", "connected: rounds", "disconnected: rounds"
    );
    for b in [1usize, 16, 256, 4096] {
        let sim = SimConfig::bcc1(10_000_000).bandwidth(b);
        let oc = sim.run(&Instance::new_kt1(connected.clone())?, &algo, 1);
        let od = sim.run(&Instance::new_kt1(disconnected.clone())?, &algo, 1);
        println!(
            "{:>9} {:>14} ({:?}) {:>13} ({:?})",
            b,
            oc.stats().rounds,
            oc.system_decision(),
            od.stats().rounds,
            od.system_decision(),
        );
    }
    println!("\nrounds scale like ceil(sketch_bits / b) per Borůvka phase:");
    println!("at b = 1 the polylog-bit sketches are crushed into single-bit rounds —");
    println!("this is why BCC(1) lower bounds don't contradict the fast sketching upper bounds.");
    Ok(())
}
