//! Figure 2 and Theorems 4.3/4.4, live: from a `Partition` instance to
//! a `BCC(1)` graph and back through the Alice/Bob simulation.
//!
//! ```text
//! cargo run --example partition_reduction
//! ```

use bcclique::comm::bounds::certify_rank;
use bcclique::comm::reduction::{gadget_graph, induced_partition_on_l, Gadget};
use bcclique::comm::simulate::simulate_two_party;
use bcclique::graphs::cycles::cycle_structure;
use bcclique::partitions::matrices::two_partition_matrix;
use bcclique::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 2 (right): two perfect-matching partitions.
    let pa = SetPartition::from_blocks(8, &[vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]])?;
    let pb = SetPartition::from_blocks(8, &[vec![0, 2], vec![1, 3], vec![4, 6], vec![5, 7]])?;
    println!("PA = {pa}");
    println!("PB = {pb}");
    println!(
        "PA v PB = {} (trivial: {})",
        pa.join(&pb),
        pa.join(&pb).is_trivial()
    );

    // The 2-regular gadget: a MultiCycle instance whose cycles are the
    // blocks of the join.
    let g = gadget_graph(Gadget::TwoRegular, &pa, &pb)?;
    let s = cycle_structure(&g)?;
    println!(
        "gadget G(PA, PB): {} vertices, cycles {:?} — Theorem 4.3: induced partition on L = {}",
        g.num_vertices(),
        s.lengths(),
        induced_partition_on_l(Gadget::TwoRegular, 8, &g),
    );

    // Alice and Bob jointly run a KT-1 BCC(1) algorithm on the gadget,
    // exchanging one {0,1,⊥} character per vertex per round.
    let algo = NeighborIdBroadcast::new(Problem::MultiCycle);
    let report = simulate_two_party(Gadget::TwoRegular, &algo, &pa, &pb, 0, 100_000);
    println!(
        "two-party simulation: {:?} after {} rounds, {} characters = {} bits exchanged",
        report.system_decision(),
        report.rounds,
        report.characters_exchanged,
        report.bits_exchanged,
    );
    assert_eq!(report.system_decision(), Decision::No); // join has 2 blocks

    // Cross-check against the direct execution on the full instance.
    let direct = SimConfig::bcc1(100_000).run(&Instance::new_kt1(g)?, &algo, 0);
    assert_eq!(report.decisions, direct.decisions());
    println!("matches the direct BCC(1) execution exactly.");

    // The lower-bound side: rank(E_6) certifies Ω(n log n) 2-party
    // communication, so the per-round O(n) cost forces Ω(log n) rounds.
    let cert = certify_rank(&two_partition_matrix(6));
    println!(
        "rank(E_6) = {}/{} (full = Lemma 4.1) -> any deterministic protocol needs >= {:.1} bits; \
         at {} bits/round the simulation implies >= {:.2} rounds",
        cert.rank,
        cert.dim,
        cert.comm_lower_bound_bits,
        2 * 12 + 2,
        cert.comm_lower_bound_bits / (2.0 * 12.0 + 2.0),
    );

    Ok(())
}
