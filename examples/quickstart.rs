//! Quickstart: build `BCC(1)` instances, run algorithms, inspect
//! transcripts and costs.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bcclique::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. A YES instance of TwoCycle: a single 16-cycle. ---
    let yes = Instance::new_kt1(generators::cycle(16))?;
    // --- and a NO instance: two disjoint 8-cycles. ---
    let no = Instance::new_kt1(generators::two_cycles(8, 8))?;

    // The O(log n) algorithm that makes the paper's lower bound tight
    // on sparse graphs: broadcast degrees, then neighbor IDs.
    let algo = NeighborIdBroadcast::new(Problem::TwoCycle);
    let sim = SimConfig::bcc1(10_000);

    let out_yes = sim.run(&yes, &algo, 0);
    let out_no = sim.run(&no, &algo, 0);
    println!(
        "one 16-cycle   -> {:?} in {} rounds",
        out_yes.system_decision(),
        out_yes.stats().rounds
    );
    println!(
        "two 8-cycles   -> {:?} in {} rounds",
        out_no.system_decision(),
        out_no.stats().rounds
    );
    assert_eq!(out_yes.system_decision(), Decision::Yes);
    assert_eq!(out_no.system_decision(), Decision::No);

    // --- 2. The same on a KT-0 network (anonymous ports): prepend the
    //        ID-exchange prologue. ---
    let kt0 = Instance::new_kt0(generators::cycle(16), /* wiring seed */ 42)?;
    let upgraded = Kt0Upgrade::new(NeighborIdBroadcast::new(Problem::TwoCycle));
    let out_kt0 = sim.run(&kt0, &upgraded, 0);
    println!(
        "KT-0 16-cycle  -> {:?} in {} rounds ({} extra for the ID exchange)",
        out_kt0.system_decision(),
        out_kt0.stats().rounds,
        out_kt0.stats().rounds - out_yes.stats().rounds,
    );

    // --- 3. Inspect a vertex's transcript: everything it sent. ---
    let t0 = out_yes.transcript(0);
    println!(
        "vertex 0 broadcast {} rounds: \"{}\" ({} bits total across all vertices)",
        t0.rounds(),
        t0.sent_string(),
        out_yes.stats().bits_broadcast,
    );

    // --- 4. ConnectedComponents: every vertex outputs its component's
    //        minimum ID. ---
    let cc = sim.run(
        &Instance::new_kt1(generators::multi_cycle(&[4, 5, 6]))?,
        &NeighborIdBroadcast::new(Problem::ConnectedComponents),
        0,
    );
    let labels: Vec<u64> = cc.component_labels().iter().map(|l| l.unwrap()).collect();
    println!("component labels of C4+C5+C6: {labels:?}");

    // --- 5. The lower-bound view: a 1-round algorithm cannot tell the
    //        instances apart better than coin flips on the hard
    //        distribution. ---
    let dist = bcclique::core::hard::star_distribution(27);
    let truncated = Truncated::new(upgraded, 1);
    let err = bcclique::core::hard::distributional_error(&dist, &truncated, 1, 0);
    println!("1-round truncation errs with probability {err:.3} on the Theorem 3.5 star (floor 1/2 here)");

    Ok(())
}
