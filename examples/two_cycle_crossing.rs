//! Figure 1 and Lemma 3.4, live: build a port-preserving crossing and
//! watch indistinguishability hold and break.
//!
//! ```text
//! cargo run --example two_cycle_crossing
//! ```

use bcclique::core::crossing::{
    cross_instance, indistinguishable_after, lemma_3_4_hypothesis_holds, DirectedEdge,
};
use bcclique::core::indist::IndistGraph;
use bcclique::graphs::cycles::cycle_structure;
use bcclique::model::testing::{EchoBit, IdBroadcast};
use bcclique::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The canonical one-cycle instance on 10 vertices, KT-0 (ports are
    // anonymous — the regime where crossings exist).
    let n = 10;
    let i1 = Instance::new_kt0_canonical(generators::cycle(n))?;
    let e1 = DirectedEdge::new(0, 1);
    let e2 = DirectedEdge::new(5, 6);

    println!(
        "base instance: C_{n}, input edges {:?}",
        i1.input().canonical_key()
    );
    let i2 = cross_instance(&i1, e1, e2)?;
    let s = cycle_structure(i2.input())?;
    println!(
        "crossed at ({e1}, {e2}): now {} cycles of lengths {:?}",
        s.count(),
        s.lengths()
    );

    // Port preservation: every vertex sees input edges on the same
    // port numbers before and after.
    let preserved = (0..n).all(|v| {
        i1.initial_knowledge(v, 1, 0).input_port_labels
            == i2.initial_knowledge(v, 1, 0).input_port_labels
    });
    println!("input-edge ports preserved at every vertex: {preserved}");

    // Lemma 3.4 with a satisfied hypothesis: under EchoBit all tails
    // and heads broadcast identically, so the instances remain
    // indistinguishable arbitrarily long.
    for t in [1usize, 4, 16] {
        let hyp = lemma_3_4_hypothesis_holds(&i1, e1, e2, &EchoBit, t, 0);
        let ind = indistinguishable_after(&i1, &i2, &EchoBit, t, 0);
        println!("EchoBit     t={t:>2}: hypothesis={hyp}, indistinguishable={ind}");
        assert!(hyp && ind);
    }

    // Contrapositive: IdBroadcast violates the hypothesis (distinct
    // IDs) and indeed distinguishes the instances — but it *spends*
    // ceil(log2 n) rounds to do so, exactly the price Theorem 3.1 says
    // is unavoidable.
    for t in [1usize, 2, 4] {
        let hyp = lemma_3_4_hypothesis_holds(&i1, e1, e2, &IdBroadcast::new(), t, 0);
        let ind = indistinguishable_after(&i1, &i2, &IdBroadcast::new(), t, 0);
        println!("IdBroadcast t={t:>2}: hypothesis={hyp}, indistinguishable={ind}");
    }

    // The global picture: the round-0 indistinguishability graph on
    // n = 7 — every instance pair connected by a crossing.
    let g = IndistGraph::round_zero(7);
    println!(
        "\nindistinguishability graph at n=7: |V1|={}, |V2|={}, ratio={:.3}, edges={}",
        g.v1_len(),
        g.v2_len(),
        g.count_ratio(),
        g.bip.num_edges(),
    );
    let k = g.max_k_matching_v2(8);
    println!("largest k-matching saturating V2 (Polygamous Hall, Thm 2.1): k = {k}");

    Ok(())
}
